//! Bulk memory arrangements: row-wise and column-wise.
//!
//! Given `p` instances of a program with per-instance memory of `msize`
//! words, the bulk buffer holds `p * msize` words arranged either
//!
//! * **row-wise** — instance `j` occupies the contiguous block
//!   `j*msize .. (j+1)*msize` (word `a` of instance `j` at `j*msize + a`), or
//! * **column-wise** — word `a` of all instances is contiguous
//!   (instance `j`'s word `a` at `a*p + j`).
//!
//! In lockstep bulk execution every thread accesses the *same* logical
//! address per step, so column-wise turns each step into `p` consecutive
//! physical addresses — the coalesced pattern the UMM rewards — while
//! row-wise scatters the warp across `min(w, p)` address groups whenever
//! `msize >= w`.  This module also provides exact O(1)/O(p/w) closed forms
//! for the per-step UMM stage count and DMM conflict count of such uniform
//! rounds, which the cost machine uses to price large executions without
//! materialising per-thread request vectors.

use umm_core::MachineConfig;

/// The two bulk arrangements studied in the paper (Figure 5 / Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Instance-major: input `j` is a contiguous row.
    RowWise,
    /// Address-major: logical address `a` of all instances is contiguous.
    ColumnWise,
}

impl Layout {
    /// Physical address of logical word `addr` of instance `lane`.
    #[inline]
    #[must_use]
    pub fn physical(&self, addr: usize, lane: usize, p: usize, msize: usize) -> usize {
        debug_assert!(lane < p, "lane {lane} out of {p}");
        debug_assert!(addr < msize, "addr {addr} out of {msize}");
        match self {
            Layout::RowWise => lane * msize + addr,
            Layout::ColumnWise => addr * p + lane,
        }
    }

    /// Short lowercase label (`"row"` / `"col"`), for report rows.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Layout::RowWise => "row",
            Layout::ColumnWise => "col",
        }
    }

    /// Both layouts, for sweeps.
    #[must_use]
    pub fn all() -> [Layout; 2] {
        [Layout::RowWise, Layout::ColumnWise]
    }
}

impl core::fmt::Display for Layout {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Layout::RowWise => write!(f, "row-wise"),
            Layout::ColumnWise => write!(f, "column-wise"),
        }
    }
}

/// Copy `p` per-instance inputs into a bulk buffer with the given layout.
///
/// Inputs shorter than `msize` leave the remaining scratch words zeroed.
///
/// # Panics
///
/// Panics if any input is longer than `msize`.
#[must_use]
pub fn arrange<W: crate::word::Word>(inputs: &[&[W]], msize: usize, layout: Layout) -> Vec<W> {
    let p = inputs.len();
    let mut buf = vec![W::ZERO; p * msize];
    for (lane, input) in inputs.iter().enumerate() {
        assert!(input.len() <= msize, "input longer than instance memory");
        for (a, &v) in input.iter().enumerate() {
            buf[layout.physical(a, lane, p, msize)] = v;
        }
    }
    buf
}

/// Extract the `range` of every instance from a bulk buffer.
#[must_use]
pub fn extract<W: Copy>(
    buf: &[W],
    p: usize,
    msize: usize,
    layout: Layout,
    range: core::ops::Range<usize>,
) -> Vec<Vec<W>> {
    (0..p)
        .map(|lane| range.clone().map(|a| buf[layout.physical(a, lane, p, msize)]).collect())
        .collect()
}

/// Exact UMM pipeline-stage count of one *uniform* round (all `p` threads
/// access logical address `addr` of their own instance) under `layout`:
/// the `Σ_warps k_i` term of the round cost.
///
/// Closed forms (validated against the materialised simulator by property
/// test):
///
/// * column-wise: each full warp spans 1 group (2 if the base is unaligned);
/// * row-wise with `msize >= w`: every lane has its own group → `p` stages;
/// * row-wise with `msize < w`: per-warp span arithmetic, `O(p/w)`.
#[must_use]
pub fn uniform_round_stages_umm(
    cfg: &MachineConfig,
    layout: Layout,
    p: usize,
    msize: usize,
    addr: usize,
) -> u64 {
    let w = cfg.width;
    match layout {
        Layout::ColumnWise => {
            let base = addr * p;
            let o = base % w;
            let full = p / w;
            let rem = p % w;
            let per_full = if o == 0 { 1 } else { 2 };
            let mut stages = (full as u64) * per_full;
            if rem > 0 {
                stages += if o + rem > w { 2 } else { 1 };
            }
            stages
        }
        Layout::RowWise => {
            if msize >= w {
                // Lane j sits at j*msize + addr; consecutive lanes differ by
                // msize >= w, hence always distinct address groups.
                p as u64
            } else {
                // Addresses are monotone with step msize < w, so a warp hits
                // every group between its first and last lane's group.
                let mut stages = 0u64;
                let mut lo = 0usize;
                while lo < p {
                    let hi = (lo + w).min(p);
                    let g_lo = (lo * msize + addr) / w;
                    let g_hi = ((hi - 1) * msize + addr) / w;
                    stages += (g_hi - g_lo + 1) as u64;
                    lo = hi;
                }
                stages
            }
        }
    }
}

/// Exact UMM cost in time units of one uniform round:
/// `uniform_round_stages_umm + l - 1` (zero threads never happens here since
/// every lane accesses).
#[must_use]
pub fn uniform_round_cost_umm(
    cfg: &MachineConfig,
    layout: Layout,
    p: usize,
    msize: usize,
    addr: usize,
) -> u64 {
    uniform_round_stages_umm(cfg, layout, p, msize, addr) + cfg.latency as u64 - 1
}

/// Exact DMM serialisation count (`Σ_warps c_i`) of one uniform round.
///
/// For column-wise the `w` consecutive addresses of a full warp hit each
/// bank once (`c = 1`); for row-wise the per-warp conflict is governed by
/// `g = gcd(msize, w)`: the stride pattern hits `w/g` distinct banks, each
/// `g` times.
#[must_use]
pub fn uniform_round_conflicts_dmm(
    cfg: &MachineConfig,
    layout: Layout,
    p: usize,
    msize: usize,
    _addr: usize,
) -> u64 {
    let w = cfg.width;
    match layout {
        Layout::ColumnWise => {
            // Each warp's lanes occupy consecutive addresses: at most
            // ceil(lanes / w) = 1 request per bank.
            p.div_ceil(w) as u64
        }
        Layout::RowWise => {
            let g = gcd(msize.max(1), w);
            let cycle = w / g; // distinct banks hit by a stride-msize warp
            let full = p / w;
            let rem = p % w;
            let mut total = (full as u64) * (w / cycle) as u64;
            if rem > 0 {
                total += rem.div_ceil(cycle) as u64;
            }
            total
        }
    }
}

/// Per-warp UMM stage charges `k_i` of one uniform round, in warp order.
///
/// `out` is cleared and refilled with `ceil(p/w)` entries; entry `i` is the
/// number of distinct address groups warp `i` spans, so
/// `out.iter().sum() == uniform_round_stages_umm(..)`.  A compiled schedule
/// replays these vectors through the simulators' uniform-round fast path,
/// which must reproduce the interpreter's per-warp profile histogram and
/// timeline spans exactly — totals alone are not enough.
pub fn uniform_round_warp_charges_umm(
    cfg: &MachineConfig,
    layout: Layout,
    p: usize,
    msize: usize,
    addr: usize,
    out: &mut Vec<u64>,
) {
    let w = cfg.width;
    out.clear();
    let mut lo = 0usize;
    while lo < p {
        let hi = (lo + w).min(p);
        let k = match layout {
            // Consecutive physical addresses `addr*p + lane`: the warp spans
            // every group between its first and last lane's group.
            Layout::ColumnWise => {
                let base = addr * p;
                (base + hi - 1) / w - (base + lo) / w + 1
            }
            Layout::RowWise => {
                if msize >= w {
                    // Stride >= w: every lane in its own group.
                    hi - lo
                } else {
                    // Monotone step < w: contiguous group span.
                    ((hi - 1) * msize + addr) / w - (lo * msize + addr) / w + 1
                }
            }
        };
        out.push(k as u64);
        lo = hi;
    }
}

/// Per-warp DMM serialisation charges `c_i` of one uniform round, in warp
/// order (the per-warp counterpart of [`uniform_round_conflicts_dmm`]).
pub fn uniform_round_warp_charges_dmm(
    cfg: &MachineConfig,
    layout: Layout,
    p: usize,
    msize: usize,
    _addr: usize,
    out: &mut Vec<u64>,
) {
    let w = cfg.width;
    out.clear();
    let cycle = match layout {
        // Consecutive addresses: each bank at most once per warp.
        Layout::ColumnWise => w,
        // Stride msize hits w/gcd(msize, w) distinct banks cyclically.
        Layout::RowWise => w / gcd(msize.max(1), w),
    };
    let mut lo = 0usize;
    while lo < p {
        let hi = (lo + w).min(p);
        out.push((hi - lo).div_ceil(cycle) as u64);
        lo = hi;
    }
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use umm_core::{dmm, umm, ThreadAction};

    #[test]
    fn physical_addresses_match_paper_figure5() {
        // p = 4 arrays of size n = 6 (Figure 5): row-wise b_j[i] at j*n + i,
        // column-wise at i*p + j.
        let (p, n) = (4, 6);
        assert_eq!(Layout::RowWise.physical(2, 3, p, n), 3 * 6 + 2);
        assert_eq!(Layout::ColumnWise.physical(2, 3, p, n), 2 * 4 + 3);
    }

    #[test]
    fn arrange_extract_roundtrip_both_layouts() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        for layout in Layout::all() {
            let buf = arrange(&[&a, &b], 4, layout);
            assert_eq!(buf.len(), 8);
            let out = extract(&buf, 2, 4, layout, 0..3);
            assert_eq!(out[0], a.to_vec());
            assert_eq!(out[1], b.to_vec());
        }
    }

    #[test]
    #[should_panic(expected = "longer than instance memory")]
    fn arrange_rejects_oversized_input() {
        let a = [1.0f32; 5];
        let _ = arrange(&[&a[..]], 4, Layout::RowWise);
    }

    /// Build the materialised round and cost it with the real simulator.
    fn simulated_stages(
        cfg: &MachineConfig,
        layout: Layout,
        p: usize,
        msize: usize,
        addr: usize,
    ) -> (u64, u64) {
        let actions: Vec<_> =
            (0..p).map(|j| ThreadAction::read(layout.physical(addr, j, p, msize))).collect();
        let ucost = umm::round_cost(cfg, &actions);
        let dcost = dmm::round_cost(cfg, &actions);
        let l = cfg.latency as u64;
        (ucost - (l - 1), dcost - (l - 1))
    }

    #[test]
    fn closed_forms_match_simulator_exhaustive_small() {
        for w in [1usize, 2, 3, 4, 8] {
            let cfg = MachineConfig::new(w, 3);
            for p in [1usize, 2, 4, 7, 8, 16, 33] {
                for msize in [1usize, 2, 3, 4, 5, 8, 16] {
                    for addr in 0..msize {
                        for layout in Layout::all() {
                            let (u_sim, d_sim) = simulated_stages(&cfg, layout, p, msize, addr);
                            let u_cf = uniform_round_stages_umm(&cfg, layout, p, msize, addr);
                            let d_cf = uniform_round_conflicts_dmm(&cfg, layout, p, msize, addr);
                            assert_eq!(
                                u_cf, u_sim,
                                "UMM closed form mismatch: w={w} p={p} msize={msize} addr={addr} {layout}"
                            );
                            assert_eq!(
                                d_cf, d_sim,
                                "DMM closed form mismatch: w={w} p={p} msize={msize} addr={addr} {layout}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn per_warp_charges_match_warp_scratch_exhaustive_small() {
        use umm_core::{WarpRequest, WarpScratch};
        let mut scratch = WarpScratch::new();
        let (mut ucf, mut dcf) = (Vec::new(), Vec::new());
        for w in [1usize, 2, 3, 4, 8] {
            let cfg = MachineConfig::new(w, 3);
            for p in [1usize, 2, 4, 7, 8, 16, 33] {
                for msize in [1usize, 2, 3, 4, 5, 8, 16] {
                    for addr in 0..msize {
                        for layout in Layout::all() {
                            let actions: Vec<_> = (0..p)
                                .map(|j| ThreadAction::read(layout.physical(addr, j, p, msize)))
                                .collect();
                            let u_sim: Vec<u64> = actions
                                .chunks(w)
                                .map(|c| {
                                    scratch.distinct_address_groups(&cfg, &WarpRequest::new(c))
                                        as u64
                                })
                                .collect();
                            let d_sim: Vec<u64> = actions
                                .chunks(w)
                                .map(|c| {
                                    scratch.max_bank_conflicts(&cfg, &WarpRequest::new(c)) as u64
                                })
                                .collect();
                            uniform_round_warp_charges_umm(&cfg, layout, p, msize, addr, &mut ucf);
                            uniform_round_warp_charges_dmm(&cfg, layout, p, msize, addr, &mut dcf);
                            let ctx = format!("w={w} p={p} msize={msize} addr={addr} {layout}");
                            assert_eq!(ucf, u_sim, "UMM per-warp mismatch: {ctx}");
                            assert_eq!(dcf, d_sim, "DMM per-warp mismatch: {ctx}");
                            assert_eq!(
                                ucf.iter().sum::<u64>(),
                                uniform_round_stages_umm(&cfg, layout, p, msize, addr),
                                "UMM per-warp sum vs total: {ctx}"
                            );
                            assert_eq!(
                                dcf.iter().sum::<u64>(),
                                uniform_round_conflicts_dmm(&cfg, layout, p, msize, addr),
                                "DMM per-warp sum vs total: {ctx}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn column_wise_is_w_times_cheaper_in_stages() {
        // The headline coalescing claim: for aligned p and msize >= w the
        // row-wise round costs p stages and the column-wise round p/w.
        let cfg = MachineConfig::new(32, 100);
        let (p, msize) = (1024, 64);
        let row = uniform_round_stages_umm(&cfg, Layout::RowWise, p, msize, 5);
        let col = uniform_round_stages_umm(&cfg, Layout::ColumnWise, p, msize, 5);
        assert_eq!(row, 1024);
        assert_eq!(col, 32);
        assert_eq!(row / col, 32);
    }

    #[test]
    fn dmm_prefers_the_same_layouts_reversed_for_stride_w() {
        // On the DMM, row-wise with msize a multiple of w is the worst case
        // (all lanes in one bank).
        let cfg = MachineConfig::new(4, 2);
        let p = 16;
        let row = uniform_round_conflicts_dmm(&cfg, Layout::RowWise, p, 8, 0);
        let col = uniform_round_conflicts_dmm(&cfg, Layout::ColumnWise, p, 8, 0);
        assert_eq!(row, 16, "stride-8 on 4 banks fully serialises each warp");
        assert_eq!(col, 4, "consecutive addresses are conflict-free");
    }
}
