//! # oblivious — bulk execution of oblivious algorithms on the UMM
//!
//! The core contribution of *"Bulk Execution of Oblivious Algorithms on the
//! Unified Memory Machine, with GPU Implementation"* (Tani, Takafuji,
//! Nakano, Ito; 2014), as a library:
//!
//! * **Oblivious programs by construction.**  A program implements
//!   [`ObliviousProgram`] and computes only through the
//!   [`ObliviousMachine`] interface, whose values are opaque — data can
//!   never become control flow or an address, so the address trace is a
//!   function of time alone (the paper's definition of obliviousness).
//! * **Bulk execution.**  [`program::bulk_execute`] runs one program on `p`
//!   inputs in SIMD lockstep under a row-wise or column-wise
//!   [`Layout`]; the column-wise arrangement makes every step a fully
//!   coalesced access, which the paper proves time-optimal on the UMM
//!   (Theorems 2 and 3).  This generic engine is the paper's future-work
//!   "automatic conversion system": no per-algorithm parallel code.
//! * **Model pricing.**  [`exec::CostMachine`] charges the same program on
//!   the UMM or DMM, and [`theorems`] provides the exact closed forms of
//!   Lemma 1, Theorem 2, Theorem 3 and Corollary 5 for comparison.
//! * **Checking.**  [`checker`] falsifies obliviousness claims for raw,
//!   externally-implemented algorithms by cross-input trace comparison.
//!
//! ## Quick example
//!
//! ```
//! use oblivious::{Layout, ObliviousMachine, ObliviousProgram};
//!
//! /// Doubles every element of an n-word array, in place.
//! struct Double { n: usize }
//!
//! impl ObliviousProgram<f32> for Double {
//!     fn name(&self) -> String { "double".into() }
//!     fn memory_words(&self) -> usize { self.n }
//!     fn input_range(&self) -> std::ops::Range<usize> { 0..self.n }
//!     fn output_range(&self) -> std::ops::Range<usize> { 0..self.n }
//!     fn run<M: ObliviousMachine<f32>>(&self, m: &mut M) {
//!         let two = m.constant(2.0);
//!         for i in 0..self.n {
//!             let x = m.read(i);
//!             let y = m.mul(x, two);
//!             m.write(i, y);
//!             m.free(x);
//!             m.free(y);
//!         }
//!     }
//! }
//!
//! // Bulk-execute 4 inputs, column-wise (the optimal arrangement).
//! let inputs: Vec<Vec<f32>> = (0..4).map(|j| vec![j as f32; 3]).collect();
//! let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
//! let out = oblivious::program::bulk_execute(&Double { n: 3 }, &refs, Layout::ColumnWise);
//! assert_eq!(out[3], vec![6.0, 6.0, 6.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod compose;
pub mod exec;
pub mod hmm_cost;
pub mod layout;
pub mod machine;
pub mod ops;
pub mod program;
pub mod tape;
pub mod tests_support;
pub mod theorems;
pub mod word;

pub use checker::{check_oblivious, ObliviousnessViolation};
pub use compose::{Chain, Repeat, Shifted};
pub use exec::shard::{run_sharded, shard_bounds};
pub use exec::{
    compile_from_traces, BulkMachine, BulkMetrics, BulkValue, CacheStats, CompileError,
    CompiledSchedule, CostMachine, LanePort, Model, RmwOperand, ScalarMachine, ScheduleCache,
    SliceLanes, TraceMachine,
};
pub use hmm_cost::{capacity_needed_per_dmm, hmm_bulk_cost, HmmBulkCost};
pub use layout::Layout;
pub use machine::{ObliviousMachine, ObliviousProgram};
pub use ops::{BinOp, CmpOp, UnOp};
pub use tape::{Inst, Slot, Tape};
pub use word::{FloatWord, IntWord, Word};
