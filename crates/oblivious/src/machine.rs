//! The oblivious machine abstraction.
//!
//! An [`ObliviousMachine`] is the only interface through which an oblivious
//! program touches data.  Values are opaque handles ([`ObliviousMachine::Value`]);
//! the program can combine them arithmetically and *select* between them by
//! comparison, but it can never extract one into a `bool` or an address.
//! Consequently the sequence of `read`/`write` addresses a program issues is
//! a function of its size parameters only — the program is oblivious **by
//! construction** (cf. paper Section III: "there exists a function
//! `a : time → N` such that for any input the algorithm accesses address
//! `a(i)` or does not access memory at time `i`").
//!
//! One program, many machines:
//!
//! * [`crate::exec::ScalarMachine`] executes it directly on one input — the
//!   sequential CPU algorithm;
//! * [`crate::exec::TraceMachine`] records the address function `a(t)`;
//! * [`crate::exec::BulkMachine`] executes it on `p` inputs in SIMD
//!   lockstep — the paper's *bulk execution* (and its future-work "automatic
//!   conversion system");
//! * [`crate::exec::CostMachine`] prices it on the UMM/DMM without touching
//!   data.

use crate::ops::{BinOp, CmpOp, UnOp};
use crate::word::Word;

/// Abstract executor of oblivious programs over word type `W`.
pub trait ObliviousMachine<W: Word> {
    /// Opaque handle to a runtime value (a "register").
    type Value: Copy;

    /// Load the word at `addr`.  One machine time step.
    fn read(&mut self, addr: usize) -> Self::Value;

    /// Store `v` to `addr`.  One machine time step.
    fn write(&mut self, addr: usize, v: Self::Value);

    /// Materialise a compile-time constant.  Free (register operation).
    fn constant(&mut self, c: W) -> Self::Value;

    /// Apply a unary operation.  Free (register operation).
    fn unop(&mut self, op: UnOp, a: Self::Value) -> Self::Value;

    /// Apply a binary operation.  Free (register operation).
    fn binop(&mut self, op: BinOp, a: Self::Value, b: Self::Value) -> Self::Value;

    /// Oblivious conditional: the value of `t` where `cmp(a, b)` holds and
    /// of `e` elsewhere.  This is the `if r < s then s ← r else s ← s`
    /// idiom the paper uses to keep Algorithm OPT oblivious, lifted into the
    /// machine so every backend implements it without branching on data.
    fn select(
        &mut self,
        cmp: CmpOp,
        a: Self::Value,
        b: Self::Value,
        t: Self::Value,
        e: Self::Value,
    ) -> Self::Value;

    /// Release a dead value.
    ///
    /// Backends with per-value storage (the bulk executor keeps a `p`-lane
    /// vector per live value) reuse the slot; other backends ignore it.
    /// Forgetting to free is safe — merely more memory — so programs only
    /// bother inside loops.
    fn free(&mut self, _v: Self::Value) {}

    // ---- convenience wrappers -------------------------------------------

    /// `a + b`
    fn add(&mut self, a: Self::Value, b: Self::Value) -> Self::Value {
        self.binop(BinOp::Add, a, b)
    }
    /// `a - b`
    fn sub(&mut self, a: Self::Value, b: Self::Value) -> Self::Value {
        self.binop(BinOp::Sub, a, b)
    }
    /// `a * b`
    fn mul(&mut self, a: Self::Value, b: Self::Value) -> Self::Value {
        self.binop(BinOp::Mul, a, b)
    }
    /// `min(a, b)`
    fn min(&mut self, a: Self::Value, b: Self::Value) -> Self::Value {
        self.binop(BinOp::Min, a, b)
    }
    /// `max(a, b)`
    fn max(&mut self, a: Self::Value, b: Self::Value) -> Self::Value {
        self.binop(BinOp::Max, a, b)
    }
    /// `a ^ b` (integer words)
    fn xor(&mut self, a: Self::Value, b: Self::Value) -> Self::Value {
        self.binop(BinOp::Xor, a, b)
    }
    /// The zero constant.
    fn zero(&mut self) -> Self::Value {
        self.constant(W::ZERO)
    }
    /// The `+∞` sentinel.
    fn pos_inf(&mut self) -> Self::Value {
        self.constant(W::POS_INF)
    }
}

/// A sequential algorithm expressed against the oblivious machine interface.
///
/// The program's control flow may depend only on its own size parameters
/// (captured in `self`), never on data — the `Value`-opacity of
/// [`ObliviousMachine`] enforces this.  `memory_words` declares the size of
/// the flat working memory (input, scratch and output regions included); all
/// `read`/`write` addresses must stay below it.
pub trait ObliviousProgram<W: Word> {
    /// Human-readable name, used in reports and error messages.
    fn name(&self) -> String;

    /// Size in words of the per-instance working memory.
    fn memory_words(&self) -> usize;

    /// The address range `lo..hi` holding the input on entry.
    fn input_range(&self) -> core::ops::Range<usize>;

    /// The address range holding the output on exit.
    fn output_range(&self) -> core::ops::Range<usize>;

    /// Execute against an arbitrary machine.
    fn run<M: ObliviousMachine<W>>(&self, m: &mut M);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ScalarMachine;

    /// A toy two-word swap written against the machine API.
    struct Swap;

    impl ObliviousProgram<f64> for Swap {
        fn name(&self) -> String {
            "swap".into()
        }
        fn memory_words(&self) -> usize {
            2
        }
        fn input_range(&self) -> core::ops::Range<usize> {
            0..2
        }
        fn output_range(&self) -> core::ops::Range<usize> {
            0..2
        }
        fn run<M: ObliviousMachine<f64>>(&self, m: &mut M) {
            let a = m.read(0);
            let b = m.read(1);
            m.write(0, b);
            m.write(1, a);
        }
    }

    #[test]
    fn convenience_wrappers_delegate() {
        let mut mem = [3.0, 4.0];
        let mut m = ScalarMachine::new(&mut mem);
        let a = m.read(0);
        let b = m.read(1);
        let s = m.add(a, b);
        let d = m.sub(a, b);
        let mn = m.min(a, b);
        let mx = m.max(a, b);
        m.write(0, s);
        m.write(1, d);
        assert_eq!(mem, [7.0, -1.0]);
        assert_eq!(mn, 3.0);
        assert_eq!(mx, 4.0);
    }

    #[test]
    fn program_runs_on_scalar_machine() {
        let mut mem = [1.0, 2.0];
        let mut m = ScalarMachine::new(&mut mem);
        Swap.run(&mut m);
        assert_eq!(mem, [2.0, 1.0]);
    }
}
