//! The operation vocabulary of oblivious programs.
//!
//! Programs manipulate opaque values through a fixed set of unary, binary
//! and compare-select operations.  Because a comparison yields a *selected
//! value* rather than a branchable boolean, a program cannot make control
//! flow depend on data — which is exactly the paper's definition of an
//! oblivious algorithm, enforced at the type level.

/// Unary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation (two's complement for integers).
    Neg,
    /// Bitwise NOT (integer words only).
    Not,
    /// Left shift by a compile-time constant (integer words only).
    Shl(u32),
    /// Logical right shift by a compile-time constant (integer words only).
    Shr(u32),
}

/// Binary operations.
///
/// Integer words use wrapping arithmetic for `Add`/`Sub`/`Mul`, matching the
/// modular arithmetic of cipher kernels; floating words use IEEE arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition (wrapping for integers).
    Add,
    /// Subtraction (wrapping for integers).
    Sub,
    /// Multiplication (wrapping for integers).
    Mul,
    /// Division.  Integer division by zero yields the zero word rather than
    /// trapping, so that lockstep bulk execution cannot fault on one lane.
    Div,
    /// Minimum (IEEE `min` semantics for floats).
    Min,
    /// Maximum.
    Max,
    /// Bitwise XOR (integer words only).
    Xor,
    /// Bitwise AND (integer words only).
    And,
    /// Bitwise OR (integer words only).
    Or,
}

/// Comparison predicates used by oblivious selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `a < b`
    Lt,
    /// `a <= b`
    Le,
    /// `a == b`
    Eq,
}

impl CmpOp {
    /// Evaluate the predicate on an already-ordered pair.
    #[inline]
    #[must_use]
    pub fn eval<T: PartialOrd>(&self, a: &T, b: &T) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Eq => a == b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_eval() {
        assert!(CmpOp::Lt.eval(&1, &2));
        assert!(!CmpOp::Lt.eval(&2, &2));
        assert!(CmpOp::Le.eval(&2, &2));
        assert!(CmpOp::Eq.eval(&2, &2));
        assert!(!CmpOp::Eq.eval(&1, &2));
    }
}
