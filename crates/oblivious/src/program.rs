//! High-level entry points: run, trace, price and bulk-execute programs.

use crate::exec::shard::run_sharded;
use crate::exec::{
    BulkMachine, BulkMetrics, CompiledSchedule, CostMachine, Model, ScalarMachine, TraceMachine,
};
use crate::layout::{arrange, extract, Layout};
use crate::machine::ObliviousProgram;
use crate::word::Word;
use umm_core::{MachineConfig, Round, RoundTrace, ThreadAction, ThreadTrace};

/// Execute a program sequentially on one instance, in place.
///
/// # Panics
///
/// Panics if `mem.len() != program.memory_words()`.
pub fn run_scalar<W: Word, P: ObliviousProgram<W>>(program: &P, mem: &mut [W]) {
    assert_eq!(
        mem.len(),
        program.memory_words(),
        "memory must be exactly memory_words() for {}",
        program.name()
    );
    let mut m = ScalarMachine::new(mem);
    program.run(&mut m);
}

/// Convenience: run sequentially on an input, returning the output range.
///
/// The input fills the program's `input_range`; remaining working memory is
/// zero-initialised.
#[must_use]
pub fn run_on_input<W: Word, P: ObliviousProgram<W>>(program: &P, input: &[W]) -> Vec<W> {
    let ir = program.input_range();
    assert_eq!(input.len(), ir.len(), "input must fill input_range of {}", program.name());
    let mut mem = vec![W::ZERO; program.memory_words()];
    mem[ir].copy_from_slice(input);
    run_scalar(program, &mut mem);
    let or = program.output_range();
    mem[or].to_vec()
}

/// Record the program's address function `a(t)`.
///
/// Bounds are checked against `memory_words()`.  Because programs cannot
/// observe data, this single trace characterises the program for *all*
/// inputs of the same shape — it is the constructive witness of
/// obliviousness.
#[must_use]
pub fn trace_of<W: Word, P: ObliviousProgram<W>>(program: &P) -> ThreadTrace {
    let mut m = TraceMachine::with_bound(program.memory_words());
    program.run(&mut m);
    m.into_trace()
}

/// The sequential running time `t` in the paper's accounting: the number of
/// memory access steps (register operations are free).
#[must_use]
pub fn time_steps<W: Word, P: ObliviousProgram<W>>(program: &P) -> usize {
    trace_of(program).len()
}

/// Bulk-execute `p = inputs.len()` instances, returning each instance's
/// output.  This is the paper's *bulk execution*, performed by the generic
/// lockstep engine (its future-work "conversion system"): no per-algorithm
/// parallel code is required.
#[must_use]
pub fn bulk_execute<W: Word, P: ObliviousProgram<W>>(
    program: &P,
    inputs: &[&[W]],
    layout: Layout,
) -> Vec<Vec<W>> {
    let p = inputs.len();
    assert!(p > 0, "bulk execution needs at least one input");
    let ir = program.input_range();
    for (i, input) in inputs.iter().enumerate() {
        assert_eq!(input.len(), ir.len(), "input {i} must fill input_range of {}", program.name());
    }
    let msize = program.memory_words();
    // Arrange inputs: logical address `ir.start + k` holds input word k.
    let mut buf = vec![W::ZERO; p * msize];
    for (lane, input) in inputs.iter().enumerate() {
        for (k, &v) in input.iter().enumerate() {
            buf[layout.physical(ir.start + k, lane, p, msize)] = v;
        }
    }
    let mut m = BulkMachine::new(&mut buf, p, msize, layout);
    program.run(&mut m);
    extract(&buf, p, msize, layout, program.output_range())
}

/// Bulk-execute over a pre-arranged buffer (`p * memory_words()` words),
/// in place.  Used by benchmarks that want to time only the execution.
pub fn bulk_execute_in_place<W: Word, P: ObliviousProgram<W>>(
    program: &P,
    buf: &mut [W],
    p: usize,
    layout: Layout,
) {
    let msize = program.memory_words();
    let mut m = BulkMachine::new(buf, p, msize, layout);
    program.run(&mut m);
}

/// [`bulk_execute`]'s compiled counterpart: compile the program once (one
/// dry run), then replay the schedule across all instances with up to
/// `shards` worker threads.  Outputs are bit-identical to [`bulk_execute`]
/// for every shard count.
#[must_use]
pub fn bulk_execute_compiled<W: Word + Send + Sync, P: ObliviousProgram<W>>(
    program: &P,
    inputs: &[&[W]],
    layout: Layout,
    shards: usize,
) -> Vec<Vec<W>> {
    let schedule = CompiledSchedule::compile(program);
    run_sharded(&schedule, inputs, layout, shards)
}

/// [`bulk_execute_in_place`]'s compiled counterpart: replay a schedule over
/// a pre-arranged buffer, returning the replay's [`BulkMetrics`] (identical
/// to the interpreter's).
pub fn run_compiled_in_place<W: Word>(
    schedule: &CompiledSchedule<W>,
    buf: &mut [W],
    p: usize,
    layout: Layout,
) -> BulkMetrics {
    let mut m = BulkMachine::new(buf, p, schedule.memory_words(), layout);
    m.run_compiled(schedule);
    m.metrics()
}

/// Model time (round-synchronous accounting, as in the paper's proofs) of a
/// bulk execution on the UMM or DMM.
#[must_use]
pub fn bulk_model_time<W: Word, P: ObliviousProgram<W>>(
    program: &P,
    cfg: MachineConfig,
    model: Model,
    layout: Layout,
    p: usize,
) -> u64 {
    let mut m = CostMachine::new(cfg, model, layout, p, program.memory_words());
    program.run(&mut m);
    m.time_units()
}

/// Materialise the full `p`-thread round trace of a bulk execution — one
/// uniform round per sequential memory step.  Feeds the event-driven
/// simulator (`umm_core::simulate_async`) in model experiments; memory cost
/// is `O(p · t)`, so use small sizes.
#[must_use]
pub fn bulk_round_trace<W: Word, P: ObliviousProgram<W>>(
    program: &P,
    layout: Layout,
    p: usize,
) -> RoundTrace {
    let msize = program.memory_words();
    let thread = trace_of(program);
    let mut rt = RoundTrace::new();
    for step in thread.steps() {
        let round = match step {
            ThreadAction::Idle => Round::from_fn(p, |_| ThreadAction::Idle),
            ThreadAction::Access(op, addr) => Round::from_fn(p, |lane| {
                ThreadAction::Access(*op, layout.physical(*addr, lane, p, msize))
            }),
        };
        rt.push(round);
    }
    rt
}

/// Run a profiled round-synchronous UMM simulation of a bulk execution,
/// streaming one uniform round at a time (memory `O(p)`, not `O(p · t)`).
///
/// The returned simulator carries [`umm_core::AccessStats`] and a
/// [`umm_core::SimProfile`] (per-warp address-group histogram, stall
/// accounting) for the whole execution — the model half of a `RunReport`.
#[must_use]
pub fn bulk_profiled_umm<W: Word, P: ObliviousProgram<W>>(
    program: &P,
    cfg: MachineConfig,
    layout: Layout,
    p: usize,
) -> umm_core::UmmSimulator {
    let mut sim = umm_core::UmmSimulator::new(cfg, p);
    sim.enable_profiling();
    stream_rounds(program, layout, p, |actions| {
        sim.step(actions);
    });
    sim
}

/// [`bulk_profiled_umm`]'s DMM counterpart: the same streamed rounds priced
/// by bank conflict, with the conflict histogram recorded.
#[must_use]
pub fn bulk_profiled_dmm<W: Word, P: ObliviousProgram<W>>(
    program: &P,
    cfg: MachineConfig,
    layout: Layout,
    p: usize,
) -> umm_core::DmmSimulator {
    let mut sim = umm_core::DmmSimulator::new(cfg, p);
    sim.enable_profiling();
    stream_rounds(program, layout, p, |actions| {
        sim.step(actions);
    });
    sim
}

/// [`bulk_profiled_umm`] with event-timeline tracing also enabled: the
/// returned simulator additionally carries an `obs::Tracer` with one span
/// per dispatched warp (take it with `take_tracer()`).
#[must_use]
pub fn bulk_traced_umm<W: Word, P: ObliviousProgram<W>>(
    program: &P,
    cfg: MachineConfig,
    layout: Layout,
    p: usize,
) -> umm_core::UmmSimulator {
    let mut sim = umm_core::UmmSimulator::new(cfg, p);
    sim.enable_profiling();
    sim.enable_tracing();
    stream_rounds(program, layout, p, |actions| {
        sim.step(actions);
    });
    sim
}

/// [`bulk_traced_umm`]'s DMM counterpart.
#[must_use]
pub fn bulk_traced_dmm<W: Word, P: ObliviousProgram<W>>(
    program: &P,
    cfg: MachineConfig,
    layout: Layout,
    p: usize,
) -> umm_core::DmmSimulator {
    let mut sim = umm_core::DmmSimulator::new(cfg, p);
    sim.enable_profiling();
    sim.enable_tracing();
    stream_rounds(program, layout, p, |actions| {
        sim.step(actions);
    });
    sim
}

/// [`bulk_profiled_umm`]'s compiled counterpart: price a schedule's memory
/// rounds through the simulator's uniform-round fast path, using the
/// per-warp charges precomputed by [`CompiledSchedule::cost_table`] instead
/// of materialising and re-grouping `p` thread actions per round.
///
/// Statistics, profile and elapsed time are bit-identical to running the
/// source program through [`bulk_profiled_umm`].
#[must_use]
pub fn compiled_profiled_umm<W: Word>(
    schedule: &CompiledSchedule<W>,
    cfg: MachineConfig,
    layout: Layout,
    p: usize,
) -> umm_core::UmmSimulator {
    let mut sim = umm_core::UmmSimulator::new(cfg, p);
    sim.enable_profiling();
    let table = schedule.cost_table(&cfg, layout, p);
    for (op, addr) in schedule.mem_steps() {
        sim.step_uniform(op, table.umm_charges(addr));
    }
    sim
}

/// [`compiled_profiled_umm`]'s DMM counterpart (parity with
/// [`bulk_profiled_dmm`]).
#[must_use]
pub fn compiled_profiled_dmm<W: Word>(
    schedule: &CompiledSchedule<W>,
    cfg: MachineConfig,
    layout: Layout,
    p: usize,
) -> umm_core::DmmSimulator {
    let mut sim = umm_core::DmmSimulator::new(cfg, p);
    sim.enable_profiling();
    let table = schedule.cost_table(&cfg, layout, p);
    for (op, addr) in schedule.mem_steps() {
        sim.step_uniform(op, table.dmm_charges(addr));
    }
    sim
}

/// Feed each uniform bulk round of `program` under `layout` to `consume`,
/// reusing one `p`-wide action buffer.
fn stream_rounds<W: Word, P: ObliviousProgram<W>>(
    program: &P,
    layout: Layout,
    p: usize,
    mut consume: impl FnMut(&[ThreadAction]),
) {
    let msize = program.memory_words();
    let thread = trace_of(program);
    let mut actions = vec![ThreadAction::Idle; p];
    for step in thread.steps() {
        match step {
            ThreadAction::Idle => actions.fill(ThreadAction::Idle),
            ThreadAction::Access(op, addr) => {
                for (lane, a) in actions.iter_mut().enumerate() {
                    *a = ThreadAction::Access(*op, layout.physical(*addr, lane, p, msize));
                }
            }
        }
        consume(&actions);
    }
}

/// Bulk-execute by running the scalar machine once per input, sequentially —
/// the paper's CPU baseline ("we have executed Algorithm … p times on the
/// Intel Core i7 CPU", row-wise arrangement).
#[must_use]
pub fn bulk_execute_cpu_reference<W: Word, P: ObliviousProgram<W>>(
    program: &P,
    inputs: &[&[W]],
) -> Vec<Vec<W>> {
    let ir = program.input_range();
    inputs
        .iter()
        .map(|input| {
            assert_eq!(input.len(), ir.len());
            let mut mem = vec![W::ZERO; program.memory_words()];
            mem[ir.clone()].copy_from_slice(input);
            run_scalar(program, &mut mem);
            mem[program.output_range()].to_vec()
        })
        .collect()
}

/// Run the CPU baseline over a pre-arranged **row-wise** buffer, in place —
/// the allocation-free variant used by timing harnesses.
pub fn cpu_reference_in_place<W: Word, P: ObliviousProgram<W>>(
    program: &P,
    buf: &mut [W],
    p: usize,
) {
    let msize = program.memory_words();
    assert_eq!(buf.len(), p * msize);
    for lane in 0..p {
        let mem = &mut buf[lane * msize..(lane + 1) * msize];
        let mut m = ScalarMachine::new(mem);
        program.run(&mut m);
    }
}

/// Re-export of [`arrange`] specialised to a program: builds the bulk buffer
/// for raw inputs (scratch zeroed), with inputs placed at `input_range`.
#[must_use]
pub fn arrange_inputs<W: Word, P: ObliviousProgram<W>>(
    program: &P,
    inputs: &[&[W]],
    layout: Layout,
) -> Vec<W> {
    let p = inputs.len();
    let msize = program.memory_words();
    let ir = program.input_range();
    if ir.start == 0 {
        // Fast path: inputs are a prefix of memory, so the generic
        // `arrange` (word k at logical address k) already places them.
        arrange(inputs, msize, layout)
    } else {
        let mut buf = vec![W::ZERO; p * msize];
        for (lane, input) in inputs.iter().enumerate() {
            for (k, &v) in input.iter().enumerate() {
                buf[layout.physical(ir.start + k, lane, p, msize)] = v;
            }
        }
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::ObliviousMachine;

    /// mem[2] = mem[0] + mem[1]; mem[3] = max(mem[0], mem[1]).
    struct AddMax;

    impl ObliviousProgram<f64> for AddMax {
        fn name(&self) -> String {
            "addmax".into()
        }
        fn memory_words(&self) -> usize {
            4
        }
        fn input_range(&self) -> core::ops::Range<usize> {
            0..2
        }
        fn output_range(&self) -> core::ops::Range<usize> {
            2..4
        }
        fn run<M: ObliviousMachine<f64>>(&self, m: &mut M) {
            let a = m.read(0);
            let b = m.read(1);
            let s = m.add(a, b);
            let x = m.max(a, b);
            m.write(2, s);
            m.write(3, x);
        }
    }

    #[test]
    fn scalar_and_bulk_agree() {
        let inputs: Vec<Vec<f64>> = (0..7).map(|i| vec![i as f64, 10.0 - i as f64]).collect();
        let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
        let cpu = bulk_execute_cpu_reference(&AddMax, &refs);
        for layout in Layout::all() {
            let bulk = bulk_execute(&AddMax, &refs, layout);
            assert_eq!(bulk, cpu, "{layout}");
        }
        assert_eq!(cpu[3], vec![10.0, 7.0], "input [3, 7]: sum 10, max 7");
    }

    #[test]
    fn trace_has_expected_steps() {
        let t = trace_of(&AddMax);
        assert_eq!(t.len(), 4, "2 reads + 2 writes");
        assert_eq!(time_steps(&AddMax), 4);
    }

    #[test]
    fn model_time_matches_lemma_style_formula() {
        let cfg = MachineConfig::new(4, 5);
        let p = 16;
        let t = time_steps(&AddMax) as u64;
        // msize = 4 = w, aligned => column-wise: every round p/w + l - 1.
        let col = bulk_model_time(&AddMax, cfg, Model::Umm, Layout::ColumnWise, p);
        assert_eq!(col, t * (16 / 4 + 5 - 1));
        // row-wise msize = 4 >= w: every round p + l - 1.
        let row = bulk_model_time(&AddMax, cfg, Model::Umm, Layout::RowWise, p);
        assert_eq!(row, t * (16 + 5 - 1));
    }

    #[test]
    fn round_trace_prices_identically_to_cost_machine() {
        let cfg = MachineConfig::new(4, 3);
        let p = 8;
        for layout in Layout::all() {
            let rt = bulk_round_trace(&AddMax, layout, p);
            let mut sim = umm_core::UmmSimulator::new(cfg, p);
            let sim_time = sim.run(&rt);
            let cost_time = bulk_model_time(&AddMax, cfg, Model::Umm, layout, p);
            assert_eq!(sim_time, cost_time, "{layout}");
        }
    }

    #[test]
    fn run_on_input_extracts_output() {
        let out = run_on_input(&AddMax, &[3.0, 4.0]);
        assert_eq!(out, vec![7.0, 4.0]);
    }

    #[test]
    fn compiled_profiling_matches_interpreter_profiling() {
        let cfg = MachineConfig::new(4, 3);
        let p = 10; // deliberately not warp-aligned
        let schedule = CompiledSchedule::compile(&AddMax);
        for layout in Layout::all() {
            let a = bulk_profiled_umm(&AddMax, cfg, layout, p);
            let b = compiled_profiled_umm(&schedule, cfg, layout, p);
            assert_eq!(a.elapsed(), b.elapsed(), "umm {layout}");
            assert_eq!(a.stats(), b.stats(), "umm {layout}");
            assert_eq!(a.profile(), b.profile(), "umm {layout}");

            let a = bulk_profiled_dmm(&AddMax, cfg, layout, p);
            let b = compiled_profiled_dmm(&schedule, cfg, layout, p);
            assert_eq!(a.elapsed(), b.elapsed(), "dmm {layout}");
            assert_eq!(a.stats(), b.stats(), "dmm {layout}");
            assert_eq!(a.profile(), b.profile(), "dmm {layout}");
        }
    }

    #[test]
    fn bulk_execute_compiled_matches_bulk_execute() {
        let inputs: Vec<Vec<f64>> =
            (0..9).map(|i| vec![f64::from(i), 9.0 - f64::from(i)]).collect();
        let refs: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
        for layout in Layout::all() {
            let expect = bulk_execute(&AddMax, &refs, layout);
            for shards in [1, 3, 4] {
                let got = bulk_execute_compiled(&AddMax, &refs, layout, shards);
                assert_eq!(got, expect, "{layout} shards={shards}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "input_range")]
    fn wrong_input_size_panics() {
        let _ = run_on_input(&AddMax, &[3.0]);
    }
}
