//! Recorded instruction tapes: compile an oblivious program once, replay
//! it anywhere.
//!
//! The paper's future work describes "a conversion system that
//! automatically converts a sequential program … for the bulk execution".
//! The generic engine already does that by re-running the program's Rust
//! control flow against each backend; a [`Tape`] takes the next step and
//! *records* the instruction stream once — legal precisely because the
//! program is oblivious, so the stream is identical for every input of the
//! same shape.  Replaying a tape skips all host control flow (loop
//! arithmetic, bounds checks, schedule generation), which is the analogue
//! of emitting a straight-line CUDA kernel.
//!
//! Tapes use single-assignment slots; [`Tape::eliminate_dead_code`] drops
//! instructions whose results never reach a `Write` — a tiny but real
//! optimising pass, property-tested to preserve semantics.

use crate::machine::{ObliviousMachine, ObliviousProgram};
use crate::ops::{BinOp, CmpOp, UnOp};
use crate::word::Word;

/// A single-assignment slot index.
pub type Slot = u32;

/// One recorded instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Inst<W> {
    /// `slot ← mem[addr]`
    Read {
        /// Destination slot.
        dst: Slot,
        /// Logical address.
        addr: usize,
    },
    /// `mem[addr] ← slot`
    Write {
        /// Logical address.
        addr: usize,
        /// Source slot.
        src: Slot,
    },
    /// `slot ← c`
    Const {
        /// Destination slot.
        dst: Slot,
        /// Constant value.
        value: W,
    },
    /// `slot ← op a`
    Un {
        /// Destination slot.
        dst: Slot,
        /// Operation.
        op: UnOp,
        /// Operand slot.
        a: Slot,
    },
    /// `slot ← a op b`
    Bin {
        /// Destination slot.
        dst: Slot,
        /// Operation.
        op: BinOp,
        /// Left operand.
        a: Slot,
        /// Right operand.
        b: Slot,
    },
    /// `slot ← cmp(a, b) ? t : e`
    Select {
        /// Destination slot.
        dst: Slot,
        /// Predicate.
        cmp: CmpOp,
        /// Compared left.
        a: Slot,
        /// Compared right.
        b: Slot,
        /// Value if the predicate holds.
        t: Slot,
        /// Value otherwise.
        e: Slot,
    },
}

impl<W> Inst<W> {
    fn dst(&self) -> Option<Slot> {
        match *self {
            Inst::Read { dst, .. }
            | Inst::Const { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::Select { dst, .. } => Some(dst),
            Inst::Write { .. } => None,
        }
    }

    fn sources(&self) -> [Option<Slot>; 4] {
        match *self {
            Inst::Read { .. } | Inst::Const { .. } => [None; 4],
            Inst::Write { src, .. } => [Some(src), None, None, None],
            Inst::Un { a, .. } => [Some(a), None, None, None],
            Inst::Bin { a, b, .. } => [Some(a), Some(b), None, None],
            Inst::Select { a, b, t, e, .. } => [Some(a), Some(b), Some(t), Some(e)],
        }
    }
}

/// A recorded, replayable oblivious program.
#[derive(Debug, Clone, PartialEq)]
pub struct Tape<W> {
    name: String,
    memory_words: usize,
    input: core::ops::Range<usize>,
    output: core::ops::Range<usize>,
    slots: u32,
    insts: Vec<Inst<W>>,
}

impl<W: Word> Tape<W> {
    /// Record a program into a tape.
    #[must_use]
    pub fn record<P: ObliviousProgram<W>>(program: &P) -> Self {
        let mut rec = Recorder { insts: Vec::new(), next: 0, bound: program.memory_words() };
        program.run(&mut rec);
        Self {
            name: format!("tape({})", program.name()),
            memory_words: program.memory_words(),
            input: program.input_range(),
            output: program.output_range(),
            slots: rec.next,
            insts: rec.insts,
        }
    }

    /// Number of recorded instructions (memory + register ops).
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Number of memory instructions (the paper's `t`).
    #[must_use]
    pub fn memory_steps(&self) -> usize {
        self.insts.iter().filter(|i| matches!(i, Inst::Read { .. } | Inst::Write { .. })).count()
    }

    /// The instruction stream.
    #[must_use]
    pub fn instructions(&self) -> &[Inst<W>] {
        &self.insts
    }

    /// Drop instructions whose results can never reach memory — a
    /// backwards liveness sweep over the single-assignment slots.
    /// Returns the number of instructions removed.
    pub fn eliminate_dead_code(&mut self) -> usize {
        let mut live = vec![false; self.slots as usize];
        let mut keep = vec![false; self.insts.len()];
        for (i, inst) in self.insts.iter().enumerate().rev() {
            let needed = match inst {
                Inst::Write { .. } => true,
                _ => inst.dst().is_some_and(|d| live[d as usize]),
            };
            if needed {
                keep[i] = true;
                for s in inst.sources().into_iter().flatten() {
                    live[s as usize] = true;
                }
            }
        }
        let before = self.insts.len();
        let mut it = keep.iter();
        self.insts.retain(|_| *it.next().expect("keep mask aligned"));
        before - self.insts.len()
    }

    /// Last instruction index at which each slot is live (defined or
    /// used).  Replay frees a slot's machine value right after that
    /// instruction — the recorded program's `free` calls are not on the
    /// tape, so without this pass a bulk replay would allocate one lane
    /// vector per instruction and never recycle any.
    fn last_use(&self) -> Vec<usize> {
        let mut last = vec![usize::MAX; self.slots as usize];
        for (i, inst) in self.insts.iter().enumerate() {
            if let Some(d) = inst.dst() {
                last[d as usize] = i;
            }
            for s in inst.sources().into_iter().flatten() {
                last[s as usize] = i;
            }
        }
        last
    }

    /// Replay the tape against any machine.
    pub fn replay<M: ObliviousMachine<W>>(&self, m: &mut M) {
        // Slot storage: machines hand out opaque values; keep them in a
        // dense table indexed by slot.  `Option` because DCE can leave
        // gaps.
        let mut vals: Vec<Option<M::Value>> = vec![None; self.slots as usize];
        let get = |vals: &Vec<Option<M::Value>>, s: Slot| -> M::Value {
            vals[s as usize].expect("tape uses slot before definition")
        };
        // Free list per instruction, from the liveness sweep.
        let last = self.last_use();
        let mut frees_at: Vec<Vec<Slot>> = vec![Vec::new(); self.insts.len()];
        for (slot, &at) in last.iter().enumerate() {
            if at != usize::MAX {
                frees_at[at].push(slot as Slot);
            }
        }
        for (i, inst) in self.insts.iter().enumerate() {
            self.replay_inst(m, inst, &mut vals, &get);
            for &s in &frees_at[i] {
                if let Some(v) = vals[s as usize].take() {
                    m.free(v);
                }
            }
        }
    }

    #[inline]
    fn replay_inst<M: ObliviousMachine<W>>(
        &self,
        m: &mut M,
        inst: &Inst<W>,
        vals: &mut Vec<Option<M::Value>>,
        get: &impl Fn(&Vec<Option<M::Value>>, Slot) -> M::Value,
    ) {
        {
            match *inst {
                Inst::Read { dst, addr } => {
                    let v = m.read(addr);
                    vals[dst as usize] = Some(v);
                }
                Inst::Write { addr, src } => {
                    let v = get(vals, src);
                    m.write(addr, v);
                }
                Inst::Const { dst, value } => {
                    let v = m.constant(value);
                    vals[dst as usize] = Some(v);
                }
                Inst::Un { dst, op, a } => {
                    let av = get(vals, a);
                    let v = m.unop(op, av);
                    vals[dst as usize] = Some(v);
                }
                Inst::Bin { dst, op, a, b } => {
                    let (av, bv) = (get(vals, a), get(vals, b));
                    let v = m.binop(op, av, bv);
                    vals[dst as usize] = Some(v);
                }
                Inst::Select { dst, cmp, a, b, t, e } => {
                    let (av, bv) = (get(vals, a), get(vals, b));
                    let (tv, ev) = (get(vals, t), get(vals, e));
                    let v = m.select(cmp, av, bv, tv, ev);
                    vals[dst as usize] = Some(v);
                }
            }
        }
    }
}

impl<W: Word> ObliviousProgram<W> for Tape<W> {
    fn name(&self) -> String {
        self.name.clone()
    }
    fn memory_words(&self) -> usize {
        self.memory_words
    }
    fn input_range(&self) -> core::ops::Range<usize> {
        self.input.clone()
    }
    fn output_range(&self) -> core::ops::Range<usize> {
        self.output.clone()
    }
    fn run<M: ObliviousMachine<W>>(&self, m: &mut M) {
        self.replay(m);
    }
}

/// The recording machine: allocates a fresh slot per produced value.
struct Recorder<W> {
    insts: Vec<Inst<W>>,
    next: u32,
    bound: usize,
}

impl<W: Word> Recorder<W> {
    fn fresh(&mut self) -> Slot {
        let s = self.next;
        self.next += 1;
        s
    }
}

impl<W: Word> ObliviousMachine<W> for Recorder<W> {
    type Value = Slot;

    fn read(&mut self, addr: usize) -> Slot {
        assert!(addr < self.bound, "tape recording: address {addr} out of bounds");
        let dst = self.fresh();
        self.insts.push(Inst::Read { dst, addr });
        dst
    }
    fn write(&mut self, addr: usize, v: Slot) {
        assert!(addr < self.bound, "tape recording: address {addr} out of bounds");
        self.insts.push(Inst::Write { addr, src: v });
    }
    fn constant(&mut self, c: W) -> Slot {
        let dst = self.fresh();
        self.insts.push(Inst::Const { dst, value: c });
        dst
    }
    fn unop(&mut self, op: UnOp, a: Slot) -> Slot {
        let dst = self.fresh();
        self.insts.push(Inst::Un { dst, op, a });
        dst
    }
    fn binop(&mut self, op: BinOp, a: Slot, b: Slot) -> Slot {
        let dst = self.fresh();
        self.insts.push(Inst::Bin { dst, op, a, b });
        dst
    }
    fn select(&mut self, cmp: CmpOp, a: Slot, b: Slot, t: Slot, e: Slot) -> Slot {
        let dst = self.fresh();
        self.insts.push(Inst::Select { dst, cmp, a, b, t, e });
        dst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{run_on_input, trace_of};

    /// Computes mem[1] = mem[0]² + 1, plus a dead min that DCE removes.
    struct SquarePlusOne;

    impl ObliviousProgram<f64> for SquarePlusOne {
        fn name(&self) -> String {
            "square-plus-one".into()
        }
        fn memory_words(&self) -> usize {
            2
        }
        fn input_range(&self) -> core::ops::Range<usize> {
            0..1
        }
        fn output_range(&self) -> core::ops::Range<usize> {
            1..2
        }
        fn run<M: ObliviousMachine<f64>>(&self, m: &mut M) {
            let x = m.read(0);
            let sq = m.mul(x, x);
            let one = m.constant(1.0);
            let y = m.add(sq, one);
            let _dead = m.min(x, one); // never written anywhere
            m.write(1, y);
        }
    }

    #[test]
    fn tape_replays_identically_on_scalar() {
        let tape = Tape::record(&SquarePlusOne);
        assert_eq!(run_on_input(&tape, &[3.0]), run_on_input(&SquarePlusOne, &[3.0]));
        assert_eq!(run_on_input(&tape, &[3.0]), vec![10.0]);
    }

    #[test]
    fn tape_memory_steps_match_trace() {
        let tape = Tape::record(&SquarePlusOne);
        assert_eq!(tape.memory_steps(), trace_of::<f64, _>(&SquarePlusOne).len());
        assert!(tape.len() > tape.memory_steps(), "register ops are recorded too");
    }

    #[test]
    fn dead_code_elimination_preserves_semantics() {
        let mut tape = Tape::record(&SquarePlusOne);
        let before = tape.len();
        let removed = tape.eliminate_dead_code();
        assert_eq!(removed, 1, "exactly the dead min is removed");
        assert!(tape.len() < before);
        assert_eq!(run_on_input(&tape, &[5.0]), vec![26.0]);
    }

    #[test]
    fn dce_never_removes_memory_writes() {
        let mut tape = Tape::record(&SquarePlusOne);
        tape.eliminate_dead_code();
        assert_eq!(
            tape.memory_steps(),
            trace_of::<f64, _>(&SquarePlusOne).len(),
            "reads feeding writes and all writes survive"
        );
    }

    #[test]
    fn tape_runs_in_bulk() {
        let tape = Tape::record(&SquarePlusOne);
        let inputs: Vec<Vec<f64>> = (0..10).map(|j| vec![j as f64]).collect();
        let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
        for layout in crate::Layout::all() {
            let outs = crate::program::bulk_execute(&tape, &refs, layout);
            for (j, out) in outs.iter().enumerate() {
                assert_eq!(out[0], (j * j) as f64 + 1.0);
            }
        }
    }

    #[test]
    fn tape_is_shareable_across_threads() {
        // Compile-time check: tapes are plain owned data (`Send + Sync +
        // 'static`), so a recorded tape can be compiled once and replayed
        // from every gpu-sim worker thread.
        fn assert_shareable<T: Send + Sync + Clone + 'static>() {}
        assert_shareable::<Tape<f64>>();
        assert_shareable::<Tape<u32>>();
    }
}

#[cfg(test)]
mod liveness_tests {
    use super::*;
    use crate::exec::BulkMachine;
    use crate::layout::Layout;
    use crate::machine::{ObliviousMachine, ObliviousProgram};

    /// A loop-heavy program with temporaries freed by the author.
    struct SweepAdd {
        n: usize,
    }

    impl ObliviousProgram<f32> for SweepAdd {
        fn name(&self) -> String {
            "sweep-add".into()
        }
        fn memory_words(&self) -> usize {
            self.n
        }
        fn input_range(&self) -> core::ops::Range<usize> {
            0..self.n
        }
        fn output_range(&self) -> core::ops::Range<usize> {
            0..self.n
        }
        fn run<M: ObliviousMachine<f32>>(&self, m: &mut M) {
            let mut r = m.zero();
            for i in 0..self.n {
                let x = m.read(i);
                let r2 = m.add(r, x);
                m.free(x);
                m.free(r);
                m.write(i, r2);
                r = r2;
            }
            m.free(r);
        }
    }

    #[test]
    fn replay_liveness_keeps_register_pressure_constant() {
        // The recorded tape has no free() calls, but replay's last-use
        // sweep must recover O(1) live registers — not O(n).
        let n = 128usize;
        let tape = Tape::record(&SweepAdd { n });
        let mut buf = vec![1.0f32; n * 4];
        let mut m = BulkMachine::new(&mut buf, 4, n, Layout::ColumnWise);
        tape.replay(&mut m);
        assert!(
            m.max_live_registers() <= 4,
            "liveness-driven frees must bound pressure, got {}",
            m.max_live_registers()
        );
    }

    #[test]
    fn last_use_handles_dce_gaps() {
        struct DeadTemp;
        impl ObliviousProgram<f32> for DeadTemp {
            fn name(&self) -> String {
                "dead-temp".into()
            }
            fn memory_words(&self) -> usize {
                2
            }
            fn input_range(&self) -> core::ops::Range<usize> {
                0..1
            }
            fn output_range(&self) -> core::ops::Range<usize> {
                1..2
            }
            fn run<M: ObliviousMachine<f32>>(&self, m: &mut M) {
                let x = m.read(0);
                let dead = m.mul(x, x);
                let _ = dead;
                m.write(1, x);
            }
        }
        let mut tape = Tape::record(&DeadTemp);
        assert_eq!(tape.eliminate_dead_code(), 1);
        // Replay over a machine: the removed slot never materialises.
        let out = crate::program::run_on_input(&tape, &[3.0]);
        assert_eq!(out, vec![3.0]);
    }
}
