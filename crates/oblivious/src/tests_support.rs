//! Minimal programs used by this crate's own tests.
//!
//! The real algorithm library lives in the `algorithms` crate (which
//! depends on this one), so tests here use these structural stand-ins:
//! one streaming program (each word touched O(1) times) and one
//! reuse-heavy DP-like program (t ≫ memory footprint).

use crate::machine::{ObliviousMachine, ObliviousProgram};

/// Read-add-write sweep: the shape of Algorithm Prefix-sums.
#[derive(Debug, Clone, Copy)]
pub struct StreamingSweep {
    /// Array length.
    pub n: usize,
}

impl ObliviousProgram<f32> for StreamingSweep {
    fn name(&self) -> String {
        format!("streaming-sweep(n={})", self.n)
    }
    fn memory_words(&self) -> usize {
        self.n
    }
    fn input_range(&self) -> core::ops::Range<usize> {
        0..self.n
    }
    fn output_range(&self) -> core::ops::Range<usize> {
        0..self.n
    }
    fn run<M: ObliviousMachine<f32>>(&self, m: &mut M) {
        let mut r = m.zero();
        for i in 0..self.n {
            let x = m.read(i);
            let r2 = m.add(r, x);
            m.free(x);
            m.free(r);
            m.write(i, r2);
            r = r2;
        }
        m.free(r);
    }
}

/// Cubic-time DP over an `n × n` table: the reuse shape of Algorithm OPT.
#[derive(Debug, Clone, Copy)]
pub struct CubicDp {
    /// Table dimension.
    pub n: usize,
}

impl ObliviousProgram<f32> for CubicDp {
    fn name(&self) -> String {
        format!("cubic-dp(n={})", self.n)
    }
    fn memory_words(&self) -> usize {
        self.n * self.n
    }
    fn input_range(&self) -> core::ops::Range<usize> {
        0..self.n * self.n
    }
    fn output_range(&self) -> core::ops::Range<usize> {
        0..self.n * self.n
    }
    fn run<M: ObliviousMachine<f32>>(&self, m: &mut M) {
        let n = self.n;
        for i in 0..n {
            for j in 0..n {
                let mut acc = m.zero();
                for k in 0..n {
                    let a = m.read(i * n + k);
                    let b = m.read(k * n + j);
                    let s = m.add(a, b);
                    m.free(a);
                    m.free(b);
                    let acc2 = m.min(acc, s);
                    m.free(s);
                    m.free(acc);
                    acc = acc2;
                }
                m.write(i * n + j, acc);
                m.free(acc);
            }
        }
    }
}

/// A streaming stand-in sized `n`.
#[must_use]
pub fn prefix_sums_like(n: usize) -> StreamingSweep {
    StreamingSweep { n }
}

/// A reuse-heavy stand-in over an `n × n` table.
#[must_use]
pub fn opt_like(n: usize) -> CubicDp {
    CubicDp { n }
}
