//! Executable forms of the paper's theoretical results.
//!
//! The paper's accounting is round-synchronous: a bulk step in which every
//! thread accesses its own instance's copy of one logical address costs
//! `(Σ_warps k_i) + l - 1` time units.  The functions here give the exact
//! per-claim totals (not just the O-bounds) under the paper's assumptions —
//! aligned `p` (a multiple of `w`) and instance memory at least `w` words —
//! and the certified lower bound of Theorem 3.  Model experiments
//! (`bench/model_tables`) and property tests compare simulator output
//! against them.

/// Exact row-wise bulk time of Lemma 1-style execution: `t` memory steps in
/// which the `p` threads land in `p` distinct address groups each, i.e.
/// `(p + l - 1) · t`.
///
/// Lemma 1's prefix-sums case is `t = 2n` (one read + one write per
/// element); Theorem 2 is the same formula for arbitrary `t`.
#[must_use]
pub fn row_wise_time(t: u64, p: u64, l: u64) -> u64 {
    (p + l - 1) * t
}

/// Exact column-wise bulk time under Lemma 1 / Theorem 2's assumptions
/// (`p` a multiple of `w`, aligned bases): `(p/w + l - 1) · t`.
#[must_use]
pub fn column_wise_time(t: u64, p: u64, w: u64, l: u64) -> u64 {
    (p.div_ceil(w) + l - 1) * t
}

/// Theorem 3's lower bound: any bulk execution of an oblivious algorithm
/// with `t` memory steps on `p` inputs needs
/// `Ω(pt/w + lt)` time.  We return the concrete certified quantity
/// `max(⌈pt/w⌉, lt)` — both arguments are valid lower bounds (bandwidth and
/// dependency-chain respectively), so their max is one too, and
/// `max ≥ (pt/w + lt)/2` makes it tight within a factor of 2.
#[must_use]
pub fn lower_bound(t: u64, p: u64, w: u64, l: u64) -> u64 {
    let bandwidth = (p * t).div_ceil(w);
    let chain = l * t;
    bandwidth.max(chain)
}

/// The optimality ratio of a measured time against Theorem 3's bound:
/// `measured / lower_bound`.  Column-wise execution must stay within a small
/// constant (2 under the paper's assumptions); row-wise grows like `w`.
#[must_use]
pub fn optimality_ratio(measured: u64, t: u64, p: u64, w: u64, l: u64) -> f64 {
    measured as f64 / lower_bound(t, p, w, l) as f64
}

/// Sequential memory steps of Algorithm Prefix-sums on `n` elements:
/// one read and one write per element (`a(2i) = a(2i+1) = i`).
#[must_use]
pub fn prefix_sums_steps(n: u64) -> u64 {
    2 * n
}

/// Sequential memory steps of Algorithm OPT on a convex `n`-gon.
///
/// Per `(i, j)` cell the algorithm reads `M[i,k]` and `M[k+1,j]` for each of
/// the `j - i` values of `k`, reads `c[i-1, j]`, and writes `M[i,j]`; the
/// initialisation writes `n - 1` diagonal zeros:
///
/// `t(n) = (n-1) + Σ_{i=1}^{n-2} Σ_{j=i+1}^{n-1} (2(j-i) + 2)`.
#[must_use]
pub fn opt_steps(n: u64) -> u64 {
    assert!(n >= 3, "a polygon needs at least 3 vertices");
    let mut t = n - 1; // diagonal initialisation writes
    for i in 1..=(n - 2) {
        for j in (i + 1)..=(n - 1) {
            t += 2 * (j - i) + 2;
        }
    }
    t
}

/// Corollary 5, row-wise: exact `(p + l - 1) · t(n)` with `t(n)` from
/// [`opt_steps`] (the paper states the `O(pn³ + ln³)` form).
#[must_use]
pub fn corollary5_row(n: u64, p: u64, l: u64) -> u64 {
    row_wise_time(opt_steps(n), p, l)
}

/// Corollary 5, column-wise: exact `(p/w + l - 1) · t(n)`.
#[must_use]
pub fn corollary5_col(n: u64, p: u64, w: u64, l: u64) -> u64 {
    column_wise_time(opt_steps(n), p, w, l)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma1_shapes() {
        // Row-wise prefix-sums: O(np + nl) — exactly (p + l - 1) * 2n.
        let (n, p, w, l) = (8u64, 32, 4, 5);
        let t = prefix_sums_steps(n);
        assert_eq!(t, 16);
        assert_eq!(row_wise_time(t, p, l), (32 + 4) * 16);
        assert_eq!(column_wise_time(t, p, w, l), (8 + 4) * 16);
    }

    #[test]
    fn column_wise_beats_row_wise_by_about_w() {
        let (t, p, w, l) = (1000u64, 4096, 32, 1);
        let row = row_wise_time(t, p, l);
        let col = column_wise_time(t, p, w, l);
        assert_eq!(row / col, w, "with l = 1 the gap is exactly w");
    }

    #[test]
    fn lower_bound_is_below_column_wise_within_2x() {
        for &(t, p, w, l) in
            &[(10u64, 64u64, 4u64, 5u64), (100, 1024, 32, 100), (7, 8, 8, 1), (1, 1, 1, 1)]
        {
            let lb = lower_bound(t, p, w, l);
            let col = column_wise_time(t, p, w, l);
            assert!(lb <= col, "lower bound must not exceed an achievable time");
            assert!(
                col <= 2 * lb + w * t, // slack for the ceil and the -1 terms
                "column-wise should be near-optimal: col={col} lb={lb}"
            );
        }
    }

    #[test]
    fn optimality_ratio_flags_row_wise() {
        let (t, p, w, l) = (100u64, 4096, 32, 4);
        let col = column_wise_time(t, p, w, l);
        let row = row_wise_time(t, p, l);
        let rc = optimality_ratio(col, t, p, w, l);
        let rr = optimality_ratio(row, t, p, w, l);
        assert!(rc < 2.0, "column-wise within 2x of optimal, got {rc}");
        assert!(rr > 16.0, "row-wise far from optimal, got {rr}");
    }

    #[test]
    fn opt_steps_is_cubic() {
        // t(n) = (n-1) + sum 2(j-i)+2 ~ n^3/3.
        // n = 3: 2 diagonal writes + the single (i=1, j=2) cell at 2*1+2.
        assert_eq!(opt_steps(3), 2 + (2 + 2));
        // n = 4: 3 diagonal writes + cells (1,2)=4, (1,3)=6, (2,3)=4.
        assert_eq!(opt_steps(4), 3 + 4 + 6 + 4);
        let t64 = opt_steps(64) as f64;
        let t128 = opt_steps(128) as f64;
        let ratio = t128 / t64;
        assert!((7.0..9.0).contains(&ratio), "doubling n scales ~8x, got {ratio}");
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn degenerate_polygon_rejected() {
        let _ = opt_steps(2);
    }

    #[test]
    fn corollary5_consistency() {
        let (n, p, w, l) = (8u64, 64, 4, 5);
        assert_eq!(corollary5_row(n, p, l), row_wise_time(opt_steps(n), p, l));
        assert_eq!(corollary5_col(n, p, w, l), column_wise_time(opt_steps(n), p, w, l));
    }
}
