//! Machine word types.
//!
//! A [`Word`] is the unit of memory on the UMM: programs are generic over it
//! so the same oblivious program runs on `f32` data (the paper's
//! experiments), `f64`, or integer words (cipher kernels).

use crate::ops::{BinOp, CmpOp, UnOp};
use core::fmt::Debug;

/// A memory word: the scalar element type oblivious programs compute on.
///
/// Implementations must make every operation **total** — bulk lockstep
/// execution applies the same operation across thousands of lanes and a trap
/// on one lane (overflow, division by zero) would poison the batch, so
/// integer words wrap and divide-by-zero yields [`Word::ZERO`].
pub trait Word: Copy + PartialOrd + PartialEq + Debug + Send + Sync + 'static {
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// A value larger than any finite operand — the paper's `+∞` sentinel
    /// used to seed minimisations (`f32::INFINITY`, integer `MAX`).
    const POS_INF: Self;

    /// Apply a unary operation.
    ///
    /// # Panics
    ///
    /// Panics if a bitwise operation is applied to a floating word; oblivious
    /// programs that use bitwise operations must be written against
    /// [`IntWord`] bounds so this is a programming error, not a data error.
    fn apply_un(op: UnOp, a: Self) -> Self;

    /// Apply a binary operation (same panic rule as [`Word::apply_un`]).
    fn apply_bin(op: BinOp, a: Self, b: Self) -> Self;

    /// Evaluate a comparison predicate.
    fn compare(op: CmpOp, a: Self, b: Self) -> bool {
        op.eval(&a, &b)
    }

    /// Lossy conversion from `f64`, used by workload generators and floating
    /// constants in programs.
    fn from_f64(v: f64) -> Self;

    /// Lossy conversion to `f64`, used by result checkers.
    fn to_f64(self) -> f64;

    /// The word's raw bit pattern, zero-extended to 64 bits.
    ///
    /// This is the serialization used when a compiled-schedule constant
    /// round-trips through `obs::json`: `Json` integers are `i64`, so bit
    /// patterns travel as fixed-width hex strings instead of numbers and
    /// must survive exactly (`from_bits_u64(w.to_bits_u64()) == w` bitwise,
    /// including NaN payloads on floating words).
    fn to_bits_u64(self) -> u64;

    /// Inverse of [`Word::to_bits_u64`].  Bits above the word's width are
    /// ignored (narrow words truncate).
    fn from_bits_u64(bits: u64) -> Self;
}

/// Floating-point words: `f32` (the paper's element type) and `f64`.
pub trait FloatWord: Word {}

/// Integer words with exact index arithmetic, used by cipher kernels and by
/// programs that store array indices (e.g. the OPT argmin table).
pub trait IntWord: Word + Eq + Ord {
    /// Exact conversion from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if the index does not fit the word.
    fn from_index(i: usize) -> Self;
    /// Exact conversion back to a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if the word is negative or does not fit a `usize`.
    fn to_index(self) -> usize;
}

macro_rules! impl_float_word {
    ($t:ty, $bits:ty) => {
        impl Word for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const POS_INF: Self = <$t>::INFINITY;

            #[inline]
            fn apply_un(op: UnOp, a: Self) -> Self {
                match op {
                    UnOp::Neg => -a,
                    UnOp::Not | UnOp::Shl(_) | UnOp::Shr(_) => {
                        panic!("bitwise {:?} is not defined on floating words", op)
                    }
                }
            }

            #[inline]
            fn apply_bin(op: BinOp, a: Self, b: Self) -> Self {
                match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                    BinOp::Min => {
                        if b < a {
                            b
                        } else {
                            a
                        }
                    }
                    BinOp::Max => {
                        if b > a {
                            b
                        } else {
                            a
                        }
                    }
                    BinOp::Xor | BinOp::And | BinOp::Or => {
                        panic!("bitwise {:?} is not defined on floating words", op)
                    }
                }
            }

            #[inline]
            fn from_f64(v: f64) -> Self {
                v as $t
            }

            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }

            #[inline]
            #[allow(clippy::unnecessary_cast)]
            fn to_bits_u64(self) -> u64 {
                self.to_bits() as u64
            }

            #[inline]
            #[allow(clippy::unnecessary_cast)]
            fn from_bits_u64(bits: u64) -> Self {
                <$t>::from_bits(bits as $bits)
            }
        }

        impl FloatWord for $t {}
    };
}

impl_float_word!(f32, u32);
impl_float_word!(f64, u64);

macro_rules! impl_int_word {
    ($t:ty, $signed:expr) => {
        impl Word for $t {
            const ZERO: Self = 0;
            const ONE: Self = 1;
            const POS_INF: Self = <$t>::MAX;

            #[inline]
            fn apply_un(op: UnOp, a: Self) -> Self {
                match op {
                    UnOp::Neg => a.wrapping_neg(),
                    UnOp::Not => !a,
                    UnOp::Shl(k) => a.wrapping_shl(k),
                    UnOp::Shr(k) => {
                        // Logical shift: mask sign-extension for signed types.
                        if $signed {
                            ((a as u64).wrapping_shr(k) & (u64::MAX >> (64 - <$t>::BITS))) as $t
                        } else {
                            a.wrapping_shr(k)
                        }
                    }
                }
            }

            #[inline]
            fn apply_bin(op: BinOp, a: Self, b: Self) -> Self {
                match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            0
                        } else {
                            a.wrapping_div(b)
                        }
                    }
                    BinOp::Min => a.min(b),
                    BinOp::Max => a.max(b),
                    BinOp::Xor => a ^ b,
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                }
            }

            #[inline]
            fn from_f64(v: f64) -> Self {
                v as $t
            }

            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }

            #[inline]
            #[allow(clippy::unnecessary_cast, clippy::cast_lossless)]
            fn to_bits_u64(self) -> u64 {
                self as u64
            }

            #[inline]
            #[allow(clippy::unnecessary_cast)]
            fn from_bits_u64(bits: u64) -> Self {
                bits as $t
            }
        }

        impl IntWord for $t {
            #[inline]
            fn from_index(i: usize) -> Self {
                <$t>::try_from(i).expect("index does not fit word type")
            }

            #[inline]
            fn to_index(self) -> usize {
                usize::try_from(self).expect("word is not a valid index")
            }
        }
    };
}

impl_int_word!(u32, false);
impl_int_word!(u64, false);
impl_int_word!(i64, true);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_arithmetic() {
        assert_eq!(f32::apply_bin(BinOp::Add, 1.5, 2.5), 4.0);
        assert_eq!(f32::apply_bin(BinOp::Min, 3.0, -1.0), -1.0);
        assert_eq!(f32::apply_bin(BinOp::Max, 3.0, -1.0), 3.0);
        assert_eq!(f64::apply_un(UnOp::Neg, 2.0), -2.0);
        assert!(f32::compare(CmpOp::Lt, 1.0, 2.0));
        assert_eq!(f32::POS_INF, f32::INFINITY);
    }

    #[test]
    fn min_with_infinity_seeds_minimisation() {
        // The OPT inner loop starts with s = +inf and folds mins into it.
        let s = f32::POS_INF;
        assert_eq!(f32::apply_bin(BinOp::Min, s, 42.0), 42.0);
        assert_eq!(u32::apply_bin(BinOp::Min, u32::POS_INF, 7), 7);
    }

    #[test]
    #[should_panic(expected = "not defined on floating")]
    fn float_xor_panics() {
        let _ = f32::apply_bin(BinOp::Xor, 1.0, 2.0);
    }

    #[test]
    fn integer_wrapping() {
        assert_eq!(u32::apply_bin(BinOp::Add, u32::MAX, 1), 0);
        assert_eq!(u32::apply_bin(BinOp::Mul, 0x9E3779B9, 2), 0x9E3779B9u32.wrapping_mul(2));
        assert_eq!(u32::apply_bin(BinOp::Div, 5, 0), 0, "div-by-zero is total");
        assert_eq!(i64::apply_un(UnOp::Neg, i64::MIN), i64::MIN);
    }

    #[test]
    fn integer_shifts_are_logical() {
        assert_eq!(u32::apply_un(UnOp::Shl(4), 1), 16);
        assert_eq!(u32::apply_un(UnOp::Shr(5), 0xFFFF_FFFF), 0x07FF_FFFF);
        // Signed right shift must not sign-extend (logical semantics).
        assert_eq!(i64::apply_un(UnOp::Shr(1), -2), ((u64::MAX >> 1) as i64));
    }

    #[test]
    fn index_roundtrip() {
        assert_eq!(u32::from_index(77).to_index(), 77);
        assert_eq!(i64::from_index(0).to_index(), 0);
        assert_eq!(u64::from_index(1 << 40).to_index(), 1 << 40);
    }

    #[test]
    #[should_panic]
    fn oversized_index_panics() {
        let _ = u32::from_index(usize::MAX);
    }

    #[test]
    fn bit_patterns_round_trip_exactly() {
        for v in [0.0f32, -0.0, 1.5, f32::INFINITY, f32::NAN, f32::MIN_POSITIVE] {
            assert_eq!(f32::from_bits_u64(v.to_bits_u64()).to_bits(), v.to_bits());
        }
        for v in [0.0f64, -0.0, core::f64::consts::PI, f64::NEG_INFINITY, f64::NAN] {
            assert_eq!(f64::from_bits_u64(v.to_bits_u64()).to_bits(), v.to_bits());
        }
        for v in [0u64, 1, u64::MAX, 0x9E37_79B9_7F4A_7C15] {
            assert_eq!(u64::from_bits_u64(v.to_bits_u64()), v);
        }
        assert_eq!(u32::from_bits_u64(u32::MAX.to_bits_u64()), u32::MAX);
        assert_eq!(i64::from_bits_u64((-1i64).to_bits_u64()), -1);
        // Zero-extension: a u32 pattern occupies only the low 32 bits.
        assert_eq!(0xFFFF_FFFFu32.to_bits_u64(), 0xFFFF_FFFFu64);
    }

    #[test]
    fn f64_conversions() {
        assert_eq!(f32::from_f64(0.5), 0.5f32);
        assert_eq!(u32::from_f64(3.9), 3);
        assert_eq!(7u64.to_f64(), 7.0);
    }
}
