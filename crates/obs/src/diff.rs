//! Structural diffing of run reports with per-metric tolerance rules.
//!
//! [`diff_reports`] walks two [`Json`] documents (typically two
//! [`crate::RunReport`]s) in parallel and classifies every difference:
//!
//! * **Deterministic** metrics — model time units, round counts, port
//!   traffic, histogram shapes — must match within the configured relative
//!   tolerance, or the difference is a *regression*.
//! * **Informational** metrics — wall-clock seconds, worker counts, and
//!   scheduler-dependent block distributions — vary run to run and machine
//!   to machine, so they are reported but never gated.  This is what lets
//!   CI compare a fresh smoke run against a baseline recorded on a
//!   different machine without flaking.
//!
//! Histogram sections (the `{"total", "mean", "max", "buckets"}` shape
//! emitted by [`crate::Histogram::to_json`]) are compared by summary
//! quantiles when a tolerance is set, so a one-sample shift in a bucket
//! does not trip an otherwise tolerant gate.

use crate::json::Json;

/// How a metric path is treated by the diff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricClass {
    /// Must match within tolerance; differences are regressions.
    Deterministic,
    /// Machine- or schedule-dependent; differences are reported only.
    Informational,
}

/// Tolerance rules for [`diff_reports`].
#[derive(Debug, Clone, Default)]
pub struct DiffConfig {
    /// Relative tolerance for deterministic numeric leaves
    /// (`0.0` = exact match required; `0.05` = 5% drift allowed).
    pub tolerance: f64,
    /// Extra substring patterns marking paths as informational, on top of
    /// the built-in timing/scheduling rules.
    pub informational: Vec<String>,
}

/// One observed difference between the two documents.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Dotted path of the differing leaf (`model.umm.stats.rounds`).
    pub path: String,
    /// Human-readable description of the difference.
    pub message: String,
    /// True when the difference gates (deterministic, beyond tolerance).
    pub regression: bool,
}

/// The result of diffing two documents.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// All observed differences, in document order.
    pub entries: Vec<DiffEntry>,
    /// Number of leaf values compared.
    pub leaves_compared: usize,
}

impl DiffReport {
    /// Number of gating differences.
    #[must_use]
    pub fn regression_count(&self) -> usize {
        self.entries.iter().filter(|e| e.regression).count()
    }

    /// True when no difference gates.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.regression_count() == 0
    }

    /// A stable multi-line human-readable summary.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = format!(
            "compared {} leaves: {} regression(s), {} informational difference(s)\n",
            self.leaves_compared,
            self.regression_count(),
            self.entries.len() - self.regression_count()
        );
        for e in &self.entries {
            let tag = if e.regression { "REGRESSION" } else { "      info" };
            out.push_str(&format!("{tag} {}: {}\n", e.path, e.message));
        }
        out
    }
}

/// The built-in classification of a metric path.
///
/// Timing leaves (`*_s`, `seconds`, `wall_seconds`), host shape
/// (`worker_threads`), and scheduler-dependent block placement
/// (`workers[i].blocks`, the `blocks_detail` subtree, `block_imbalance`)
/// are informational; everything else is deterministic.
#[must_use]
pub fn classify(path: &str) -> MetricClass {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    let leaf = leaf.split('[').next().unwrap_or(leaf);
    let timing = leaf.ends_with("_s")
        || leaf == "seconds"
        || leaf == "wall_seconds"
        || leaf == "ns_per_iter"
        || leaf == "worker_threads"
        || leaf == "block_imbalance"
        || leaf == "dropped_events";
    let scheduling =
        path.contains("blocks_detail") || (path.contains(".workers[") && leaf == "blocks");
    if timing || scheduling {
        MetricClass::Informational
    } else {
        MetricClass::Deterministic
    }
}

fn class_of(path: &str, cfg: &DiffConfig) -> MetricClass {
    if cfg.informational.iter().any(|p| path.contains(p.as_str())) {
        return MetricClass::Informational;
    }
    classify(path)
}

/// Structurally diff `a` (baseline) against `b` (candidate).
#[must_use]
pub fn diff_reports(a: &Json, b: &Json, cfg: &DiffConfig) -> DiffReport {
    let mut report = DiffReport::default();
    walk("", a, b, cfg, &mut report);
    report
}

fn entry(report: &mut DiffReport, path: &str, message: String, regression: bool) {
    report.entries.push(DiffEntry { path: path.to_string(), message, regression });
}

fn join(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

fn is_histogram(j: &Json) -> bool {
    match j {
        Json::Obj(fields) => {
            fields.len() == 4
                && ["total", "mean", "max", "buckets"]
                    .iter()
                    .all(|k| fields.iter().any(|(n, _)| n == *k))
        }
        _ => false,
    }
}

fn walk(path: &str, a: &Json, b: &Json, cfg: &DiffConfig, report: &mut DiffReport) {
    match (a, b) {
        (Json::Obj(af), Json::Obj(bf)) => {
            if cfg.tolerance > 0.0 && is_histogram(a) && is_histogram(b) {
                compare_histograms(path, a, b, cfg, report);
                return;
            }
            for (k, av) in af {
                match bf.iter().find(|(n, _)| n == k) {
                    Some((_, bv)) => walk(&join(path, k), av, bv, cfg, report),
                    None => {
                        let p = join(path, k);
                        let gate = class_of(&p, cfg) == MetricClass::Deterministic;
                        entry(report, &p, "present in baseline, missing in candidate".into(), gate);
                    }
                }
            }
            for (k, _) in bf {
                if !af.iter().any(|(n, _)| n == k) {
                    let p = join(path, k);
                    let gate = class_of(&p, cfg) == MetricClass::Deterministic;
                    entry(report, &p, "missing in baseline, present in candidate".into(), gate);
                }
            }
        }
        (Json::Arr(aa), Json::Arr(ba)) => {
            if aa.len() != ba.len() {
                let gate = class_of(path, cfg) == MetricClass::Deterministic;
                entry(report, path, format!("length {} -> {}", aa.len(), ba.len()), gate);
            }
            for (i, (av, bv)) in aa.iter().zip(ba.iter()).enumerate() {
                walk(&format!("{path}[{i}]"), av, bv, cfg, report);
            }
        }
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => compare_numbers(path, x, y, cfg, report),
            _ => compare_scalars(path, a, b, cfg, report),
        },
    }
}

fn compare_numbers(path: &str, x: f64, y: f64, cfg: &DiffConfig, report: &mut DiffReport) {
    report.leaves_compared += 1;
    #[allow(clippy::float_cmp)]
    if x == y {
        return;
    }
    let rel = (y - x).abs() / x.abs().max(y.abs()).max(f64::EPSILON);
    let delta = format!("{x} -> {y} ({:+.2}%)", 100.0 * (y - x) / x.abs().max(f64::EPSILON));
    match class_of(path, cfg) {
        MetricClass::Informational => {
            entry(report, path, format!("{delta} [timing/scheduling, not gated]"), false);
        }
        MetricClass::Deterministic if rel > cfg.tolerance => {
            entry(
                report,
                path,
                format!("{delta} exceeds tolerance {:.2}%", 100.0 * cfg.tolerance),
                true,
            );
        }
        MetricClass::Deterministic => {
            entry(report, path, format!("{delta} within tolerance"), false);
        }
    }
}

fn compare_scalars(path: &str, a: &Json, b: &Json, cfg: &DiffConfig, report: &mut DiffReport) {
    report.leaves_compared += 1;
    if a == b {
        return;
    }
    let gate = class_of(path, cfg) == MetricClass::Deterministic;
    entry(report, path, format!("{} -> {}", a.to_compact(), b.to_compact()), gate);
}

fn hist_buckets(j: &Json) -> Option<Vec<(u64, u64)>> {
    let arr = j.get("buckets")?.as_arr()?;
    let mut out = Vec::with_capacity(arr.len());
    for pair in arr {
        let p = pair.as_arr()?;
        if p.len() != 2 {
            return None;
        }
        out.push((u64::try_from(p[0].as_i64()?).ok()?, u64::try_from(p[1].as_i64()?).ok()?));
    }
    Some(out)
}

/// The `q`-quantile of a `[(value, count)]` bucket list (None when empty).
#[must_use]
pub fn bucket_quantile(buckets: &[(u64, u64)], q: f64) -> Option<u64> {
    let total: u64 = buckets.iter().map(|(_, c)| c).sum();
    if total == 0 {
        return None;
    }
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for &(v, c) in buckets {
        seen += c;
        if seen >= rank {
            return Some(v);
        }
    }
    buckets.last().map(|&(v, _)| v)
}

fn compare_histograms(path: &str, a: &Json, b: &Json, cfg: &DiffConfig, report: &mut DiffReport) {
    let (Some(ab), Some(bb)) = (hist_buckets(a), hist_buckets(b)) else {
        // Malformed histogram shape: fall back to exact scalar comparison
        // of the summary fields.
        for k in ["total", "mean", "max"] {
            if let (Some(av), Some(bv)) = (a.get(k), b.get(k)) {
                walk(&join(path, k), av, bv, cfg, report);
            }
        }
        return;
    };
    if let (Some(at), Some(bt)) =
        (a.path("total").and_then(Json::as_f64), b.path("total").and_then(Json::as_f64))
    {
        compare_numbers(&join(path, "total"), at, bt, cfg, report);
    }
    if let (Some(am), Some(bm)) =
        (a.path("mean").and_then(Json::as_f64), b.path("mean").and_then(Json::as_f64))
    {
        compare_numbers(&join(path, "mean"), am, bm, cfg, report);
    }
    for (label, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99), ("p100", 1.0)] {
        let (qa, qb) = (bucket_quantile(&ab, q), bucket_quantile(&bb, q));
        match (qa, qb) {
            (Some(x), Some(y)) => {
                compare_numbers(&format!("{}.{label}", path), x as f64, y as f64, cfg, report);
            }
            (None, None) => {}
            _ => entry(
                report,
                &format!("{}.{label}", path),
                "histogram emptiness differs".into(),
                true,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report3(units: u64, secs: f64, threads: u64) -> Json {
        Json::parse(&format!(
            r#"{{"tool":"t","schema_version":1,"wall_seconds":{secs},
                "model":{{"time_units":{units},"rounds":4}},
                "device":{{"worker_threads":{threads},"workers":[{{"id":0,"blocks":3,"busy_s":0.1}}]}}}}"#
        ))
        .unwrap()
    }

    fn report(units: u64, secs: f64) -> Json {
        report3(units, secs, 8)
    }

    #[test]
    fn self_diff_is_empty() {
        let a = report(100, 0.5);
        let d = diff_reports(&a, &a, &DiffConfig::default());
        assert!(d.is_clean());
        assert!(d.entries.is_empty());
        assert!(d.leaves_compared > 0);
        assert!(d.summary().contains("0 regression(s)"));
    }

    #[test]
    fn deterministic_drift_beyond_tolerance_gates() {
        let a = report(100, 0.5);
        let b = report(130, 0.5);
        let d = diff_reports(&a, &b, &DiffConfig { tolerance: 0.05, ..Default::default() });
        assert_eq!(d.regression_count(), 1);
        assert!(d.summary().contains("model.time_units"));
        // Within a generous tolerance the same drift is informational.
        let d = diff_reports(&a, &b, &DiffConfig { tolerance: 0.5, ..Default::default() });
        assert!(d.is_clean());
        assert_eq!(d.entries.len(), 1);
    }

    #[test]
    fn timing_and_scheduling_leaves_never_gate() {
        let a = report(100, 0.5);
        let b = report3(100, 9.9, 2);
        let d = diff_reports(&a, &b, &DiffConfig::default());
        assert!(d.is_clean(), "{}", d.summary());
        assert!(d.entries.iter().all(|e| !e.regression));
        assert!(!d.entries.is_empty());
    }

    #[test]
    fn missing_and_extra_keys_gate() {
        let a = Json::parse(r#"{"x":1,"y":2}"#).unwrap();
        let b = Json::parse(r#"{"x":1,"z":3}"#).unwrap();
        let d = diff_reports(&a, &b, &DiffConfig::default());
        assert_eq!(d.regression_count(), 2);
    }

    #[test]
    fn type_and_string_changes_gate() {
        let a = Json::parse(r#"{"name":"fft","v":1}"#).unwrap();
        let b = Json::parse(r#"{"name":"opt","v":"1"}"#).unwrap();
        let d = diff_reports(&a, &b, &DiffConfig::default());
        assert_eq!(d.regression_count(), 2);
    }

    #[test]
    fn array_length_mismatch_gates() {
        let a = Json::parse(r#"{"points":[1,2,3]}"#).unwrap();
        let b = Json::parse(r#"{"points":[1,2]}"#).unwrap();
        let d = diff_reports(&a, &b, &DiffConfig::default());
        assert_eq!(d.regression_count(), 1);
    }

    #[test]
    fn histograms_compare_by_quantiles_under_tolerance() {
        let mk = |shift: u64| {
            Json::parse(&format!(
                r#"{{"h":{{"total":100,"mean":2.0,"max":{},"buckets":[[1,50],[2,40],[{},10]]}}}}"#,
                4 + shift,
                4 + shift
            ))
            .unwrap()
        };
        let cfg = DiffConfig { tolerance: 0.30, ..Default::default() };
        // p50/p90 identical, p99/p100 shift 4 -> 5 = +25% < 30%: clean.
        let d = diff_reports(&mk(0), &mk(1), &cfg);
        assert!(d.is_clean(), "{}", d.summary());
        // A 4 -> 8 tail shift (+100%) gates.
        let d = diff_reports(&mk(0), &mk(4), &cfg);
        assert!(!d.is_clean());
        // With tolerance 0 the same histograms are compared structurally.
        let d = diff_reports(&mk(0), &mk(1), &DiffConfig::default());
        assert!(!d.is_clean());
    }

    #[test]
    fn bucket_quantiles() {
        let b = vec![(1u64, 50u64), (2, 40), (9, 10)];
        assert_eq!(bucket_quantile(&b, 0.0), Some(1));
        assert_eq!(bucket_quantile(&b, 0.5), Some(1));
        assert_eq!(bucket_quantile(&b, 0.9), Some(2));
        assert_eq!(bucket_quantile(&b, 0.95), Some(9));
        assert_eq!(bucket_quantile(&b, 1.0), Some(9));
        assert_eq!(bucket_quantile(&[], 0.5), None);
    }

    #[test]
    fn custom_informational_patterns() {
        let a = Json::parse(r#"{"noisy":{"v":1}}"#).unwrap();
        let b = Json::parse(r#"{"noisy":{"v":2}}"#).unwrap();
        let cfg = DiffConfig { informational: vec!["noisy".into()], ..Default::default() };
        assert!(diff_reports(&a, &b, &cfg).is_clean());
        assert!(!diff_reports(&a, &b, &DiffConfig::default()).is_clean());
    }

    #[test]
    fn classification_rules() {
        assert_eq!(classify("wall_seconds"), MetricClass::Informational);
        assert_eq!(classify("device.workers[3].busy_s"), MetricClass::Informational);
        assert_eq!(classify("device.workers[3].blocks"), MetricClass::Informational);
        assert_eq!(classify("device.blocks_detail[0].worker"), MetricClass::Informational);
        assert_eq!(classify("device.worker_threads"), MetricClass::Informational);
        assert_eq!(classify("figures[0].cpu.points[2].seconds"), MetricClass::Informational);
        assert_eq!(classify("model.umm.stats.time_units"), MetricClass::Deterministic);
        assert_eq!(classify("device.blocks"), MetricClass::Deterministic);
        assert_eq!(classify("engine.loads"), MetricClass::Deterministic);
    }
}
