//! A small, dependency-free JSON value: builder, writer, and parser.
//!
//! The workspace builds with no registry access, so serde is not an
//! option.  This module covers what the profiling layer actually needs:
//! order-preserving objects (reports read top-to-bottom), exact integers,
//! shortest-round-trip floats, and a strict parser good enough for tests
//! to load a report back and assert on its fields.

use std::fmt::Write as _;

/// A JSON value.  Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An exact integer (covers every counter in the workspace).
    Int(i64),
    /// A float; non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        i64::try_from(v).map_or(Json::Float(v as f64), Json::Int)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::from(v as u64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Int(i64::from(v))
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_owned())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// An empty object.
    #[must_use]
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert (or replace) `key` in an object.  Panics on non-objects.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        let Json::Obj(fields) = self else { panic!("set on non-object Json") };
        let value = value.into();
        if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            fields.push((key.to_owned(), value));
        }
        self
    }

    /// Field of an object, if present.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Walk a dotted path of object fields (`"model.rounds"`).
    #[must_use]
    pub fn path(&self, dotted: &str) -> Option<&Json> {
        dotted.split('.').try_fold(self, |v, key| v.get(key))
    }

    /// The integer value, widening from `Int` only.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value as `f64` (from `Int` or `Float`).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object fields.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Compact serialization.
    #[must_use]
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization, two-space indent, trailing newline.
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    // Rust's shortest-round-trip Display; force a fraction so
                    // the value re-parses as a float.
                    let s = format!("{v}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }

    /// Parse a JSON document (must consume all non-whitespace input).
    ///
    /// # Errors
    ///
    /// Returns a message carrying the byte offset of the failure and a
    /// snippet of the surrounding input, so a malformed line arriving over
    /// a wire protocol is diagnosable from the error text alone.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing garbage"));
        }
        Ok(v)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// How many bytes of input to quote on each side of a parse failure.
const ERR_CONTEXT: usize = 24;

/// Render `msg` with the byte offset and a `«here»`-marked snippet of the
/// surrounding input.
fn err_at(bytes: &[u8], pos: usize, msg: &str) -> String {
    let pos = pos.min(bytes.len());
    let start = pos.saturating_sub(ERR_CONTEXT);
    let end = (pos + ERR_CONTEXT).min(bytes.len());
    let before = String::from_utf8_lossy(&bytes[start..pos]);
    let after = String::from_utf8_lossy(&bytes[pos..end]);
    let pre = if start > 0 { "…" } else { "" };
    let post = if end < bytes.len() { "…" } else { "" };
    format!("{msg} at byte {pos} near `{pre}{before}«here»{after}{post}`")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    /// A parse error anchored at the current position.
    fn err(&self, msg: &str) -> String {
        err_at(self.bytes, self.pos, msg)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    if fields.iter().any(|(k, _)| *k == key) {
                        return Err(self.err(&format!("duplicate key \"{key}\"")));
                    }
                    self.skip_ws();
                    self.expect(b':')?;
                    fields.push((key, self.value()?));
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("unexpected input")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| err_at(self.bytes, self.pos, "unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00))
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad \\u escape {code:#x}"))?,
                            );
                        }
                        _ => return Err(err_at(self.bytes, self.pos - 1, "bad escape")),
                    }
                }
                Some(&b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: the input is a &str, so this is valid;
                    // copy the whole scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let chunk =
            self.bytes.get(self.pos..self.pos + 4).ok_or_else(|| "short \\u escape".to_string())?;
        let s = std::str::from_utf8(chunk).map_err(|e| e.to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|e| e.to_string())?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            text.parse::<f64>().map(Json::Float).map_err(|e| e.to_string())
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .or_else(|_| text.parse::<f64>().map(Json::Float))
                .map_err(|e| e.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_write_compact() {
        let mut j = Json::obj();
        j.set("tool", "bulkrun").set("p", 4096u64).set("ok", true);
        j.set("ratio", 1.5);
        j.set("hist", vec![1u64, 2, 3]);
        assert_eq!(
            j.to_compact(),
            r#"{"tool":"bulkrun","p":4096,"ok":true,"ratio":1.5,"hist":[1,2,3]}"#
        );
    }

    #[test]
    fn set_replaces_in_place() {
        let mut j = Json::obj();
        j.set("a", 1u64).set("b", 2u64).set("a", 3u64);
        assert_eq!(j.to_compact(), r#"{"a":3,"b":2}"#);
    }

    #[test]
    fn floats_round_trip_and_stay_floats() {
        let j = Json::Float(2.0);
        assert_eq!(j.to_compact(), "2.0");
        assert_eq!(Json::parse("2.0").unwrap(), Json::Float(2.0));
        assert_eq!(Json::parse("2").unwrap(), Json::Int(2));
        assert_eq!(Json::Float(f64::NAN).to_compact(), "null");
    }

    #[test]
    fn parser_handles_nesting_and_escapes() {
        let text = r#" { "a\n\"x\"": [1, -2.5e1, null, {"k": false}], "u": "Aé" } "#;
        let j = Json::parse(text).unwrap();
        assert_eq!(j.get("u").unwrap().as_str(), Some("Aé"));
        let arr = j.get("a\n\"x\"").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_i64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-25.0));
        assert_eq!(arr[3].get("k"), Some(&Json::Bool(false)));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nope").is_err());
    }

    #[test]
    fn pretty_output_round_trips() {
        let mut j = Json::obj();
        j.set("hist", vec![Json::Arr(vec![Json::Int(0), Json::Int(7)])]);
        j.set("empty", Json::obj());
        let pretty = j.to_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), j);
        assert!(pretty.contains("\n  \"hist\""));
    }

    #[test]
    fn path_walks_nested_objects() {
        let j = Json::parse(r#"{"model":{"umm":{"rounds":16}}}"#).unwrap();
        assert_eq!(j.path("model.umm.rounds").unwrap().as_i64(), Some(16));
        assert!(j.path("model.dmm").is_none());
    }

    #[test]
    fn u64_beyond_i64_degrades_to_float() {
        let j = Json::from(u64::MAX);
        assert!(matches!(j, Json::Float(_)));
        assert_eq!(Json::from(42u64), Json::Int(42));
    }

    #[test]
    fn escaped_strings_round_trip() {
        let mut j = Json::obj();
        j.set("s", "quote \" backslash \\ slash / tab \t nl \n cr \r nul \u{0} bell \u{7}");
        let compact = j.to_compact();
        assert_eq!(Json::parse(&compact).unwrap(), j);
        let pretty = j.to_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), j);
    }

    #[test]
    fn unicode_round_trips_including_escapes_and_surrogate_pairs() {
        let mut j = Json::obj();
        j.set("plain", "héllo wörld — ∑ ∞ 日本語");
        j.set("astral", "🚀 𝕌𝕄𝕄 🎯");
        assert_eq!(Json::parse(&j.to_compact()).unwrap(), j);
        // Escaped forms parse to the same values: BMP escape and a
        // surrogate pair for an astral-plane scalar.
        let j2 = Json::parse(r#"{"bmp":"é","pair":"🚀"}"#).unwrap();
        assert_eq!(j2.get("bmp").unwrap().as_str(), Some("é"));
        assert_eq!(j2.get("pair").unwrap().as_str(), Some("🚀"));
        assert_eq!(Json::parse(&j2.to_compact()).unwrap(), j2);
    }

    #[test]
    fn deeply_nested_structures_round_trip() {
        let mut j = Json::Int(7);
        for depth in 0..64 {
            if depth % 2 == 0 {
                j = Json::Arr(vec![j]);
            } else {
                let mut o = Json::obj();
                o.set("d", j);
                j = o;
            }
        }
        assert_eq!(Json::parse(&j.to_compact()).unwrap(), j);
        assert_eq!(Json::parse(&j.to_pretty()).unwrap(), j);
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        assert!(Json::parse(r#"{"a":1} extra"#).unwrap_err().contains("trailing"));
        assert!(Json::parse("[1,2] [3]").unwrap_err().contains("trailing"));
        assert!(Json::parse("1,").unwrap_err().contains("trailing"));
        // Trailing whitespace is fine.
        assert!(Json::parse("{\"a\":1}  \n").is_ok());
    }

    /// Parse errors must be diagnosable from the text alone: every failure
    /// carries its byte offset and a `«here»`-marked snippet of the input
    /// around it — the contract the bulkd wire protocol relies on to
    /// explain malformed client lines.
    #[test]
    fn parse_errors_carry_offset_and_context_snippet() {
        let err = Json::parse(r#"{"cmd":"submit","p":boom}"#).unwrap_err();
        assert!(err.contains("unexpected input"), "{err}");
        assert!(err.contains("at byte 20"), "{err}");
        assert!(err.contains("«here»boom}"), "{err}");
        assert!(err.contains(r#"{"cmd":"submit","p":«here»"#), "{err}");

        // Long inputs are windowed with ellipses on the truncated sides.
        let long = format!("[{}oops]", "1,".repeat(40));
        let err = Json::parse(&long).unwrap_err();
        assert!(err.contains("at byte 81"), "{err}");
        assert!(err.contains("…1,1,"), "{err}");
        assert!(err.contains("«here»oops]"), "{err}");
        assert!(!err.ends_with('…'), "right side is not truncated: {err}");

        // Failures at end-of-input still render (empty right side).
        let err = Json::parse(r#"{"a": "#).unwrap_err();
        assert!(err.contains("at byte 6"), "{err}");
        assert!(err.contains("«here»`"), "{err}");

        // The offset marker never splits a multi-byte scalar into mojibake:
        // the snippet is rendered lossily per side.
        let err = Json::parse("\"héllo").unwrap_err();
        assert!(err.contains("unterminated string"), "{err}");
        assert!(err.contains("héllo"), "{err}");
    }

    #[test]
    fn structural_errors_name_the_expected_token() {
        let err = Json::parse(r#"{"a":1 "b":2}"#).unwrap_err();
        assert!(err.contains("expected ',' or '}'"), "{err}");
        assert!(err.contains("at byte 7"), "{err}");
        let err = Json::parse(r#"[1 2]"#).unwrap_err();
        assert!(err.contains("expected ',' or ']'"), "{err}");
        let err = Json::parse(r#"{"a" 1}"#).unwrap_err();
        assert!(err.contains("expected ':'"), "{err}");
        assert!(err.contains("«here»1}"), "{err}");
        let err = Json::parse(r#"{"a":1} {"#).unwrap_err();
        assert!(err.contains("trailing garbage at byte 8"), "{err}");
    }

    #[test]
    fn parse_rejects_duplicate_keys() {
        let err = Json::parse(r#"{"a":1,"a":2}"#).unwrap_err();
        assert!(err.contains("duplicate key \"a\""), "{err}");
        // Also in nested objects.
        assert!(Json::parse(r#"{"o":{"x":1,"x":1}}"#).unwrap_err().contains("duplicate"));
        // Same key in *different* objects is fine.
        assert!(Json::parse(r#"{"o":{"x":1},"p":{"x":2}}"#).is_ok());
    }
}
