//! # obs — observability primitives for the bulk-oblivious workspace
//!
//! Every execution layer of the workspace (the UMM/DMM simulators, the
//! bulk interpreter, the software-SIMT engine, the CLI and the bench
//! binaries) reports what it did through this crate:
//!
//! * [`Counters`] — named monotone event counts;
//! * [`Gauge`] — an atomic instantaneous level (queue depth, in-flight
//!   batches) shared across threads;
//! * [`Histogram`] — sparse integer-valued distributions (e.g. distinct
//!   address groups per dispatched warp);
//! * [`Ring`] — a bounded, lock-light flight-recorder ring of structured
//!   stage events, dumped on panic/drain/demand;
//! * [`prom`] — Prometheus text exposition rendering over the above;
//! * [`Spans`] — named wall-clock span accumulation;
//! * [`RunReport`] — an ordered, structured report serialized as JSON;
//! * [`Json`] — a dependency-free JSON value with writer *and* parser, so
//!   tests can round-trip emitted reports without external crates;
//! * [`Rng`] — a tiny deterministic SplitMix64 generator used by the CLI,
//!   benches and randomized tests (the workspace builds offline, with no
//!   registry access, so `rand` is not available);
//! * [`Tracer`] — a bounded event-timeline recorder with Chrome Trace
//!   Event Format (Perfetto) export and an ASCII occupancy renderer;
//! * [`diff`] — structural [`RunReport`] diffing with per-metric tolerance
//!   rules, the engine behind `bulkrun compare` and the CI perf gate.
//!
//! ## Zero cost when disabled
//!
//! The `profile` cargo feature (default on) gates all recording.  Hot
//! loops consult [`PROFILING_COMPILED`] — a `const` — before installing
//! any sink, so with `--no-default-features` the instrumentation folds to
//! a never-taken branch on an `Option` that is always `None`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod json;
pub mod metrics;
pub mod prom;
pub mod report;
pub mod ring;
pub mod rng;
pub mod trace;

pub use json::Json;
pub use metrics::{Counters, Gauge, Histogram, Spans};
pub use prom::PromText;
pub use report::RunReport;
pub use ring::{Ring, RingEvent};
pub use rng::Rng;
pub use trace::Tracer;

/// True when the `profile` cargo feature is enabled.
///
/// Instrumented layers only install their recording sinks when this is
/// `true`; building `obs` with `--no-default-features` turns every
/// `enable_profiling` call in the workspace into a no-op at compile time.
pub const PROFILING_COMPILED: bool = cfg!(feature = "profile");
