//! Counters, gauges, histograms, and wall-clock span accumulation.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::time::{Duration, Instant};

/// Named monotone event counters, in first-touch order.
///
/// The key set in any one instrumentation site is small (a handful of
/// event kinds), so a linear scan beats hashing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    items: Vec<(&'static str, u64)>,
}

impl Counters {
    /// An empty counter set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to `key`.
    #[inline]
    pub fn add(&mut self, key: &'static str, n: u64) {
        if let Some(slot) = self.items.iter_mut().find(|(k, _)| *k == key) {
            slot.1 += n;
        } else {
            self.items.push((key, n));
        }
    }

    /// Add one to `key`.
    #[inline]
    pub fn incr(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// The current value of `key` (0 if never touched).
    #[must_use]
    pub fn get(&self, key: &str) -> u64 {
        self.items.iter().find(|(k, _)| *k == key).map_or(0, |(_, v)| *v)
    }

    /// All counters, in first-touch order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.items.iter().copied()
    }

    /// As a JSON object `{key: count, ...}`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        for (k, v) in &self.items {
            obj.set(k, *v);
        }
        obj
    }
}

/// An instantaneous level that can move both ways — queue depth, open
/// groups, in-flight batches.  Unlike [`Counters`] it is atomic and
/// shared: producers and consumers on different threads update it
/// lock-free, and a metrics scrape reads it without stopping the world.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the level outright.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Move the level by `delta` (negative to decrease).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current level.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A sparse histogram over `u64` sample values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: BTreeMap<u64, u64>,
    total: u64,
    sum: u128,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Record `n` identical samples.
    #[inline]
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(value).or_insert(0) += n;
        self.total += n;
        self.sum += u128::from(value) * u128::from(n);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count of samples equal to `value`.
    #[must_use]
    pub fn count(&self, value: u64) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Largest recorded sample.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// Mean sample value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Sum of all recorded sample values.
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest value `v` such that at least `q * total` samples are `<= v`
    /// (`q` clamped to `[0, 1]`; `None` when empty).
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (&v, &c) in &self.counts {
            seen += c;
            if seen >= rank {
                return Some(v);
            }
        }
        self.max()
    }

    /// `(value, count)` pairs in increasing value order.
    #[must_use]
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts.iter().map(|(&v, &c)| (v, c)).collect()
    }

    /// Fold every sample of `other` into `self` — per-thread histograms
    /// (e.g. each load-generator client's latencies) merge into one
    /// distribution with no loss.
    pub fn merge(&mut self, other: &Histogram) {
        for (&v, &c) in &other.counts {
            self.record_n(v, c);
        }
    }

    /// Compact summary for reports where the full bucket list would drown
    /// the reader (wire latencies, batch sizes): total, mean, max and the
    /// standard p50/p90/p99 quantiles.  Quantile fields are `null` when
    /// the histogram is empty.
    #[must_use]
    pub fn summary_json(&self) -> Json {
        let q = |q: f64| self.quantile(q).map_or(Json::Null, Json::from);
        let mut obj = Json::obj();
        obj.set("total", self.total);
        obj.set("mean", self.mean());
        obj.set("p50", q(0.50));
        obj.set("p90", q(0.90));
        obj.set("p99", q(0.99));
        obj.set("max", self.max().map_or(Json::Null, Json::from));
        obj
    }

    /// As a JSON array of `[value, count]` pairs plus summary fields:
    /// `{"total": .., "mean": .., "max": .., "buckets": [[v, c], ..]}`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("total", self.total);
        obj.set("mean", self.mean());
        obj.set("max", self.max().map_or(Json::Null, Json::from));
        obj.set(
            "buckets",
            Json::Arr(
                self.buckets()
                    .into_iter()
                    .map(|(v, c)| Json::Arr(vec![Json::from(v), Json::from(c)]))
                    .collect(),
            ),
        );
        obj
    }
}

/// Named wall-clock span accumulation, in first-touch order.
#[derive(Debug, Clone, Default)]
pub struct Spans {
    items: Vec<(&'static str, Duration)>,
}

impl Spans {
    /// An empty span set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `d` to the span named `key`.
    pub fn record(&mut self, key: &'static str, d: Duration) {
        if let Some(slot) = self.items.iter_mut().find(|(k, _)| *k == key) {
            slot.1 += d;
        } else {
            self.items.push((key, d));
        }
    }

    /// Run `f`, charging its wall-clock time to `key`.
    pub fn time<R>(&mut self, key: &'static str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.record(key, start.elapsed());
        out
    }

    /// Accumulated time for `key`.
    #[must_use]
    pub fn get(&self, key: &str) -> Duration {
        self.items.iter().find(|(k, _)| *k == key).map_or(Duration::ZERO, |(_, d)| *d)
    }

    /// Sum of all spans.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.items.iter().map(|(_, d)| *d).sum()
    }

    /// As a JSON object of seconds: `{key: secs, ...}`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        for (k, d) in &self.items {
            obj.set(k, d.as_secs_f64());
        }
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_in_order() {
        let mut c = Counters::new();
        c.incr("loads");
        c.add("stores", 3);
        c.incr("loads");
        assert_eq!(c.get("loads"), 2);
        assert_eq!(c.get("stores"), 3);
        assert_eq!(c.get("missing"), 0);
        assert_eq!(c.to_json().to_compact(), r#"{"loads":2,"stores":3}"#);
    }

    #[test]
    fn histogram_summary_statistics() {
        let mut h = Histogram::new();
        h.record(1);
        h.record_n(4, 3);
        assert_eq!(h.total(), 4);
        assert_eq!(h.count(4), 3);
        assert_eq!(h.max(), Some(4));
        assert!((h.mean() - 13.0 / 4.0).abs() < 1e-12);
        assert_eq!(h.buckets(), vec![(1, 1), (4, 3)]);
        assert_eq!(h.sum(), 13);
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.25), Some(1));
        assert_eq!(h.quantile(0.5), Some(4));
        assert_eq!(h.quantile(1.0), Some(4));
        assert_eq!(Histogram::new().quantile(0.5), None);
        let j = h.to_json();
        assert_eq!(j.path("total").unwrap().as_i64(), Some(4));
        assert_eq!(j.path("buckets").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn histogram_merge_is_lossless() {
        let mut a = Histogram::new();
        a.record_n(1, 2);
        a.record(10);
        let mut b = Histogram::new();
        b.record_n(10, 3);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.total(), 7);
        assert_eq!(a.count(10), 4);
        assert_eq!(a.buckets(), vec![(1, 2), (7, 1), (10, 4)]);
        assert_eq!(a.sum(), 2 + 7 + 40);
        // Merging an empty histogram is a no-op both ways.
        a.merge(&Histogram::new());
        assert_eq!(a.total(), 7);
        let mut empty = Histogram::new();
        empty.merge(&a);
        assert_eq!(empty, a);
    }

    #[test]
    fn summary_json_reports_quantiles() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let j = h.summary_json();
        assert_eq!(j.path("total").unwrap().as_i64(), Some(100));
        assert_eq!(j.path("p50").unwrap().as_i64(), Some(50));
        assert_eq!(j.path("p90").unwrap().as_i64(), Some(90));
        assert_eq!(j.path("p99").unwrap().as_i64(), Some(99));
        assert_eq!(j.path("max").unwrap().as_i64(), Some(100));
        let j = Histogram::new().summary_json();
        assert_eq!(j.get("p50"), Some(&Json::Null));
        assert_eq!(j.get("max"), Some(&Json::Null));
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let h = Histogram::new();
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.to_json().get("max"), Some(&Json::Null));
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0);
        g.add(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        g.set(-7);
        assert_eq!(g.get(), -7);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        g.add(1);
                        g.add(-1);
                    }
                });
            }
        });
        assert_eq!(g.get(), -7, "balanced concurrent updates must cancel");
    }

    #[test]
    fn spans_time_and_merge() {
        let mut s = Spans::new();
        let v = s.time("work", || 7);
        assert_eq!(v, 7);
        s.record("work", Duration::from_millis(1));
        assert!(s.get("work") >= Duration::from_millis(1));
        assert_eq!(s.total(), s.get("work"));
    }
}
