//! Prometheus text exposition format rendering.
//!
//! Turns the live [`crate::metrics`] primitives — counters, gauges and
//! sparse [`Histogram`]s — into the `text/plain; version=0.0.4` format a
//! Prometheus scrape (or a human with `curl`) expects: one `# HELP` and
//! `# TYPE` header per family, then one sample line per series.  Sparse
//! exact-value histograms are folded into cumulative `_bucket{le="…"}`
//! series over a fixed exponential bound ladder, plus the exact `_sum`
//! and `_count`.

use crate::metrics::Histogram;
use std::fmt::Write as _;

/// The `le` bound ladder for histogram exposition: powers of four from 1
/// to ~16.7M (covers sub-microsecond through tens of seconds when samples
/// are microseconds, and batch sizes 1..16M when they are counts), then
/// `+Inf`.
pub const BUCKET_BOUNDS: [u64; 13] =
    [1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262_144, 1_048_576, 4_194_304, 16_777_216];

/// Escape a label value per the exposition format: backslash, double
/// quote and newline.
#[must_use]
pub fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// An in-progress exposition document.  Families are written in call
/// order; [`PromText::finish`] yields the final text.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    /// An empty document.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: &str) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{k}=\"{}\"", escape_label(v));
            }
            self.out.push('}');
        }
        let _ = writeln!(self.out, " {value}");
    }

    /// One unlabelled counter family.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        self.sample(name, &[], &value.to_string());
    }

    /// One unlabelled gauge family.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        self.sample(name, &[], &format_f64(value));
    }

    /// A counter family with one label dimension, one sample per series.
    pub fn counter_vec(&mut self, name: &str, help: &str, label: &str, series: &[(String, u64)]) {
        self.header(name, help, "counter");
        for (lv, v) in series {
            self.sample(name, &[(label, lv)], &v.to_string());
        }
    }

    /// A gauge family with one label dimension, one sample per series.
    pub fn gauge_vec(&mut self, name: &str, help: &str, label: &str, series: &[(String, f64)]) {
        self.header(name, help, "gauge");
        for (lv, v) in series {
            self.sample(name, &[(label, lv)], &format_f64(*v));
        }
    }

    /// An unlabelled histogram family: cumulative `_bucket{le}` series
    /// over [`BUCKET_BOUNDS`], then exact `_sum` and `_count`.
    pub fn histogram(&mut self, name: &str, help: &str, h: &Histogram) {
        self.header(name, help, "histogram");
        self.histogram_series(name, &[], h);
    }

    /// A histogram family with one label dimension.
    pub fn histogram_vec(
        &mut self,
        name: &str,
        help: &str,
        label: &str,
        series: &[(String, &Histogram)],
    ) {
        self.header(name, help, "histogram");
        for (lv, h) in series {
            self.histogram_series(name, &[(label, lv)], h);
        }
    }

    fn histogram_series(&mut self, name: &str, labels: &[(&str, &str)], h: &Histogram) {
        let buckets = h.buckets();
        let bucket_name = format!("{name}_bucket");
        let mut cumulative = 0u64;
        let mut idx = 0usize;
        for bound in BUCKET_BOUNDS {
            while idx < buckets.len() && buckets[idx].0 <= bound {
                cumulative += buckets[idx].1;
                idx += 1;
            }
            let mut ls: Vec<(&str, &str)> = labels.to_vec();
            let le = bound.to_string();
            ls.push(("le", &le));
            self.sample(&bucket_name, &ls, &cumulative.to_string());
        }
        let mut ls: Vec<(&str, &str)> = labels.to_vec();
        ls.push(("le", "+Inf"));
        self.sample(&bucket_name, &ls, &h.total().to_string());
        self.sample(&format!("{name}_sum"), labels, &h.sum().to_string());
        self.sample(&format!("{name}_count"), labels, &h.total().to_string());
    }

    /// The finished exposition text.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }
}

fn format_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render_with_headers() {
        let mut p = PromText::new();
        p.counter("jobs_total", "Jobs ever seen.", 42);
        p.gauge("queue_depth", "Instances queued.", 7.0);
        let text = p.finish();
        assert!(text.contains("# HELP jobs_total Jobs ever seen.\n"), "{text}");
        assert!(text.contains("# TYPE jobs_total counter\n"), "{text}");
        assert!(text.contains("\njobs_total 42\n"), "{text}");
        assert!(text.contains("# TYPE queue_depth gauge\n"), "{text}");
        assert!(text.contains("\nqueue_depth 7\n"), "{text}");
    }

    #[test]
    fn labeled_series_share_one_header() {
        let mut p = PromText::new();
        p.counter_vec(
            "served_total",
            "Jobs served per key.",
            "key",
            &[("fft/8/col".into(), 3), ("fir/16/row".into(), 9)],
        );
        let text = p.finish();
        assert_eq!(text.matches("# TYPE served_total counter").count(), 1);
        assert!(text.contains("served_total{key=\"fft/8/col\"} 3\n"), "{text}");
        assert!(text.contains("served_total{key=\"fir/16/row\"} 9\n"), "{text}");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_count_matches_mass() {
        let mut h = Histogram::new();
        h.record_n(3, 2); // le 4
        h.record(100); // le 256
        h.record(1_000_000); // le 1048576
        let mut p = PromText::new();
        p.histogram("lat_us", "Latency.", &h);
        let text = p.finish();
        assert!(text.contains("lat_us_bucket{le=\"1\"} 0\n"), "{text}");
        assert!(text.contains("lat_us_bucket{le=\"4\"} 2\n"), "{text}");
        assert!(text.contains("lat_us_bucket{le=\"256\"} 3\n"), "{text}");
        assert!(text.contains("lat_us_bucket{le=\"1048576\"} 4\n"), "{text}");
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 4\n"), "{text}");
        assert!(text.contains("lat_us_sum 1000106\n"), "{text}");
        assert!(text.contains("lat_us_count 4\n"), "{text}");
        // Cumulative counts never decrease along the ladder.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("lat_us_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "bucket counts must be cumulative: {text}");
            last = v;
        }
    }

    #[test]
    fn samples_beyond_the_ladder_still_land_in_inf() {
        let mut h = Histogram::new();
        h.record(u64::MAX / 2);
        let mut p = PromText::new();
        p.histogram_vec("big", "Huge samples.", "stage", &[("total".into(), &h)]);
        let text = p.finish();
        assert!(text.contains("big_bucket{stage=\"total\",le=\"16777216\"} 0\n"), "{text}");
        assert!(text.contains("big_bucket{stage=\"total\",le=\"+Inf\"} 1\n"), "{text}");
        assert!(text.contains("big_count{stage=\"total\"} 1\n"), "{text}");
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
