//! Structured run reports: the machine-readable output of a profiled run.

use crate::json::Json;
use std::io::Write as _;
use std::path::Path;

/// Version stamped into every report, bumped on breaking schema changes.
pub const SCHEMA_VERSION: u32 = 1;

/// An ordered, structured run report.
///
/// A report is a JSON object whose first two fields are always `"tool"`
/// (which binary produced it) and `"schema_version"`.  Sections are added
/// in emission order with [`RunReport::set`]; nested sections are plain
/// [`Json`] objects built by the instrumented layers' `to_json` methods.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    root: Json,
}

impl RunReport {
    /// A fresh report for `tool` (e.g. `"bulkrun"`, `"fig11"`).
    #[must_use]
    pub fn new(tool: &str) -> Self {
        let mut root = Json::obj();
        root.set("tool", tool);
        root.set("schema_version", SCHEMA_VERSION);
        Self { root }
    }

    /// Add (or replace) a top-level section.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        self.root.set(key, value);
        self
    }

    /// The report as a JSON value.
    #[must_use]
    pub fn json(&self) -> &Json {
        &self.root
    }

    /// Pretty-printed JSON text (the on-disk format).
    #[must_use]
    pub fn to_pretty(&self) -> String {
        self.root.to_pretty()
    }

    /// Write the report to `path`, creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_pretty().as_bytes())
    }

    /// Parse a report back from JSON text and check the envelope
    /// (`tool` and a compatible `schema_version` must be present).
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON or a missing/alien envelope.
    pub fn parse(text: &str) -> Result<Self, String> {
        let root = Json::parse(text)?;
        root.get("tool").and_then(Json::as_str).ok_or("report missing \"tool\"")?;
        let v = root
            .get("schema_version")
            .and_then(Json::as_i64)
            .ok_or("report missing \"schema_version\"")?;
        if v != i64::from(SCHEMA_VERSION) {
            return Err(format!("unsupported schema_version {v}"));
        }
        Ok(Self { root })
    }

    /// The producing tool's name.
    #[must_use]
    pub fn tool(&self) -> &str {
        self.root.get("tool").and_then(Json::as_str).unwrap_or("")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trips_through_disk_format() {
        let mut r = RunReport::new("bulkrun");
        let mut model = Json::obj();
        model.set("rounds", 16u64);
        r.set("model", model);
        let text = r.to_pretty();
        let back = RunReport::parse(&text).unwrap();
        assert_eq!(back.tool(), "bulkrun");
        assert_eq!(back.json().path("model.rounds").unwrap().as_i64(), Some(16));
        assert_eq!(back, r);
    }

    #[test]
    fn parse_rejects_missing_envelope() {
        assert!(RunReport::parse("{}").is_err());
        assert!(RunReport::parse(r#"{"tool":"x","schema_version":999}"#).is_err());
        assert!(RunReport::parse("not json").is_err());
    }

    #[test]
    fn write_to_creates_directories() {
        let dir = std::env::temp_dir().join(format!("obs-report-{}", std::process::id()));
        let path = dir.join("nested/run.json");
        let r = RunReport::new("test");
        r.write_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(RunReport::parse(&text).unwrap().tool(), "test");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
