//! Flight recorder: a bounded, lock-light ring buffer of structured
//! stage events.
//!
//! A server writes every stage event (job accepted, journaled, batch
//! assembled, executed, …) into a [`Ring`] at all times; when something
//! goes wrong — a panic, an operator `dump` request, a post-incident
//! autopsy of a crash-flushed snapshot — the last `capacity` events
//! before the incident are still there.  Three properties matter:
//!
//! * **Bounded memory**: every event is a fixed-size, allocation-free
//!   [`RingEvent`]; the ring holds at most [`Ring::capacity`] of them and
//!   overwrites the oldest beyond that.  Recording never allocates.
//! * **Lock-light**: a global atomic sequence counter orders events, and
//!   the storage is striped over independently-locked shards chosen by
//!   sequence number, so concurrent writers contend only 1/N of the time
//!   and never against a reader draining a different shard.
//! * **Reconstructable order**: [`Ring::snapshot`] merges the shards by
//!   sequence number, yielding the surviving events in exactly the order
//!   they were stamped — on a virtual clock in the simulator, the same
//!   seed always yields the bit-identical stream.

use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One structured stage event.  Deliberately `Copy` and allocation-free:
/// the name is a `&'static str` stage label and everything else is a
/// scalar, so a full ring is a fixed block of memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingEvent {
    /// Global stamp order (monotone across all writers).
    pub seq: u64,
    /// Clock reading when the event was recorded, in microseconds.
    pub ts_us: u64,
    /// Writer track (worker index, connection id, …).
    pub track: u32,
    /// Stage label (`"accepted"`, `"journaled"`, `"executed"`, …).
    pub name: &'static str,
    /// Job / trace id the event belongs to (0 when not job-scoped).
    pub job: u64,
    /// Stage-specific payload (instances, duration, depth, …).
    pub value: i64,
}

impl RingEvent {
    /// One text line for the human-readable tail dump.
    #[must_use]
    pub fn to_line(&self) -> String {
        format!(
            "[{:>12}us] #{:<8} t{:<3} {:<22} job={} value={}",
            self.ts_us, self.seq, self.track, self.name, self.job, self.value
        )
    }
}

/// Number of independently-locked stripes.  Sequence numbers round-robin
/// across them, so the per-shard lock is touched once every `SHARDS`
/// records by any one writer.
const SHARDS: usize = 8;

#[derive(Debug)]
struct Shard {
    /// Ring storage: at most `cap` events, oldest overwritten first.
    buf: Vec<RingEvent>,
    /// Next write slot when the shard is full (classic ring cursor).
    next: usize,
    cap: usize,
}

impl Shard {
    fn push(&mut self, ev: RingEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
            self.next = (self.next + 1) % self.cap;
        }
    }
}

/// The bounded flight-recorder ring.  See the module docs.
#[derive(Debug)]
pub struct Ring {
    seq: AtomicU64,
    overwritten: AtomicU64,
    shards: Vec<Mutex<Shard>>,
    capacity: usize,
}

impl Ring {
    /// A ring holding at least `capacity` events (rounded up to a
    /// multiple of the shard count).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let per = capacity.div_ceil(SHARDS).max(1);
        let shards = (0..SHARDS)
            .map(|_| Mutex::new(Shard { buf: Vec::with_capacity(per), next: 0, cap: per }))
            .collect();
        Self {
            seq: AtomicU64::new(0),
            overwritten: AtomicU64::new(0),
            shards,
            capacity: per * SHARDS,
        }
    }

    /// Maximum events retained (oldest beyond this are overwritten).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever recorded (including since-overwritten ones).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Events lost to overwriting so far.
    #[must_use]
    pub fn overwritten(&self) -> u64 {
        self.overwritten.load(Ordering::Relaxed)
    }

    /// Record one stage event at clock reading `ts_us`.
    pub fn record(&self, ts_us: u64, track: u32, name: &'static str, job: u64, value: i64) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let ev = RingEvent { seq, ts_us, track, name, job, value };
        let shard = &self.shards[(seq % SHARDS as u64) as usize];
        let mut g = shard.lock().expect("ring shard poisoned");
        if g.buf.len() == g.cap {
            self.overwritten.fetch_add(1, Ordering::Relaxed);
        }
        g.push(ev);
    }

    /// The surviving events in stamp order (oldest first).  Copies out of
    /// the shards under their locks, then merges by sequence number.
    #[must_use]
    pub fn snapshot(&self) -> Vec<RingEvent> {
        let mut all: Vec<RingEvent> = Vec::with_capacity(self.capacity);
        for shard in &self.shards {
            let g = shard.lock().expect("ring shard poisoned");
            all.extend(g.buf.iter().copied());
        }
        all.sort_unstable_by_key(|e| e.seq);
        all
    }

    /// The last `n` surviving events as human-readable text lines.
    #[must_use]
    pub fn text_tail(&self, n: usize) -> String {
        let events = self.snapshot();
        let skip = events.len().saturating_sub(n);
        let mut out = String::new();
        for ev in &events[skip..] {
            out.push_str(&ev.to_line());
            out.push('\n');
        }
        out
    }
}

/// Render a snapshot as a Chrome Trace Event Format document (instant
/// events, one Perfetto track per ring track) — load the file in
/// `chrome://tracing` or Perfetto to scrub through the recorded window.
#[must_use]
pub fn chrome_trace(events: &[RingEvent]) -> Json {
    let mut arr = Vec::with_capacity(events.len());
    for ev in events {
        let mut e = Json::obj();
        e.set("name", ev.name);
        e.set("ph", "i");
        e.set("ts", ev.ts_us);
        e.set("pid", 1u64);
        e.set("tid", u64::from(ev.track));
        e.set("s", "t");
        let mut args = Json::obj();
        args.set("seq", ev.seq);
        args.set("job", ev.job);
        args.set("value", ev.value);
        e.set("args", args);
        arr.push(e);
    }
    let mut doc = Json::obj();
    doc.set("traceEvents", Json::Arr(arr));
    doc.set("displayTimeUnit", "ms");
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_stamp_order_and_wraps() {
        let r = Ring::with_capacity(16);
        let cap = r.capacity();
        for i in 0..(cap as u64 * 3) {
            r.record(i * 10, 0, "ev", i, i as i64);
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), cap, "ring must retain exactly its capacity");
        // The survivors are the newest `cap` events, in stamp order.
        let first = cap as u64 * 2;
        for (i, ev) in snap.iter().enumerate() {
            assert_eq!(ev.seq, first + i as u64);
            assert_eq!(ev.job, first + i as u64);
        }
        assert_eq!(r.recorded(), cap as u64 * 3);
        assert_eq!(r.overwritten(), cap as u64 * 2);
    }

    #[test]
    fn bounded_memory_under_any_volume() {
        let r = Ring::with_capacity(64);
        let cap = r.capacity();
        for i in 0..100_000u64 {
            r.record(i, (i % 3) as u32, "spam", i, 0);
        }
        assert_eq!(r.snapshot().len(), cap);
        assert!(r.capacity() == cap, "capacity never grows");
    }

    #[test]
    fn concurrent_writers_never_lose_the_newest_events() {
        let r = Ring::with_capacity(4096);
        const WRITERS: u64 = 8;
        const EACH: u64 = 500;
        std::thread::scope(|s| {
            for w in 0..WRITERS {
                let r = &r;
                s.spawn(move || {
                    for i in 0..EACH {
                        r.record(i, w as u32, "w", w * EACH + i, i as i64);
                    }
                });
            }
        });
        assert_eq!(r.recorded(), WRITERS * EACH);
        assert_eq!(r.overwritten(), 0, "under capacity: nothing overwritten");
        let snap = r.snapshot();
        assert_eq!(snap.len(), (WRITERS * EACH) as usize);
        // Sequence numbers are a permutation of 0..N with no duplicates.
        for (i, ev) in snap.iter().enumerate() {
            assert_eq!(ev.seq, i as u64);
        }
    }

    #[test]
    fn text_tail_returns_the_last_n_lines() {
        let r = Ring::with_capacity(32);
        for i in 0..10u64 {
            r.record(i, 0, "stage", i, 7);
        }
        let tail = r.text_tail(3);
        let lines: Vec<&str> = tail.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("job=7"), "{tail}");
        assert!(lines[2].contains("job=9"), "{tail}");
    }

    #[test]
    fn chrome_trace_export_is_loadable_json() {
        let r = Ring::with_capacity(8);
        r.record(100, 2, "accepted", 1, 4);
        r.record(250, 3, "executed", 1, 4);
        let doc = chrome_trace(&r.snapshot());
        let text = doc.to_compact();
        let parsed = Json::parse(&text).expect("chrome trace must be valid JSON");
        let events = parsed.path("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].path("name").unwrap().as_str(), Some("accepted"));
        assert_eq!(events[1].path("args.job").unwrap().as_i64(), Some(1));
    }
}
