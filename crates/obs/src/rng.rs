//! A small deterministic PRNG (SplitMix64).
//!
//! The workspace builds without registry access, so `rand` is not
//! available; benches, the CLI, and the randomized tests all draw from
//! this generator instead.  SplitMix64 passes BigCrush, is seedable from
//! a single `u64`, and two lines of code — plenty for test-input
//! generation and benchmark data (nothing here is cryptographic).

/// A SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator seeded with `seed`.  Equal seeds yield equal streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next raw 32-bit value.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, n)`.  Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Multiply-shift rejection-free mapping (Lemire); the tiny modulo
        // bias at 2^64 scale is irrelevant for test generation.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`.  Panics if the range is empty.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform `u64` in `[lo, hi)`.  Panics if the range is empty.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform in `[0, 1)` with 53 random bits.
    #[inline]
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64_unit() * (hi - lo)
    }

    /// Uniform `f32` in `[lo, hi)`.
    #[inline]
    pub fn f32_range(&mut self, lo: f32, hi: f32) -> f32 {
        self.f64_range(f64::from(lo), f64::from(hi)) as f32
    }

    /// `true` with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64_unit() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let (mut a, mut b) = (Rng::new(7), Rng::new(7));
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(8);
        assert_ne!(Rng::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn splitmix_reference_vector() {
        // First outputs of SplitMix64 seeded with 1234567, from the
        // reference implementation (Steele, Lea, Flood / Vigna).
        let mut r = Rng::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::new(42);
        for _ in 0..10_000 {
            let v = r.range_usize(3, 17);
            assert!((3..17).contains(&v));
            let f = r.f64_range(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
            let g = r.f32_range(0.0, 4.0);
            assert!((0.0..4.0).contains(&g));
        }
    }

    #[test]
    fn below_covers_small_ranges() {
        let mut r = Rng::new(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_rejected() {
        Rng::new(0).below(0);
    }
}
