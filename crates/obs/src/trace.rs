//! Event-timeline tracing with Chrome Trace Event Format export.
//!
//! Where [`crate::metrics`] answers *how much* (aggregate counters and
//! histograms), a [`Tracer`] answers *when*: it records discrete events on
//! named tracks — one track per warp in the model simulators, per port in
//! the bulk engine, per worker in the software-SIMT scheduler — so a run's
//! pipeline occupancy can be rendered and inspected.  [`chrome_trace`]
//! exports one or more tracers as Chrome Trace Event Format JSON, loadable
//! in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`, and
//! [`ascii_timeline`] renders a plain-terminal occupancy view for
//! dependency-free inspection.
//!
//! Recording is bounded: once a tracer holds [`Tracer::capacity`] events,
//! further ones are counted in [`Tracer::dropped`] but not stored, so
//! tracing an arbitrarily long run cannot exhaust memory.  Instrumented
//! layers install a tracer only behind [`crate::PROFILING_COMPILED`], the
//! same zero-cost-when-disabled contract as `SimProfile`.

use crate::json::Json;

/// Default event capacity of [`Tracer::new`].
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// The kind of a recorded [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A span with a start time and a duration (Chrome phase `X`).
    Complete,
    /// A point-in-time marker (Chrome phase `i`).
    Instant,
    /// A sampled counter value (Chrome phase `C`).
    Counter,
}

/// One recorded event on a tracer's timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event kind.
    pub phase: Phase,
    /// Label rendered on the event.
    pub name: &'static str,
    /// Category used for filtering and styling (`"warp"`, `"stall"`, ...).
    pub cat: &'static str,
    /// Track (Chrome thread id) the event belongs to.
    pub tid: u64,
    /// Start time, in tracer ticks.
    pub ts: u64,
    /// Duration in ticks (`Complete` events only, 0 otherwise).
    pub dur: u64,
    /// Structured payload; `Json::Null` when absent.
    pub args: Json,
}

impl TraceEvent {
    /// End time (`ts + dur`) of the event.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.ts + self.dur
    }
}

#[derive(Debug)]
struct OpenSpan {
    tid: u64,
    name: &'static str,
    cat: &'static str,
    ts: u64,
    args: Json,
}

/// A bounded in-memory event-timeline recorder.
///
/// Times are integer *ticks*; [`Tracer::ticks_per_us`] declares how many
/// ticks make a Chrome-trace microsecond (1 for model time units rendered
/// one unit per µs, 1000 for wall-clock nanoseconds).
#[derive(Debug)]
pub struct Tracer {
    capacity: usize,
    ticks_per_us: u64,
    events: Vec<TraceEvent>,
    dropped: u64,
    open: Vec<OpenSpan>,
    track_names: Vec<(u64, String)>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A tracer with the [`DEFAULT_CAPACITY`] and 1 tick per microsecond.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A tracer bounded to at most `capacity` stored events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity,
            ticks_per_us: 1,
            events: Vec::new(),
            dropped: 0,
            open: Vec::new(),
            track_names: Vec::new(),
        }
    }

    /// Declare the tick scale: `ticks` ticks make one exported microsecond.
    ///
    /// # Panics
    ///
    /// Panics when `ticks` is zero.
    #[must_use]
    pub fn with_ticks_per_us(mut self, ticks: u64) -> Self {
        assert!(ticks > 0, "ticks_per_us must be positive");
        self.ticks_per_us = ticks;
        self
    }

    /// Ticks per exported microsecond.
    #[must_use]
    pub fn ticks_per_us(&self) -> u64 {
        self.ticks_per_us
    }

    /// Maximum number of stored events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Give track `tid` a display name.
    pub fn name_track(&mut self, tid: u64, name: impl Into<String>) {
        let name = name.into();
        if let Some(slot) = self.track_names.iter_mut().find(|(t, _)| *t == tid) {
            slot.1 = name;
        } else {
            self.track_names.push((tid, name));
        }
    }

    /// The display name of track `tid`, if one was set.
    #[must_use]
    pub fn track_name(&self, tid: u64) -> Option<&str> {
        self.track_names.iter().find(|(t, _)| *t == tid).map(|(_, n)| n.as_str())
    }

    /// Named tracks in declaration order.
    pub fn named_tracks(&self) -> impl Iterator<Item = (u64, &str)> + '_ {
        self.track_names.iter().map(|(t, n)| (*t, n.as_str()))
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// Record a complete span on track `tid` covering `[ts, ts + dur)`.
    pub fn span(
        &mut self,
        tid: u64,
        name: &'static str,
        cat: &'static str,
        ts: u64,
        dur: u64,
        args: Json,
    ) {
        self.push(TraceEvent { phase: Phase::Complete, name, cat, tid, ts, dur, args });
    }

    /// Open a span on track `tid`; it is stored once [`Tracer::end`] closes it.
    pub fn begin(&mut self, tid: u64, name: &'static str, cat: &'static str, ts: u64, args: Json) {
        self.open.push(OpenSpan { tid, name, cat, ts, args });
    }

    /// Close the most recently opened span on track `tid`, recording it as
    /// a complete span ending at `ts`.  Returns `false` when no span is
    /// open on that track (the call is then a no-op).
    pub fn end(&mut self, tid: u64, ts: u64) -> bool {
        let Some(pos) = self.open.iter().rposition(|o| o.tid == tid) else {
            return false;
        };
        let o = self.open.remove(pos);
        let dur = ts.saturating_sub(o.ts);
        self.span(o.tid, o.name, o.cat, o.ts, dur, o.args);
        true
    }

    /// Record a point-in-time marker on track `tid`.
    pub fn instant(&mut self, tid: u64, name: &'static str, cat: &'static str, ts: u64) {
        self.push(TraceEvent {
            phase: Phase::Instant,
            name,
            cat,
            tid,
            ts,
            dur: 0,
            args: Json::Null,
        });
    }

    /// Sample a counter series `name` at time `ts` with `value`.
    pub fn counter(&mut self, tid: u64, name: &'static str, ts: u64, value: u64) {
        let mut args = Json::obj();
        args.set("value", value);
        self.push(TraceEvent {
            phase: Phase::Counter,
            name,
            cat: "counter",
            tid,
            ts,
            dur: 0,
            args,
        });
    }

    /// Number of spans opened by [`Tracer::begin`] and not yet closed.
    #[must_use]
    pub fn open_spans(&self) -> usize {
        self.open.len()
    }

    /// Stored events in recording order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of stored events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events that arrived after the capacity was reached.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Distinct track ids with at least one event or a name, ascending.
    #[must_use]
    pub fn tracks(&self) -> Vec<u64> {
        let mut tids: Vec<u64> = self.events.iter().map(|e| e.tid).collect();
        tids.extend(self.track_names.iter().map(|(t, _)| *t));
        tids.sort_unstable();
        tids.dedup();
        tids
    }

    /// Total duration of complete spans on track `tid`, in ticks.
    #[must_use]
    pub fn spanned_ticks(&self, tid: u64) -> u64 {
        self.events
            .iter()
            .filter(|e| e.tid == tid && e.phase == Phase::Complete)
            .map(|e| e.dur)
            .sum()
    }

    /// Total duration of complete spans whose category is `cat`, in ticks.
    #[must_use]
    pub fn spanned_ticks_by_cat(&self, cat: &str) -> u64 {
        self.events
            .iter()
            .filter(|e| e.cat == cat && e.phase == Phase::Complete)
            .map(|e| e.dur)
            .sum()
    }

    /// Latest event end time, in ticks (0 when empty).
    #[must_use]
    pub fn end_ts(&self) -> u64 {
        self.events.iter().map(TraceEvent::end).max().unwrap_or(0)
    }
}

/// Check a tracer's structural invariants: every opened span was closed,
/// and complete spans on any one track do not overlap.
///
/// # Errors
///
/// Returns a message naming the offending track and time on violation.
pub fn validate(t: &Tracer) -> Result<(), String> {
    if t.open_spans() != 0 {
        return Err(format!("{} span(s) opened with begin() but never end()ed", t.open_spans()));
    }
    for tid in t.tracks() {
        let mut spans: Vec<(u64, u64)> = t
            .events()
            .iter()
            .filter(|e| e.tid == tid && e.phase == Phase::Complete)
            .map(|e| (e.ts, e.end()))
            .collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            if w[1].0 < w[0].1 {
                return Err(format!(
                    "track {tid}: span starting at {} overlaps previous span ending at {}",
                    w[1].0, w[0].1
                ));
            }
        }
    }
    Ok(())
}

fn ticks_to_us(ticks: u64, ticks_per_us: u64) -> Json {
    if ticks_per_us == 1 {
        Json::from(ticks)
    } else {
        Json::from(ticks as f64 / ticks_per_us as f64)
    }
}

/// Export named tracers as one Chrome Trace Event Format JSON document.
///
/// Each `(name, tracer)` pair becomes one Chrome *process* (pid is the
/// position plus one) with `process_name` / `thread_name` metadata events,
/// so Perfetto groups the workspace's layers (engine, model, device) side
/// by side on a shared time axis.  The returned object is
/// `{"traceEvents": [...], "displayTimeUnit": "ms", "dropped_events": N}`.
#[must_use]
pub fn chrome_trace(processes: &[(&str, &Tracer)]) -> Json {
    let mut events = Vec::new();
    let mut dropped = 0u64;
    for (pi, (pname, t)) in processes.iter().enumerate() {
        let pid = pi as u64 + 1;
        dropped += t.dropped();
        let mut meta = Json::obj();
        meta.set("ph", "M");
        meta.set("pid", pid);
        meta.set("name", "process_name");
        let mut margs = Json::obj();
        margs.set("name", *pname);
        meta.set("args", margs);
        events.push(meta);
        for (tid, tname) in t.named_tracks() {
            let mut meta = Json::obj();
            meta.set("ph", "M");
            meta.set("pid", pid);
            meta.set("tid", tid);
            meta.set("name", "thread_name");
            let mut margs = Json::obj();
            margs.set("name", tname);
            meta.set("args", margs);
            events.push(meta);
        }
        for ev in t.events() {
            let mut o = Json::obj();
            o.set("name", ev.name);
            o.set("cat", ev.cat);
            o.set(
                "ph",
                match ev.phase {
                    Phase::Complete => "X",
                    Phase::Instant => "i",
                    Phase::Counter => "C",
                },
            );
            o.set("pid", pid);
            o.set("tid", ev.tid);
            o.set("ts", ticks_to_us(ev.ts, t.ticks_per_us()));
            match ev.phase {
                Phase::Complete => {
                    o.set("dur", ticks_to_us(ev.dur, t.ticks_per_us()));
                }
                Phase::Instant => {
                    o.set("s", "t");
                }
                Phase::Counter => {}
            }
            if ev.args != Json::Null {
                o.set("args", ev.args.clone());
            }
            events.push(o);
        }
    }
    let mut root = Json::obj();
    root.set("traceEvents", Json::Arr(events));
    root.set("displayTimeUnit", "ms");
    root.set("dropped_events", dropped);
    root
}

/// Render a plain-terminal occupancy view of `tracks`, one row per track.
///
/// The time axis `[0, end_ts]` is squeezed into `cols` cells; a cell is
/// `█` when fully covered by non-stall spans, `▒` when partially covered,
/// `░` when only stall-category spans cover it, and `·` when idle.
#[must_use]
pub fn ascii_timeline(t: &Tracer, tracks: &[u64], cols: usize) -> String {
    let cols = cols.clamp(8, 512);
    let t_end = tracks
        .iter()
        .flat_map(|&tid| t.events().iter().filter(move |e| e.tid == tid))
        .map(TraceEvent::end)
        .max()
        .unwrap_or(0)
        .max(1);
    let scale = t_end.div_ceil(cols as u64);
    let label_of =
        |tid: u64| t.track_name(tid).map_or_else(|| format!("track {tid}"), String::from);
    let label_w = tracks.iter().map(|&tid| label_of(tid).len()).max().unwrap_or(5).min(20);
    let mut out = String::new();
    out.push_str(&format!(
        "{:>label_w$} time 0..{t_end} ({scale} unit(s) per cell; █ busy, ▒ partial, ░ stall, · idle)\n",
        ""
    ));
    for &tid in tracks {
        let mut label = label_of(tid);
        label.truncate(label_w);
        out.push_str(&format!("{label:>label_w$} |"));
        let spans: Vec<&TraceEvent> =
            t.events().iter().filter(|e| e.tid == tid && e.phase == Phase::Complete).collect();
        for c in 0..cols as u64 {
            let (c0, c1) = (c * scale, (c + 1) * scale);
            let mut busy = 0u64;
            let mut stall = 0u64;
            for e in &spans {
                let lo = e.ts.max(c0);
                let hi = e.end().min(c1);
                if hi > lo {
                    if e.cat == "stall" {
                        stall += hi - lo;
                    } else {
                        busy += hi - lo;
                    }
                }
            }
            out.push(if busy + stall >= scale && stall == 0 {
                '█'
            } else if busy > 0 {
                '▒'
            } else if stall > 0 {
                '░'
            } else {
                '·'
            });
        }
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_and_accessors() {
        let mut t = Tracer::new();
        t.name_track(0, "warp 0");
        let mut args = Json::obj();
        args.set("k", 3u64);
        t.span(0, "warp", "warp", 0, 3, args);
        t.span(0, "warp", "warp", 5, 2, Json::Null);
        t.span(1, "drain", "stall", 3, 2, Json::Null);
        assert_eq!(t.len(), 3);
        assert_eq!(t.spanned_ticks(0), 5);
        assert_eq!(t.spanned_ticks_by_cat("stall"), 2);
        assert_eq!(t.end_ts(), 7);
        assert_eq!(t.tracks(), vec![0, 1]);
        assert_eq!(t.track_name(0), Some("warp 0"));
        assert_eq!(t.track_name(9), None);
        validate(&t).unwrap();
    }

    #[test]
    fn begin_end_pairs_become_complete_spans() {
        let mut t = Tracer::new();
        t.begin(4, "block", "block", 10, Json::Null);
        assert_eq!(t.open_spans(), 1);
        assert_eq!(t.len(), 0);
        assert!(t.end(4, 25));
        assert_eq!(t.open_spans(), 0);
        assert_eq!(t.events()[0].phase, Phase::Complete);
        assert_eq!(t.events()[0].ts, 10);
        assert_eq!(t.events()[0].dur, 15);
        // end() with nothing open is a detectable no-op.
        assert!(!t.end(4, 30));
        assert!(!t.end(7, 30));
        validate(&t).unwrap();
    }

    #[test]
    fn validate_flags_unclosed_and_overlapping_spans() {
        let mut t = Tracer::new();
        t.begin(0, "warp", "warp", 0, Json::Null);
        assert!(validate(&t).unwrap_err().contains("never end()ed"));
        assert!(t.end(0, 4));
        t.span(0, "warp", "warp", 2, 5, Json::Null);
        let err = validate(&t).unwrap_err();
        assert!(err.contains("track 0"), "{err}");
        assert!(err.contains("overlaps"), "{err}");
    }

    #[test]
    fn zero_duration_spans_do_not_overlap() {
        let mut t = Tracer::new();
        t.span(0, "a", "warp", 3, 0, Json::Null);
        t.span(0, "b", "warp", 3, 2, Json::Null);
        validate(&t).unwrap();
    }

    #[test]
    fn capacity_bounds_storage_and_counts_drops() {
        let mut t = Tracer::with_capacity(2);
        for i in 0..5 {
            t.span(0, "e", "warp", i, 1, Json::Null);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn chrome_export_shape() {
        let mut t = Tracer::new();
        t.name_track(0, "warp 0");
        let mut args = Json::obj();
        args.set("k", 2u64);
        t.span(0, "warp", "warp", 0, 2, args);
        t.instant(1, "idle_round", "stall", 4);
        t.counter(0, "occupancy", 0, 7);
        let j = chrome_trace(&[("model.umm", &t)]);
        let evs = j.get("traceEvents").unwrap().as_arr().unwrap();
        // process_name meta + thread_name meta + 3 events
        assert_eq!(evs.len(), 5);
        assert_eq!(evs[0].get("ph").unwrap().as_str(), Some("M"));
        assert_eq!(evs[0].path("args.name").unwrap().as_str(), Some("model.umm"));
        assert_eq!(evs[1].path("args.name").unwrap().as_str(), Some("warp 0"));
        let x = &evs[2];
        assert_eq!(x.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(x.get("pid").unwrap().as_i64(), Some(1));
        assert_eq!(x.get("ts").unwrap().as_i64(), Some(0));
        assert_eq!(x.get("dur").unwrap().as_i64(), Some(2));
        assert_eq!(x.path("args.k").unwrap().as_i64(), Some(2));
        assert_eq!(evs[3].get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(evs[3].get("s").unwrap().as_str(), Some("t"));
        assert_eq!(evs[4].get("ph").unwrap().as_str(), Some("C"));
        assert_eq!(evs[4].path("args.value").unwrap().as_i64(), Some(7));
        assert_eq!(j.get("dropped_events").unwrap().as_i64(), Some(0));
        // The export is valid JSON that round-trips through the parser.
        let back = Json::parse(&j.to_compact()).unwrap();
        assert_eq!(back, j);
    }

    #[test]
    fn chrome_export_scales_nanosecond_ticks_to_microseconds() {
        let mut t = Tracer::new().with_ticks_per_us(1000);
        t.span(0, "block", "block", 1500, 500, Json::Null);
        let j = chrome_trace(&[("device", &t)]);
        let x = &j.get("traceEvents").unwrap().as_arr().unwrap()[1];
        assert_eq!(x.get("ts").unwrap().as_f64(), Some(1.5));
        assert_eq!(x.get("dur").unwrap().as_f64(), Some(0.5));
    }

    #[test]
    fn multi_process_export_assigns_distinct_pids() {
        let mut a = Tracer::new();
        a.span(0, "x", "warp", 0, 1, Json::Null);
        let mut b = Tracer::new();
        b.span(0, "y", "warp", 0, 1, Json::Null);
        let j = chrome_trace(&[("umm", &a), ("dmm", &b)]);
        let evs = j.get("traceEvents").unwrap().as_arr().unwrap();
        let pids: Vec<i64> = evs.iter().filter_map(|e| e.get("pid").unwrap().as_i64()).collect();
        assert!(pids.contains(&1) && pids.contains(&2));
    }

    #[test]
    fn ascii_timeline_renders_rows() {
        let mut t = Tracer::new();
        t.name_track(0, "warp 0");
        t.name_track(1, "pipeline");
        t.span(0, "warp", "warp", 0, 8, Json::Null);
        t.span(1, "drain", "stall", 8, 8, Json::Null);
        let s = ascii_timeline(&t, &[0, 1], 16);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("warp 0"));
        assert!(lines[1].contains('█'));
        assert!(lines[2].contains('░'));
        assert!(lines[2].contains('·') || lines[2].contains('░'));
    }
}
