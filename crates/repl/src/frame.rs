//! The replication wire format: a magic preamble, then length-prefixed
//! typed frames.
//!
//! ```text
//! stream   := MAGIC frame*                    // each direction starts with MAGIC
//! MAGIC    := "BULKREPL1"                     // 9 bytes
//! frame    := len:u32 LE, type:u8, payload    // len counts payload bytes only
//! HELLO    (1), follower → primary := {"node_id":ID,"start_seq":N}
//! WELCOME  (2), primary → follower := {"node_id":ID,"addr":SERVING_ADDR,
//!                                      "start_seq":N}
//! RECORDS  (3), primary → follower := acked_seq:u64 LE, wal-encoded records
//! ACK      (4), follower → primary := {"durable_seq":N}
//! ```
//!
//! Control payloads are compact `obs::json` documents — the same codec as
//! the client protocol — while RECORDS carries raw `wal::record` encodings
//! so the follower appends byte-identical records.  The piggybacked
//! `acked_seq` in every RECORDS frame (including empty heartbeats) is the
//! primary's client-acknowledged high-water mark: the mark the standby
//! compares its own durable sequence against to decide whether promotion
//! is safe.

use obs::Json;
use std::io::{Read, Write};

/// The 9-byte stream preamble each side writes before its first frame.
pub const MAGIC: &[u8; 9] = b"BULKREPL1";

/// Frame type: follower's handshake (node id + first wanted sequence).
pub const FRAME_HELLO: u8 = 1;
/// Frame type: primary's handshake reply (node id + serving address).
pub const FRAME_WELCOME: u8 = 2;
/// Frame type: a batch of WAL records (possibly empty — a heartbeat),
/// prefixed with the primary's acked high-water mark.
pub const FRAME_RECORDS: u8 = 3;
/// Frame type: follower's durable high-water mark.
pub const FRAME_ACK: u8 = 4;

/// Longest accepted frame payload.  Record batches dominate; one record
/// is bounded by [`wal::MAX_PAYLOAD_BYTES`], and the shipper bounds its
/// batches well below this.
pub const MAX_FRAME_BYTES: usize = 96 * 1024 * 1024;

/// Write the stream preamble.
///
/// # Errors
///
/// Transport failures, as strings naming the peer operation.
pub fn write_magic(w: &mut impl Write) -> Result<(), String> {
    w.write_all(MAGIC).map_err(|e| format!("write repl magic: {e}"))
}

/// Read and verify the peer's stream preamble.
///
/// # Errors
///
/// Transport failures or a peer that is not speaking `BULKREPL1`.
pub fn read_magic(r: &mut impl Read) -> Result<(), String> {
    let mut got = [0u8; MAGIC.len()];
    r.read_exact(&mut got).map_err(|e| format!("read repl magic: {e}"))?;
    if &got != MAGIC {
        return Err(format!("peer is not speaking BULKREPL1 (got {got:02x?})"));
    }
    Ok(())
}

/// Write one frame.
///
/// # Errors
///
/// Transport failures or an over-long payload (an implementation bug).
pub fn write_frame(w: &mut impl Write, frame_type: u8, payload: &[u8]) -> Result<(), String> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(format!("frame payload of {} bytes exceeds the cap", payload.len()));
    }
    let mut buf = Vec::with_capacity(5 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.push(frame_type);
    buf.extend_from_slice(payload);
    w.write_all(&buf).map_err(|e| format!("write repl frame: {e}"))?;
    w.flush().map_err(|e| format!("flush repl frame: {e}"))
}

/// Read one frame, blocking until it arrives in full.
///
/// # Errors
///
/// Transport failures (including EOF mid-frame) or a length prefix past
/// [`MAX_FRAME_BYTES`] (framing lost — the connection must drop).
pub fn read_frame(r: &mut impl Read) -> Result<(u8, Vec<u8>), String> {
    let mut header = [0u8; 5];
    r.read_exact(&mut header).map_err(|e| format!("read repl frame header: {e}"))?;
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(format!("frame length {len} exceeds the cap; framing lost"));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| format!("read repl frame payload: {e}"))?;
    Ok((header[4], payload))
}

/// Encode a HELLO payload.
#[must_use]
pub fn hello(node_id: &str, start_seq: u64) -> Vec<u8> {
    let mut o = Json::obj();
    o.set("node_id", node_id);
    o.set("start_seq", start_seq);
    o.to_compact().into_bytes()
}

/// Encode a WELCOME payload.  `addr` is the primary's client-serving
/// address — the standby's `leader_hint`.
#[must_use]
pub fn welcome(node_id: &str, addr: &str, start_seq: u64) -> Vec<u8> {
    let mut o = Json::obj();
    o.set("node_id", node_id);
    o.set("addr", addr);
    o.set("start_seq", start_seq);
    o.to_compact().into_bytes()
}

/// Encode an ACK payload.
#[must_use]
pub fn ack(durable_seq: u64) -> Vec<u8> {
    let mut o = Json::obj();
    o.set("durable_seq", durable_seq);
    o.to_compact().into_bytes()
}

/// Decode a JSON control payload (HELLO / WELCOME / ACK).
///
/// # Errors
///
/// Non-UTF-8 or non-JSON payloads.
pub fn control_json(payload: &[u8]) -> Result<Json, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("control frame: {e}"))?;
    Json::parse(text).map_err(|e| format!("control frame: {e}"))
}

/// Pull a required non-negative integer field out of a control payload.
///
/// # Errors
///
/// A missing or negative field.
pub fn control_u64(j: &Json, field: &str) -> Result<u64, String> {
    j.get(field)
        .and_then(Json::as_i64)
        .filter(|&v| v >= 0)
        .map(|v| v as u64)
        .ok_or_else(|| format!("control frame is missing integer \"{field}\""))
}

/// Encode a RECORDS payload: the acked high-water mark, then each
/// record's wal encoding back to back.
#[must_use]
pub fn records_payload(acked_seq: u64, records: &[wal::Record]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + records.len() * 32);
    buf.extend_from_slice(&acked_seq.to_le_bytes());
    for rec in records {
        buf.extend_from_slice(&wal::record::encode(rec.seq, rec.rec_type, &rec.payload));
    }
    buf
}

/// Decode a RECORDS payload back into `(acked_seq, records)`.
///
/// # Errors
///
/// A short prefix, or a record that is cut or fails its CRC — on a
/// reliable stream either means the peer is broken, so the connection
/// must drop (there is no torn-tail tolerance inside a frame).
pub fn decode_records(payload: &[u8]) -> Result<(u64, Vec<wal::Record>), String> {
    if payload.len() < 8 {
        return Err(format!("RECORDS frame of {} bytes lacks the acked_seq prefix", payload.len()));
    }
    let acked_seq = u64::from_le_bytes(payload[..8].try_into().expect("8-byte slice"));
    let mut records = Vec::new();
    let mut rest = &payload[8..];
    while !rest.is_empty() {
        match wal::record::decode(rest) {
            wal::record::DecodeOutcome::Complete { record, consumed } => {
                rest = &rest[consumed..];
                records.push(record);
            }
            wal::record::DecodeOutcome::Incomplete => {
                return Err(format!("RECORDS frame ends mid-record ({} bytes left)", rest.len()));
            }
            wal::record::DecodeOutcome::Corrupt(e) => {
                return Err(format!("RECORDS frame carries a corrupt record: {e}"));
            }
        }
    }
    Ok((acked_seq, records))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_byte_stream() {
        let mut wire = Vec::new();
        write_magic(&mut wire).unwrap();
        write_frame(&mut wire, FRAME_HELLO, &hello("standby-1", 42)).unwrap();
        write_frame(&mut wire, FRAME_ACK, &ack(41)).unwrap();
        let mut r = wire.as_slice();
        read_magic(&mut r).unwrap();
        let (t, p) = read_frame(&mut r).unwrap();
        assert_eq!(t, FRAME_HELLO);
        let j = control_json(&p).unwrap();
        assert_eq!(j.path("node_id").unwrap().as_str(), Some("standby-1"));
        assert_eq!(control_u64(&j, "start_seq").unwrap(), 42);
        let (t, p) = read_frame(&mut r).unwrap();
        assert_eq!(t, FRAME_ACK);
        assert_eq!(control_u64(&control_json(&p).unwrap(), "durable_seq").unwrap(), 41);
        assert!(r.is_empty());
    }

    #[test]
    fn bad_magic_and_lost_framing_are_errors() {
        let mut r: &[u8] = b"BULKWAL1!x";
        assert!(read_magic(&mut r).unwrap_err().contains("BULKREPL1"));
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.push(FRAME_RECORDS);
        let mut r = wire.as_slice();
        assert!(read_frame(&mut r).unwrap_err().contains("exceeds the cap"));
        // EOF mid-frame is an error, not a silent truncation.
        let mut short = Vec::new();
        write_frame(&mut short, FRAME_ACK, &ack(7)).unwrap();
        short.truncate(short.len() - 1);
        let mut r = short.as_slice();
        assert!(read_frame(&mut r).unwrap_err().contains("payload"));
    }

    #[test]
    fn record_batches_round_trip_bit_exactly() {
        let records = vec![
            wal::Record { seq: 5, rec_type: 1, payload: b"alpha".to_vec() },
            wal::Record { seq: 6, rec_type: 2, payload: Vec::new() },
            wal::Record { seq: 7, rec_type: 1, payload: vec![0xAB; 100] },
        ];
        let payload = records_payload(99, &records);
        let (acked, back) = decode_records(&payload).unwrap();
        assert_eq!(acked, 99);
        assert_eq!(back, records);
        // A heartbeat is just the prefix.
        let (acked, back) = decode_records(&records_payload(3, &[])).unwrap();
        assert_eq!((acked, back.len()), (3, 0));
        // Corruption inside a frame is fatal for the connection.
        let mut bad = records_payload(1, &records);
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(decode_records(&bad).unwrap_err().contains("corrupt"));
        // A cut record is fatal too.
        let cut = &payload[..payload.len() - 3];
        assert!(decode_records(cut).unwrap_err().contains("mid-record"));
    }
}
