//! WAL-shipping replication: a bulkd primary streams its journal to a
//! warm standby that can be promoted without losing an acknowledged job.
//!
//! The design leans on two properties the rest of the workspace already
//! establishes.  First, the journal is the node's entire durable state:
//! replaying it reconstructs the queue exactly, so replicating the WAL
//! byte-for-byte replicates the node.  Second, the executed algorithms
//! are oblivious — a re-executed job produces bit-identical outputs —
//! so a promoted standby that re-runs recovered jobs converges on
//! exactly what the dead primary would have produced.
//!
//! Three modules:
//!
//! - [`frame`] — the `BULKREPL1` wire format: magic preamble,
//!   length-prefixed typed frames, HELLO/WELCOME handshake, RECORDS
//!   batches piggybacking the primary's acked high-water mark, ACKs
//!   carrying the follower's durable mark.
//! - [`primary`] — the shipping side: a replication listener, a
//!   [`wal::Cursor`]-driven tail loop, and the semi-synchronous ack
//!   gate ([`ReplPrimary`] implements [`bulkd::ReplSink`], so client
//!   replies wait for the follower's fsync, bounded by a degrade
//!   timeout).
//! - [`standby`] — the following side: durable appends through the real
//!   WAL writer, a control plane that answers `status`/`promote`/
//!   `not_primary`, and a listener handoff that lets the promoted
//!   server reuse the standby's address with no rebind race.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod primary;
pub mod standby;

pub use primary::{PrimaryConfig, ReplPrimary};
pub use standby::{run_standby, StandbyConfig, StandbyOutcome};
