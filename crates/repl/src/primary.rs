//! The primary's side of WAL shipping: a replication listener, the
//! segment-tailing ship loop, and the semi-synchronous ack gate.
//!
//! One follower holds the stream at a time (a second dial waits in the
//! accept backlog until the first session ends).  The ship loop tails
//! the live WAL through [`wal::Cursor`] — across segment rotations,
//! tolerating the torn in-progress tail — and pushes RECORDS frames as
//! records become durable; a dedicated reader thread consumes the
//! follower's ACK frames and publishes its durable high-water mark.
//!
//! [`ReplPrimary`] implements [`bulkd::ReplSink`]: the serving loop's
//! workers call [`bulkd::ReplSink::wait_replicated`] after journaling
//! each completion, so no reply reaches a client before the follower
//! holds the record that backs it (or the bounded degrade timeout fires
//! and the `degraded_acks` counter owns the exception).

use crate::frame;
use obs::Json;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Records shipped per RECORDS frame at most.
const MAX_BATCH_RECORDS: usize = 1024;
/// Idle heartbeat cadence: an empty RECORDS frame carrying a fresh
/// acked high-water mark, so the standby's promotion-safety view stays
/// current even when no work flows.
const HEARTBEAT: Duration = Duration::from_millis(50);

/// Tunables of one [`ReplPrimary::start`].
#[derive(Debug, Clone)]
pub struct PrimaryConfig {
    /// Replication listener bind address (`--replicate-to`).
    pub listen_addr: String,
    /// The WAL directory this node's journal writes — the shipped log.
    pub wal_dir: PathBuf,
    /// This node's identity, echoed in the WELCOME handshake.
    pub node_id: String,
    /// The client-serving address advertised to the follower: the
    /// standby's `leader_hint` in `not_primary` refusals.
    pub serving_addr: String,
    /// How long an ack may wait for the follower before degrading to
    /// solo durability (counted in `degraded_acks`).
    pub ack_timeout_ms: u64,
    /// Ship-loop poll cadence while the cursor has nothing new.
    pub poll_interval_ms: u64,
}

impl Default for PrimaryConfig {
    fn default() -> Self {
        PrimaryConfig {
            listen_addr: "127.0.0.1:0".into(),
            wal_dir: PathBuf::new(),
            node_id: String::new(),
            serving_addr: String::new(),
            ack_timeout_ms: 5_000,
            poll_interval_ms: 2,
        }
    }
}

/// Whether acks may be released without waiting for the follower's
/// durable mark.  `false` — the semi-synchronous contract.  The CI-only
/// `bug-ack-beyond-replicated` feature reintroduces the historical
/// async-shipping bug so the failover drill can prove it catches the
/// resulting acked-job loss — never enable it otherwise.
#[must_use]
pub fn ack_beyond_replicated() -> bool {
    cfg!(feature = "bug-ack-beyond-replicated")
}

#[derive(Debug, Default)]
struct State {
    /// Follower's node id while one is connected.
    follower: Option<String>,
    connected: bool,
    ever_connected: bool,
    /// Follower sessions accepted over this primary's lifetime.
    followers_seen: u64,
    /// Follower's acknowledged durable WAL sequence number.
    replicated_seq: u64,
    /// Highest WAL sequence number whose client ack has been released.
    acked_seq: u64,
    shipped_records: u64,
    shipped_frames: u64,
    degraded_acks: u64,
    /// Server-clock stamp of the last zero-lag observation (set by
    /// `stats_json`, which is where lag is measured).
    last_caught_up_us: Option<u64>,
}

/// The waitable shared core: follower progress under a mutex, and the
/// condvar `wait_replicated` blocks on.  Lives in its own `Arc` so the
/// per-connection ACK reader thread can hold it independently of the
/// session that spawned it.
#[derive(Debug, Default)]
struct Shared {
    state: Mutex<State>,
    cv: Condvar,
}

/// The primary's replication endpoint and ack gate.
#[derive(Debug)]
pub struct ReplPrimary {
    cfg: PrimaryConfig,
    shared: Arc<Shared>,
}

impl ReplPrimary {
    /// Bind the replication listener and start the accept/ship thread.
    /// Returns the shared handle (to wire into
    /// [`bulkd::ServerConfig`]'s `repl` slot) and the bound address.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn start(cfg: PrimaryConfig) -> Result<(Arc<ReplPrimary>, SocketAddr), String> {
        let listener = TcpListener::bind(&cfg.listen_addr)
            .map_err(|e| format!("bind repl listener {}: {e}", cfg.listen_addr))?;
        let addr = listener.local_addr().map_err(|e| format!("repl local_addr: {e}"))?;
        let prim = Arc::new(ReplPrimary { cfg, shared: Arc::new(Shared::default()) });
        let accept = Arc::clone(&prim);
        std::thread::Builder::new()
            .name("repl-primary".into())
            .spawn(move || accept.accept_loop(&listener))
            .map_err(|e| format!("spawn repl-primary: {e}"))?;
        Ok((prim, addr))
    }

    fn accept_loop(&self, listener: &TcpListener) {
        for conn in listener.incoming() {
            let Ok(stream) = conn else { continue };
            if let Err(e) = self.serve_follower(stream) {
                eprintln!("repl: follower session ended: {e}");
            }
            let mut st = self.shared.state.lock().expect("repl state poisoned");
            st.connected = false;
            st.follower = None;
            drop(st);
            // Waiting acks must re-check: with no follower they degrade
            // immediately instead of sleeping out their full timeout.
            self.shared.cv.notify_all();
        }
    }

    /// One follower session: handshake, then ship until the transport
    /// breaks (a standby never hangs up first — it follows until it is
    /// promoted or killed).
    fn serve_follower(&self, mut stream: TcpStream) -> Result<(), String> {
        let _ = stream.set_nodelay(true);
        frame::read_magic(&mut stream)?;
        let (t, payload) = frame::read_frame(&mut stream)?;
        if t != frame::FRAME_HELLO {
            return Err(format!("expected HELLO, got frame type {t}"));
        }
        let hello = frame::control_json(&payload)?;
        let follower_id = hello
            .get("node_id")
            .and_then(Json::as_str)
            .ok_or("HELLO is missing \"node_id\"")?
            .to_owned();
        let start_seq = frame::control_u64(&hello, "start_seq")?.max(1);
        {
            let mut st = self.shared.state.lock().expect("repl state poisoned");
            st.follower = Some(follower_id);
            st.connected = true;
            st.ever_connected = true;
            st.followers_seen += 1;
            // Everything below the follower's requested start is already
            // on its disk.
            st.replicated_seq = st.replicated_seq.max(start_seq.saturating_sub(1));
        }
        self.shared.cv.notify_all();
        frame::write_magic(&mut stream)?;
        frame::write_frame(
            &mut stream,
            frame::FRAME_WELCOME,
            &frame::welcome(&self.cfg.node_id, &self.cfg.serving_addr, start_seq),
        )?;

        // ACK reader: a blocking sidecar that publishes the follower's
        // durable mark.  It dies with the stream (dropping `stream` when
        // the ship loop errors closes the socket under it).
        let reader = stream.try_clone().map_err(|e| format!("clone repl stream: {e}"))?;
        let shared = Arc::clone(&self.shared);
        std::thread::Builder::new()
            .name("repl-acks".into())
            .spawn(move || ack_loop(&shared, reader))
            .map_err(|e| format!("spawn repl-acks: {e}"))?;
        self.ship_loop(&mut stream, start_seq)
    }

    fn ship_loop(&self, stream: &mut TcpStream, start_seq: u64) -> Result<(), String> {
        let mut cursor = wal::Cursor::tail_from(&self.cfg.wal_dir, start_seq);
        let mut last_send = Instant::now();
        loop {
            let mut batch_limit = MAX_BATCH_RECORDS;
            if ack_beyond_replicated() {
                // Bug-drill builds also throttle shipping (one tiny frame
                // per second), so the acks released without the
                // replication gate provably outrun the stream at any load
                // level — a kill then *must* lose acked jobs, and the CI
                // harness must notice.
                std::thread::sleep(Duration::from_millis(1_000));
                batch_limit = 16;
            }
            let records = cursor.poll(batch_limit)?;
            if records.is_empty() && last_send.elapsed() < HEARTBEAT {
                std::thread::sleep(Duration::from_millis(self.cfg.poll_interval_ms.max(1)));
                continue;
            }
            let acked = self.shared.state.lock().expect("repl state poisoned").acked_seq;
            frame::write_frame(
                stream,
                frame::FRAME_RECORDS,
                &frame::records_payload(acked, &records),
            )?;
            last_send = Instant::now();
            let mut st = self.shared.state.lock().expect("repl state poisoned");
            st.shipped_records += records.len() as u64;
            st.shipped_frames += 1;
        }
    }
}

/// Consume the follower's ACK stream and publish its durable mark.
/// Exits when the stream breaks (the session owns teardown) or the
/// follower sends something other than ACKs.
fn ack_loop(shared: &Shared, mut reader: TcpStream) {
    loop {
        match frame::read_frame(&mut reader) {
            Ok((frame::FRAME_ACK, payload)) => {
                let Ok(j) = frame::control_json(&payload) else { return };
                let Ok(durable) = frame::control_u64(&j, "durable_seq") else { return };
                let mut st = shared.state.lock().expect("repl state poisoned");
                st.replicated_seq = st.replicated_seq.max(durable);
                drop(st);
                shared.cv.notify_all();
            }
            Ok((t, _)) => {
                eprintln!("repl: unexpected frame type {t} from follower");
                return;
            }
            Err(_) => return,
        }
    }
}

impl bulkd::ReplSink for ReplPrimary {
    fn wait_replicated(&self, seq: u64) {
        let timeout = Duration::from_millis(self.cfg.ack_timeout_ms.max(1));
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock().expect("repl state poisoned");
        if !ack_beyond_replicated() {
            // Wait while a follower is attached — or while none has ever
            // attached (startup: the pair's contract holds from record
            // one).  A follower that connected and died fails fast into
            // the degraded path instead of sleeping out the timeout.
            while st.replicated_seq < seq && (st.connected || !st.ever_connected) {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                st = self.shared.cv.wait_timeout(st, remaining).expect("repl state poisoned").0;
            }
            if st.replicated_seq < seq {
                st.degraded_acks += 1;
            }
        }
        st.acked_seq = st.acked_seq.max(seq);
    }

    fn stats_json(&self, durable_seq: u64, now_us: u64) -> Json {
        let mut st = self.shared.state.lock().expect("repl state poisoned");
        let lag_records = durable_seq.saturating_sub(st.replicated_seq);
        let t0 = *st.last_caught_up_us.get_or_insert(now_us);
        if lag_records == 0 {
            st.last_caught_up_us = Some(now_us);
        }
        let lag_us = if lag_records == 0 { 0 } else { now_us.saturating_sub(t0) };
        let mut o = Json::obj();
        o.set("mode", "primary");
        o.set("follower", st.follower.clone().map_or(Json::Null, Json::Str));
        o.set("follower_connected", u64::from(st.connected));
        o.set("followers_seen", st.followers_seen);
        o.set("replicated_seq", st.replicated_seq);
        o.set("acked_seq", st.acked_seq);
        o.set("durable_seq", durable_seq);
        o.set("lag_records", lag_records);
        o.set("lag_us", lag_us);
        o.set("shipped_records", st.shipped_records);
        o.set("shipped_frames", st.shipped_frames);
        o.set("degraded_acks", st.degraded_acks);
        o
    }
}
