//! The warm standby: follows a primary's WAL over the wire, keeps a
//! byte-identical local journal, answers the client protocol in a
//! refuse-but-point role, and hands its listener to a real server on
//! promotion.
//!
//! The standby is two loops.  The **follower** dials the primary's
//! replication port, handshakes, and appends every shipped record
//! through the real [`wal::Wal`] writer (fsync `always` — its ACK is a
//! durability promise, not a buffering report), reconnecting with the
//! correct resume sequence whenever the transport breaks.  The
//! **control loop** serves the ordinary line protocol on the standby's
//! address: `status`/`stats` report the standby role and replication
//! marks, `submit`/`drain`/`dump` answer a structured `not_primary`
//! refusal carrying the leader's serving address, and `promote` — if
//! the standby's durable mark covers everything the leader ever
//! acknowledged — stops both loops and returns the still-bound listener
//! so the caller can start [`bulkd::serve_with_listener`] on it without
//! any close/rebind race.
//!
//! Exactly-once across the failover comes for free from the journal's
//! replay filter: the promoted node re-opens the replicated WAL exactly
//! as a crashed primary re-opens its own, so completed jobs are never
//! re-queued and incomplete ones always are.

use crate::frame;
use crate::primary::ack_beyond_replicated;
use bulkd::journal::{self, REC_COMPLETE, REC_SUBMIT};
use bulkd::protocol::{self, Request, PROTOCOL_VERSION};
use obs::{Json, PromText};
use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use wal::{FsyncPolicy, Wal, WalConfig};

/// Longest accepted control line (the standby refuses submits, so it
/// never needs the server's full submission budget).
const MAX_LINE_BYTES: usize = 1 << 20;

/// Tunables of one [`run_standby`].
#[derive(Debug, Clone)]
pub struct StandbyConfig {
    /// Control listener bind address — the address a promoted node
    /// serves on.
    pub addr: String,
    /// The primary's replication listener to follow.
    pub follow_addr: String,
    /// Local WAL directory receiving the shipped records.
    pub wal_dir: PathBuf,
    /// This node's identity (HELLO + status).
    pub node_id: String,
    /// Segment rotation threshold for the local WAL.
    pub segment_bytes: u64,
    /// Redial backoff while the primary is unreachable.
    pub reconnect_ms: u64,
}

impl Default for StandbyConfig {
    fn default() -> Self {
        StandbyConfig {
            addr: "127.0.0.1:0".into(),
            follow_addr: String::new(),
            wal_dir: PathBuf::new(),
            node_id: String::new(),
            segment_bytes: 4 << 20,
            reconnect_ms: 100,
        }
    }
}

/// What a promoted standby hands back to its caller.
#[derive(Debug)]
pub struct StandbyOutcome {
    /// The still-bound control listener — pass it to
    /// [`bulkd::serve_with_listener`] so promotion reuses the address
    /// with no close/rebind window.
    pub listener: TcpListener,
    /// Highest WAL sequence number durable locally at promotion.
    pub replicated_seq: u64,
    /// Jobs with a replicated submit but no replicated completion —
    /// what the promoted server's recovery will re-queue.
    pub incomplete_jobs: u64,
    /// The old primary's serving address, as last advertised.
    pub leader_hint: String,
}

#[derive(Debug, Default)]
struct State {
    connected: bool,
    /// Primary's node id, learned from WELCOME.
    leader: Option<String>,
    /// Primary's client-serving address — the `not_primary` hint.
    leader_hint: String,
    /// Highest locally durable WAL sequence number.
    replicated_seq: u64,
    /// Primary's acked high-water mark, piggybacked on RECORDS frames.
    leader_acked_seq: u64,
    frames: u64,
    records: u64,
    reconnects: u64,
    /// Job ids with a replicated submit but no completion yet.
    incomplete: HashSet<u64>,
}

struct Shared {
    cfg: StandbyConfig,
    /// The control listener's bound address (promote's self-connect
    /// target).
    ctrl_addr: SocketAddr,
    state: Mutex<State>,
    stop: AtomicBool,
    /// The follower's live connection, registered so shutdown can break
    /// its blocking read.
    follower_conn: Mutex<Option<TcpStream>>,
}

/// Promotion safety: the local durable mark must cover every sequence
/// the leader released a client ack for.  The CI-only
/// `bug-ack-beyond-replicated` feature removes the guard (with the
/// matching primary bug, a lagging standby looks clean — the drill
/// proves the harness catches the resulting acked-job loss).
fn safe_to_promote(st: &State) -> bool {
    ack_beyond_replicated() || st.replicated_seq >= st.leader_acked_seq
}

/// Run a warm standby until it is promoted.  Blocks the calling thread;
/// `on_ready` fires once with the bound control address.
///
/// # Errors
///
/// WAL open/replay failures and listener bind failures.  Transport
/// errors toward the primary are not fatal — the follower redials.
pub fn run_standby(
    cfg: StandbyConfig,
    on_ready: impl FnOnce(SocketAddr),
) -> Result<StandbyOutcome, String> {
    let (wal, scan) = Wal::open(WalConfig {
        dir: cfg.wal_dir.clone(),
        segment_bytes: cfg.segment_bytes,
        fsync: FsyncPolicy::Always,
    })?;
    // Seed the replay view from what already survived on disk, through
    // the same replay the promoted server will run.
    let recovery = journal::replay(&scan.records)?;
    let listener = TcpListener::bind(&cfg.addr)
        .map_err(|e| format!("bind standby control {}: {e}", cfg.addr))?;
    let ctrl_addr = listener.local_addr().map_err(|e| format!("standby local_addr: {e}"))?;
    let sh = Arc::new(Shared {
        cfg,
        ctrl_addr,
        state: Mutex::new(State {
            replicated_seq: scan.next_seq().saturating_sub(1),
            incomplete: recovery.requeue.iter().map(|j| j.id).collect(),
            ..State::default()
        }),
        stop: AtomicBool::new(false),
        follower_conn: Mutex::new(None),
    });
    let follower = {
        let sh = Arc::clone(&sh);
        std::thread::Builder::new()
            .name("repl-standby".into())
            .spawn(move || follow_loop(&sh, wal))
            .map_err(|e| format!("spawn repl-standby: {e}"))?
    };
    on_ready(ctrl_addr);
    for conn in listener.incoming() {
        if sh.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let sh = Arc::clone(&sh);
        let _ = std::thread::Builder::new()
            .name("standby-conn".into())
            .spawn(move || conn_loop(&sh, stream));
    }
    // Promotion: stop the follower (breaking its blocking read), wait
    // for it to drop the WAL writer, then hand the listener over.
    sh.stop.store(true, Ordering::SeqCst);
    if let Some(conn) = sh.follower_conn.lock().expect("standby state poisoned").take() {
        let _ = conn.shutdown(Shutdown::Both);
    }
    let _ = follower.join();
    let st = sh.state.lock().expect("standby state poisoned");
    Ok(StandbyOutcome {
        listener,
        replicated_seq: st.replicated_seq,
        incomplete_jobs: st.incomplete.len() as u64,
        leader_hint: st.leader_hint.clone(),
    })
}

/// Dial–follow–redial until stopped.  Owns the WAL writer: every
/// append in this process goes through the same single-writer path a
/// primary's journal uses.
fn follow_loop(sh: &Shared, mut wal: Wal) {
    while !sh.stop.load(Ordering::SeqCst) {
        let stream = match TcpStream::connect(&sh.cfg.follow_addr) {
            Ok(s) => s,
            Err(_) => {
                std::thread::sleep(Duration::from_millis(sh.cfg.reconnect_ms.max(1)));
                continue;
            }
        };
        let _ = stream.set_nodelay(true);
        *sh.follower_conn.lock().expect("standby state poisoned") = stream.try_clone().ok();
        let err = follow_session(sh, &mut wal, stream);
        let mut st = sh.state.lock().expect("standby state poisoned");
        st.connected = false;
        if !sh.stop.load(Ordering::SeqCst) {
            st.reconnects += 1;
            if let Err(e) = err {
                eprintln!("repl standby: session to {} ended: {e}", sh.cfg.follow_addr);
            }
            drop(st);
            std::thread::sleep(Duration::from_millis(sh.cfg.reconnect_ms.max(1)));
        }
    }
}

/// One session: handshake at the local resume point, then append every
/// shipped batch durably and acknowledge it.  Any protocol or disk
/// error drops the session — the redial re-handshakes at the corrected
/// resume sequence, so a half-applied batch is simply re-requested.
fn follow_session(sh: &Shared, wal: &mut Wal, mut stream: TcpStream) -> Result<(), String> {
    frame::write_magic(&mut stream)?;
    frame::write_frame(
        &mut stream,
        frame::FRAME_HELLO,
        &frame::hello(&sh.cfg.node_id, wal.next_seq()),
    )?;
    frame::read_magic(&mut stream)?;
    let (t, payload) = frame::read_frame(&mut stream)?;
    if t != frame::FRAME_WELCOME {
        return Err(format!("expected WELCOME, got frame type {t}"));
    }
    let welcome = frame::control_json(&payload)?;
    {
        let mut st = sh.state.lock().expect("standby state poisoned");
        st.leader = welcome.get("node_id").and_then(Json::as_str).map(str::to_owned);
        if let Some(addr) = welcome.get("addr").and_then(Json::as_str) {
            st.leader_hint = addr.to_owned();
        }
        st.connected = true;
    }
    loop {
        if sh.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let (t, payload) = frame::read_frame(&mut stream)?;
        if t != frame::FRAME_RECORDS {
            return Err(format!("expected RECORDS, got frame type {t}"));
        }
        let (leader_acked, records) = frame::decode_records(&payload)?;
        for rec in &records {
            if rec.seq != wal.next_seq() {
                return Err(format!(
                    "sequence break: primary shipped seq {}, local log expects {}",
                    rec.seq,
                    wal.next_seq()
                ));
            }
            wal.append_unsynced(rec.rec_type, &rec.payload)?;
        }
        if !records.is_empty() {
            // One fsync covers the whole frame — the follower's analogue
            // of the primary's group commit.
            wal.sync()?;
        }
        let durable = wal.next_seq().saturating_sub(1);
        {
            let mut st = sh.state.lock().expect("standby state poisoned");
            st.replicated_seq = durable;
            st.leader_acked_seq = st.leader_acked_seq.max(leader_acked);
            st.frames += 1;
            st.records += records.len() as u64;
            for rec in &records {
                track_replay(&mut st.incomplete, rec);
            }
        }
        frame::write_frame(&mut stream, frame::FRAME_ACK, &frame::ack(durable))?;
    }
}

/// Maintain the journal-replay view incrementally: a submit opens a job,
/// a completion closes it.  Records that fail to parse are skipped here
/// (the authoritative replay at promotion will surface them).
fn track_replay(incomplete: &mut HashSet<u64>, rec: &wal::Record) {
    let Ok(text) = std::str::from_utf8(&rec.payload) else { return };
    let Ok(j) = Json::parse(text) else { return };
    let Some(id) = j.get("job").and_then(Json::as_i64).filter(|&v| v >= 0) else { return };
    match rec.rec_type {
        REC_SUBMIT => {
            incomplete.insert(id as u64);
        }
        REC_COMPLETE => {
            incomplete.remove(&(id as u64));
        }
        _ => {}
    }
}

/// One control connection: the ordinary line protocol, answered in the
/// standby role.
fn conn_loop(sh: &Shared, mut stream: TcpStream) {
    let mut framer = protocol::LineFramer::new(MAX_LINE_BYTES);
    let mut chunk = [0u8; 4096];
    loop {
        loop {
            let line = match framer.next_line() {
                Ok(Some(line)) => line,
                Ok(None) => break,
                Err(e) => {
                    let resp = protocol::resp_error("overlong", &e);
                    let _ = stream.write_all((resp.to_compact() + "\n").as_bytes());
                    return;
                }
            };
            if sh.stop.load(Ordering::SeqCst) {
                return;
            }
            let (resp, promote) = handle_line(sh, &line);
            if stream.write_all((resp.to_compact() + "\n").as_bytes()).is_err() {
                return;
            }
            if promote {
                // Reply first, then stop the loops; the self-connect pops
                // the accept loop so `run_standby` can return.
                sh.stop.store(true, Ordering::SeqCst);
                let _ = TcpStream::connect(sh.ctrl_addr);
                return;
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return,
            Ok(n) => framer.push(&chunk[..n]),
        }
    }
}

fn handle_line(sh: &Shared, line: &str) -> (Json, bool) {
    let req = match Request::parse_line(line) {
        Ok(req) => req,
        Err(e) => return (protocol::resp_error("bad_request", &e), false),
    };
    let st = sh.state.lock().expect("standby state poisoned");
    match req {
        Request::Status | Request::Stats => (status_json(sh, &st), false),
        Request::Metrics => {
            let mut o = Json::obj();
            o.set("ok", true);
            o.set("metrics", prometheus(&st));
            (o, false)
        }
        Request::Promote => {
            if safe_to_promote(&st) {
                let mut o = Json::obj();
                o.set("ok", true);
                o.set("promoted", true);
                o.set("node_id", sh.cfg.node_id.as_str());
                o.set("replicated_seq", st.replicated_seq);
                o.set("incomplete_jobs", st.incomplete.len() as u64);
                (o, true)
            } else {
                (
                    protocol::resp_error(
                        "unsafe_promote",
                        &format!(
                            "standby durable seq {} trails the leader's acked seq {}; \
                             promoting would lose acknowledged jobs",
                            st.replicated_seq, st.leader_acked_seq
                        ),
                    ),
                    false,
                )
            }
        }
        Request::Submit { .. } => {
            (protocol::resp_not_primary(&st.leader_hint, "this node is a warm standby"), false)
        }
        Request::Drain => (
            protocol::resp_not_primary(
                &st.leader_hint,
                "this node is a warm standby; drain the serving primary",
            ),
            false,
        ),
        Request::Dump => (
            protocol::resp_not_primary(
                &st.leader_hint,
                "a standby records no flight data; dump the serving primary",
            ),
            false,
        ),
    }
}

fn status_json(sh: &Shared, st: &State) -> Json {
    let mut o = Json::obj();
    o.set("ok", true);
    o.set("protocol_version", PROTOCOL_VERSION);
    o.set("node_id", sh.cfg.node_id.as_str());
    o.set("role", "standby");
    o.set("follow_addr", sh.cfg.follow_addr.as_str());
    o.set("leader", st.leader.clone().map_or(Json::Null, Json::Str));
    o.set("leader_hint", st.leader_hint.as_str());
    o.set("connected", u64::from(st.connected));
    o.set("replicated_seq", st.replicated_seq);
    o.set("leader_acked_seq", st.leader_acked_seq);
    o.set("safe_to_promote", safe_to_promote(st));
    o.set("incomplete_jobs", st.incomplete.len() as u64);
    o.set("records_replicated", st.records);
    o.set("frames", st.frames);
    o.set("reconnects", st.reconnects);
    o
}

fn prometheus(st: &State) -> String {
    let mut p = PromText::new();
    p.gauge(
        "bulkd_standby_replicated_seq",
        "Highest WAL sequence number durable on this standby.",
        st.replicated_seq as f64,
    );
    p.gauge(
        "bulkd_standby_leader_acked_seq",
        "Leader's acked high-water mark as last advertised.",
        st.leader_acked_seq as f64,
    );
    p.gauge(
        "bulkd_standby_connected",
        "1 while the follower holds a live session to the primary.",
        f64::from(u8::from(st.connected)),
    );
    p.gauge(
        "bulkd_standby_safe_to_promote",
        "1 when promotion would lose no acknowledged job.",
        f64::from(u8::from(safe_to_promote(st))),
    );
    p.gauge(
        "bulkd_standby_incomplete_jobs",
        "Replicated submits with no replicated completion yet.",
        st.incomplete.len() as f64,
    );
    p.counter(
        "bulkd_standby_records_replicated_total",
        "WAL records appended from the replication stream.",
        st.records,
    );
    p.counter(
        "bulkd_standby_reconnects_total",
        "Follower sessions that ended and were redialed.",
        st.reconnects,
    );
    p.finish()
}
