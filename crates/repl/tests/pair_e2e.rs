//! In-process primary/standby pair: a real journal feeds a real
//! [`repl::ReplPrimary`], a real standby follows it over loopback, and
//! promotion hands back a WAL whose replay matches the primary's exactly.

use bulkd::journal::{Journal, JournalConfig};
use bulkd::protocol::JobKey;
use bulkd::{Client, ClientError, ReplSink};
use oblivious::Layout;
use repl::{run_standby, PrimaryConfig, ReplPrimary, StandbyConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};
use wal::FsyncPolicy;

static DIR_ID: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "repl-pair-{tag}-{}-{}",
        std::process::id(),
        DIR_ID.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn key() -> JobKey {
    JobKey { algo: "prefix-sum".into(), size: 4, layout: Layout::RowWise }
}

#[test]
fn pair_replicates_acks_and_promotes_bit_identically() {
    let primary_dir = temp_dir("primary");
    let standby_dir = temp_dir("standby");

    let (journal, _recovery) = Journal::open(&JournalConfig {
        dir: primary_dir.clone(),
        fsync: FsyncPolicy::Always,
        segment_bytes: 4 << 20,
    })
    .unwrap();

    let (prim, repl_addr) = ReplPrimary::start(PrimaryConfig {
        listen_addr: "127.0.0.1:0".into(),
        wal_dir: primary_dir.clone(),
        node_id: "p1".into(),
        serving_addr: "127.0.0.1:7070".into(),
        ack_timeout_ms: 4_000,
        poll_interval_ms: 1,
    })
    .unwrap();

    let (addr_tx, addr_rx) = mpsc::channel();
    let standby = {
        let cfg = StandbyConfig {
            addr: "127.0.0.1:0".into(),
            follow_addr: repl_addr.to_string(),
            wal_dir: standby_dir.clone(),
            node_id: "s1".into(),
            reconnect_ms: 20,
            ..StandbyConfig::default()
        };
        std::thread::spawn(move || run_standby(cfg, |addr| addr_tx.send(addr).unwrap()))
    };
    let standby_addr = addr_rx.recv_timeout(Duration::from_secs(5)).unwrap();

    // Job 1 submits and completes; the semi-sync gate must release well
    // inside the degrade timeout because the follower is live.
    journal.log_submit(1, &key(), &[vec![0x1], vec![0x2]]).unwrap();
    let out = vec![vec![0x1u64], vec![0x3u64]];
    let seq = journal.log_complete(1, Ok(&out)).unwrap();
    let gate = Instant::now();
    prim.wait_replicated(seq);
    assert!(
        gate.elapsed() < Duration::from_millis(2_000),
        "semi-sync ack took {:?} — follower never acked",
        gate.elapsed()
    );
    let stats = prim.stats_json(journal.durable_seq(), 1);
    assert_eq!(stats.path("degraded_acks").unwrap().as_i64(), Some(0));
    assert!(stats.path("replicated_seq").unwrap().as_i64().unwrap() >= seq as i64);
    assert_eq!(stats.path("follower_connected").unwrap().as_i64(), Some(1));
    assert_eq!(stats.path("follower").unwrap().as_str(), Some("s1"));

    // Job 2 submits but never completes — the promoted node must
    // re-queue exactly this one.
    journal.log_submit(2, &key(), &[vec![0xFF]]).unwrap();

    // Let the submit ship (it carries no client ack, so nothing waits
    // on it — poll the standby's own durable mark instead).
    let mut ctl = Client::connect(standby_addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let status = ctl.status().unwrap();
        assert_eq!(status.path("role").unwrap().as_str(), Some("standby"));
        if status.path("replicated_seq").unwrap().as_i64() == Some(3) {
            assert_eq!(status.path("incomplete_jobs").unwrap().as_i64(), Some(1));
            assert_eq!(status.path("safe_to_promote"), Some(&obs::Json::Bool(true)));
            assert_eq!(status.path("leader_hint").unwrap().as_str(), Some("127.0.0.1:7070"));
            break;
        }
        assert!(Instant::now() < deadline, "standby never reached seq 3: {status:?}");
        std::thread::sleep(Duration::from_millis(10));
    }

    // A standby refuses work with a typed pointer at the leader.
    match ctl.drain() {
        Err(ClientError::NotPrimary { leader_hint }) => {
            assert_eq!(leader_hint, "127.0.0.1:7070");
        }
        other => panic!("expected NotPrimary from standby drain, got {other:?}"),
    }

    // Promote and compare the logs byte for byte.
    let promoted = ctl.promote().unwrap();
    assert_eq!(promoted.path("replicated_seq").unwrap().as_i64(), Some(3));
    let outcome = standby.join().unwrap().unwrap();
    assert_eq!(outcome.replicated_seq, 3);
    assert_eq!(outcome.incomplete_jobs, 1);
    assert_eq!(outcome.leader_hint, "127.0.0.1:7070");

    let primary_log = wal::scan(&primary_dir).unwrap();
    let standby_log = wal::scan(&standby_dir).unwrap();
    assert_eq!(primary_log.records, standby_log.records, "replicated WAL diverged");

    // The promoted node's recovery equals a crashed primary's recovery.
    let (_journal2, recovery) = Journal::open(&JournalConfig {
        dir: standby_dir.clone(),
        fsync: FsyncPolicy::Always,
        segment_bytes: 4 << 20,
    })
    .unwrap();
    assert_eq!(recovery.already_completed, 1);
    assert_eq!(recovery.requeue.len(), 1);
    assert_eq!(recovery.requeue[0].id, 2);
    assert_eq!(recovery.requeue[0].inputs, vec![vec![0xFF]]);

    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&standby_dir);
}

#[test]
fn unacked_primary_degrades_after_follower_loss_not_before() {
    let dir = temp_dir("degrade");
    let (journal, _recovery) = Journal::open(&JournalConfig {
        dir: dir.clone(),
        fsync: FsyncPolicy::Always,
        segment_bytes: 4 << 20,
    })
    .unwrap();
    let (prim, _repl_addr) = ReplPrimary::start(PrimaryConfig {
        listen_addr: "127.0.0.1:0".into(),
        wal_dir: dir.clone(),
        node_id: "p1".into(),
        serving_addr: "127.0.0.1:7070".into(),
        ack_timeout_ms: 60,
        poll_interval_ms: 1,
    })
    .unwrap();

    journal.log_submit(1, &key(), &[vec![0x1]]).unwrap();
    let out = vec![vec![0x1u64]];
    let seq = journal.log_complete(1, Ok(&out)).unwrap();

    // No standby ever connected: the pair contract holds from record
    // one, so the gate waits its (short) timeout and degrades.
    let gate = Instant::now();
    prim.wait_replicated(seq);
    assert!(gate.elapsed() >= Duration::from_millis(50), "gate skipped the wait");
    let stats = prim.stats_json(journal.durable_seq(), 1);
    assert_eq!(stats.path("degraded_acks").unwrap().as_i64(), Some(1));
    assert!(stats.path("lag_records").unwrap().as_i64().unwrap() > 0);
    assert_eq!(stats.path("acked_seq").unwrap().as_i64(), Some(seq as i64));

    let _ = std::fs::remove_dir_all(&dir);
}
