//! Per-backend health state: a debounced up/down machine fed by probes.
//!
//! The prober thread (in [`crate::run_router`]) sends each backend a
//! `status` request every `probe interval` under short connect/read
//! timeouts; each outcome feeds [`HealthBoard::on_success`] /
//! [`HealthBoard::on_failure`].  Forwarding failures feed the same
//! strikes, so a crashed backend converges to *down* even between probes.
//!
//! Debouncing is deliberate and asymmetric: a node is marked **down**
//! only after `down_after` consecutive failures (one dropped probe must
//! not evict a healthy node's keys), and marked **up** again only after
//! `up_after` consecutive successes (a flapping node must prove itself
//! before traffic returns).  Nodes start *up* — optimism lets traffic
//! flow before the first probe completes, and a genuinely dead backend
//! is demoted within `down_after` strikes anyway.

use std::sync::Mutex;
use std::time::Instant;

/// When a node transitions between up and down.
#[derive(Debug, Clone, Copy)]
pub struct HealthPolicy {
    /// Consecutive failures before a node is marked down.
    pub down_after: u32,
    /// Consecutive successes before a down node is marked up again.
    pub up_after: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy { down_after: 3, up_after: 2 }
    }
}

/// A node's current routability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Routable: dispatch keys it owns to it.
    Up,
    /// Not routable: skip straight to the key's successor.
    Down,
}

/// One node's full health record, as copied out by [`HealthBoard::view`].
#[derive(Debug, Clone)]
pub struct NodeHealth {
    /// Current debounced state.
    pub state: HealthState,
    /// Successful probes/dispatches, cumulative.
    pub successes: u64,
    /// Failed probes/dispatches, cumulative.
    pub failures: u64,
    /// Up→down transitions, cumulative.
    pub marked_down: u64,
    /// Down→up transitions, cumulative.
    pub marked_up: u64,
    /// Current consecutive-failure streak.
    pub consecutive_failures: u32,
    /// Last failure detail, for the status view ("" = never failed).
    pub last_error: String,
    /// Microseconds since the board was created when this node was last
    /// probed or dispatched to, either way (0 = never touched).  The
    /// observability answer to "is the prober actually looking?".
    pub last_probe_us: u64,
}

impl NodeHealth {
    fn new() -> Self {
        NodeHealth {
            state: HealthState::Up,
            successes: 0,
            failures: 0,
            marked_down: 0,
            marked_up: 0,
            consecutive_failures: 0,
            last_error: String::new(),
            last_probe_us: 0,
        }
    }
}

struct Inner {
    nodes: Vec<NodeHealth>,
    /// Consecutive-success streaks (only meaningful while down).
    streaks_up: Vec<u32>,
}

/// Shared health state for all backends, indexed like the ring's nodes.
pub struct HealthBoard {
    policy: HealthPolicy,
    /// Zero point of every `last_probe_us` stamp.
    start: Instant,
    inner: Mutex<Inner>,
}

impl HealthBoard {
    /// A board of `n` nodes, all initially up.
    #[must_use]
    pub fn new(n: usize, policy: HealthPolicy) -> HealthBoard {
        HealthBoard {
            policy,
            start: Instant::now(),
            inner: Mutex::new(Inner {
                nodes: (0..n).map(|_| NodeHealth::new()).collect(),
                streaks_up: vec![0; n],
            }),
        }
    }

    fn now_us(&self) -> u64 {
        // Saturate the stamp away from 0, which is reserved for "never".
        (self.start.elapsed().as_micros() as u64).max(1)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("health board poisoned")
    }

    /// Record a successful probe or dispatch against node `idx`.
    pub fn on_success(&self, idx: usize) {
        let stamp = self.now_us();
        let mut g = self.lock();
        let node = &mut g.nodes[idx];
        node.successes += 1;
        node.consecutive_failures = 0;
        node.last_probe_us = stamp;
        match node.state {
            HealthState::Up => g.streaks_up[idx] = 0,
            HealthState::Down => {
                g.streaks_up[idx] += 1;
                if g.streaks_up[idx] >= self.policy.up_after {
                    let node = &mut g.nodes[idx];
                    node.state = HealthState::Up;
                    node.marked_up += 1;
                    g.streaks_up[idx] = 0;
                }
            }
        }
    }

    /// Record a failed probe or dispatch against node `idx`.
    pub fn on_failure(&self, idx: usize, detail: &str) {
        let stamp = self.now_us();
        let mut g = self.lock();
        g.streaks_up[idx] = 0;
        let node = &mut g.nodes[idx];
        node.failures += 1;
        node.consecutive_failures += 1;
        node.last_error = detail.to_string();
        node.last_probe_us = stamp;
        if node.state == HealthState::Up && node.consecutive_failures >= self.policy.down_after {
            node.state = HealthState::Down;
            node.marked_down += 1;
        }
    }

    /// Put node `idx` straight back to *up* with clean streaks.  For
    /// failover: the id just got repointed at a promoted standby, so the
    /// dead address's strike history is about a node that no longer
    /// exists.
    pub fn reset(&self, idx: usize) {
        let stamp = self.now_us();
        let mut g = self.lock();
        g.streaks_up[idx] = 0;
        let node = &mut g.nodes[idx];
        if node.state == HealthState::Down {
            node.marked_up += 1;
        }
        node.state = HealthState::Up;
        node.consecutive_failures = 0;
        node.last_probe_us = stamp;
    }

    /// Is node `idx` currently routable?
    #[must_use]
    pub fn is_up(&self, idx: usize) -> bool {
        self.lock().nodes[idx].state == HealthState::Up
    }

    /// How many nodes are currently up.
    #[must_use]
    pub fn up_count(&self) -> usize {
        self.lock().nodes.iter().filter(|n| n.state == HealthState::Up).count()
    }

    /// A copy of every node's record, indexed like the ring.
    #[must_use]
    pub fn view(&self) -> Vec<NodeHealth> {
        self.lock().nodes.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn board() -> HealthBoard {
        HealthBoard::new(2, HealthPolicy { down_after: 3, up_after: 2 })
    }

    #[test]
    fn nodes_start_up_and_survive_isolated_failures() {
        let b = board();
        assert!(b.is_up(0) && b.is_up(1));
        // Two strikes, then a success: the streak resets, still up.
        b.on_failure(0, "probe: timed out");
        b.on_failure(0, "probe: timed out");
        assert!(b.is_up(0));
        b.on_success(0);
        b.on_failure(0, "probe: timed out");
        b.on_failure(0, "probe: timed out");
        assert!(b.is_up(0), "the success must have reset the failure streak");
        assert_eq!(b.up_count(), 2);
    }

    #[test]
    fn k_consecutive_failures_mark_down_j_successes_mark_up() {
        let b = board();
        for _ in 0..3 {
            b.on_failure(1, "connect: refused");
        }
        assert!(!b.is_up(1));
        assert!(b.is_up(0), "node 0 is unaffected");
        // One success is not enough to trust a flapper…
        b.on_success(1);
        assert!(!b.is_up(1));
        // …and a failure mid-recovery resets the comeback.
        b.on_failure(1, "connect: refused");
        b.on_success(1);
        assert!(!b.is_up(1));
        b.on_success(1);
        assert!(b.is_up(1), "two consecutive successes must mark up");
        let v = b.view();
        assert_eq!(v[1].marked_down, 1);
        assert_eq!(v[1].marked_up, 1);
        assert_eq!(v[1].last_error, "connect: refused");
        assert_eq!(v[0].failures, 0);
    }

    #[test]
    fn probe_stamps_advance_and_reset_marks_up_immediately() {
        let b = board();
        assert_eq!(b.view()[0].last_probe_us, 0, "never probed yet");
        b.on_failure(0, "connect: refused");
        let first = b.view()[0].last_probe_us;
        assert!(first > 0, "a probe must stamp the node");
        b.on_success(1);
        assert!(b.view()[1].last_probe_us >= first);
        // Failover repoint: a down node comes straight back up.
        for _ in 0..3 {
            b.on_failure(0, "connect: refused");
        }
        assert!(!b.is_up(0));
        b.reset(0);
        assert!(b.is_up(0));
        let v = b.view();
        assert_eq!(v[0].marked_up, 1);
        assert_eq!(v[0].consecutive_failures, 0);
        // A reset on an already-up node is a no-op transition-wise.
        b.reset(1);
        assert_eq!(b.view()[1].marked_up, 0);
    }

    #[test]
    fn repeated_failures_do_not_double_count_transitions() {
        let b = board();
        for _ in 0..10 {
            b.on_failure(0, "down");
        }
        let v = b.view();
        assert_eq!(v[0].marked_down, 1, "one up→down transition, not one per strike");
        assert_eq!(v[0].failures, 10);
        assert_eq!(v[0].consecutive_failures, 10);
    }
}
