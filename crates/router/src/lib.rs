//! # router — a consistent-hash routing tier for bulkd
//!
//! One bulkd node amortizes a compiled oblivious schedule over the `p`
//! coalesced instances of a key; this crate scales that story to a
//! cluster without giving it up.  The router speaks the exact bulkd
//! newline-JSON protocol on the front and places every submit by its
//! coalescing key `(algo, n, layout)` on a consistent-hash ring over the
//! backend nodes ([`ring`]), so each key's whole stream lands on one
//! node: one compile per key cluster-wide, batches as large as a single
//! node would build.
//!
//! Around that placement sit the operational pieces:
//!
//! * [`health`] — periodic `status` probes under short connect/read
//!   timeouts mark nodes down after K consecutive failures and up again
//!   after J successes; down nodes are skipped at dispatch time.
//! * redispatch — a backend `overloaded{retry_after_ms}` answer or a
//!   connect/IO failure moves the submit to the key's successor node
//!   after a bounded, jittered wait ([`bulkd::jittered_backoff_ms`]).
//!   Nothing is silently dropped: the client always gets the backend's
//!   verbatim reply or the router's own `unavailable` error.
//! * [`stats`] — a conservation-law ledger (`submits == acked +
//!   relayed_errors + unavailable`), a merged cluster snapshot for
//!   `stats`/`drain`, and a Prometheus view with a `node` label.
//!
//! Submit forwarding relays the backend's reply bytes verbatim, so a
//! client sees bit-identical outputs whether it talks to a node directly
//! or through the router.  Re-execution after a mid-reply connection
//! loss is safe for the same reason the reroute is: the catalog's
//! algorithms are oblivious and deterministic, so any node computes the
//! same output words for the same inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod health;
pub mod ring;
pub mod stats;

pub use health::{HealthBoard, HealthPolicy, HealthState, NodeHealth};
pub use ring::{stable_hash, HashRing};
pub use stats::{
    merged_snapshot, render_prometheus, router_section, BackendCounters, ClusterTotals, LedgerView,
    RouterStats,
};

use bulkd::protocol::resp_error;
use bulkd::{
    jittered_backoff_ms, Client, ClientConfig, ClientError, JobKey, LineFramer, Request,
    RouteClass, PROTOCOL_VERSION,
};
use obs::{Json, Rng};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Same line-length bound as the bulkd server.
const MAX_LINE_BYTES: usize = 16 * 1024 * 1024;

/// One routable bulkd node: a stable identity plus a dial address.
///
/// The ring hashes the *id*, never the address.  Addresses are
/// deployment details (ephemeral ports in tests, moving IPs in real
/// clusters); ids are the coordinates placement is computed in, so the
/// same ids always produce the same key→node map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Backend {
    /// Stable node name (what `--backends id=addr` binds).
    pub id: String,
    /// TCP dial address.
    pub addr: String,
}

/// Parse a `--backends` spec: comma-separated `id=addr` entries, with a
/// bare `addr` shorthand meaning `addr=addr`.
///
/// # Errors
///
/// Empty specs, empty ids/addresses, and duplicate ids are rejected.
pub fn parse_backends(spec: &str) -> Result<Vec<Backend>, String> {
    let mut out: Vec<Backend> = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (id, addr) = match part.split_once('=') {
            Some((id, addr)) => (id.trim(), addr.trim()),
            None => (part, part),
        };
        if id.is_empty() || addr.is_empty() {
            return Err(format!("backend \"{part}\" needs non-empty id and address"));
        }
        if out.iter().any(|b| b.id == id) {
            return Err(format!("duplicate backend id \"{id}\""));
        }
        out.push(Backend { id: id.to_string(), addr: addr.to_string() });
    }
    if out.is_empty() {
        return Err("at least one backend is required (e.g. --backends n1=127.0.0.1:7070)".into());
    }
    Ok(out)
}

/// Tunables of one [`run_router`] invocation.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// The backend bulkd nodes, in ring order-independent id space.
    pub backends: Vec<Backend>,
    /// Warm standbys, keyed by the backend id they shadow (`--standbys
    /// n1=addr`): each entry's `id` names a backend, its `addr` is that
    /// backend's standby control port.  When the backend goes down, the
    /// prober promotes the standby and repoints the *id* at the
    /// standby's address — the ring hashes ids, so no key moves.
    pub standbys: Vec<Backend>,
    /// Virtual nodes per backend on the hash ring.
    pub vnodes: usize,
    /// Milliseconds between health-probe rounds.
    pub probe_interval_ms: u64,
    /// Connect *and* read timeout of one health probe, in milliseconds.
    pub probe_timeout_ms: u64,
    /// Down-after-K / up-after-J debouncing.
    pub health: HealthPolicy,
    /// Backend dial timeout when forwarding, in milliseconds.
    pub connect_timeout_ms: u64,
    /// Backend reply-read timeout when forwarding, in milliseconds.
    /// Submits block for queue wait + execution, so leave headroom well
    /// above the backends' flush window.
    pub read_timeout_ms: u64,
    /// Cap on the jittered wait before an overload redispatch, in
    /// milliseconds (the backend's `retry_after_ms` hint is honored up
    /// to this bound).
    pub max_redispatch_wait_ms: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:7171".into(),
            backends: Vec::new(),
            standbys: Vec::new(),
            vnodes: 64,
            probe_interval_ms: 500,
            probe_timeout_ms: 250,
            health: HealthPolicy::default(),
            connect_timeout_ms: 1000,
            read_timeout_ms: 30_000,
            max_redispatch_wait_ms: 100,
        }
    }
}

struct Shared {
    cfg: RouterConfig,
    ids: Vec<String>,
    /// Live dial address per backend id.  Mutable because failover
    /// repoints an id at its promoted standby; the ring never changes.
    addrs: Vec<Mutex<String>>,
    /// Standby control address per backend index, when one is shadowing.
    standby_for: Vec<Option<String>>,
    /// One-shot latch per backend: a standby is promoted at most once.
    promoted: Vec<AtomicBool>,
    /// Completed standby promotions.
    ring: HashRing,
    board: HealthBoard,
    stats: RouterStats,
    stop_accepting: AtomicBool,
    addr: SocketAddr,
    /// The drain fan-out's collected backend snapshots, stashed for
    /// [`run_router`]'s return value.
    drain_snaps: Mutex<Option<Vec<Option<Json>>>>,
    conn_seq: AtomicU64,
}

impl Shared {
    /// The backend's current dial address (post-failover aware).
    fn addr_of(&self, idx: usize) -> String {
        self.addrs[idx].lock().expect("backend addr poisoned").clone()
    }
}

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

/// Run the routing tier until a client sends `drain`.  `on_ready` fires
/// once with the bound address.  Returns the merged cluster snapshot
/// (the same document the draining client received).
///
/// # Errors
///
/// Bind/IO failures, a degenerate ring, and a post-drain accounting
/// imbalance.
pub fn run_router(cfg: &RouterConfig, on_ready: impl FnOnce(SocketAddr)) -> Result<Json, String> {
    let ids: Vec<String> = cfg.backends.iter().map(|b| b.id.clone()).collect();
    let ring = HashRing::new(&ids, cfg.vnodes)?;
    let mut standby_for: Vec<Option<String>> = vec![None; ids.len()];
    for s in &cfg.standbys {
        let idx = ids
            .iter()
            .position(|id| *id == s.id)
            .ok_or_else(|| format!("standby \"{}\" shadows no configured backend id", s.id))?;
        if standby_for[idx].is_some() {
            return Err(format!("backend \"{}\" has two standbys configured", s.id));
        }
        standby_for[idx] = Some(s.addr.clone());
    }
    let listener = TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
    let addr = listener.local_addr().map_err(|e| format!("local_addr: {e}"))?;
    let n = ids.len();
    let shared = Arc::new(Shared {
        cfg: cfg.clone(),
        ids,
        addrs: cfg.backends.iter().map(|b| Mutex::new(b.addr.clone())).collect(),
        standby_for,
        promoted: (0..n).map(|_| AtomicBool::new(false)).collect(),
        ring,
        board: HealthBoard::new(n, cfg.health),
        stats: RouterStats::new(n),
        stop_accepting: AtomicBool::new(false),
        addr,
        drain_snaps: Mutex::new(None),
        conn_seq: AtomicU64::new(0),
    });

    let prober = {
        let sh = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("router-probe".into())
            .spawn(move || probe_loop(&sh))
            .map_err(|e| format!("spawn prober: {e}"))?
    };

    on_ready(addr);

    for conn in listener.incoming() {
        if shared.stop_accepting.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let sh = Arc::clone(&shared);
        let _ = std::thread::Builder::new()
            .name("router-conn".into())
            .spawn(move || conn_loop(stream, &sh));
    }
    let _ = prober.join();

    // Give racing connection threads a moment to finish answering their
    // in-flight submits, then enforce the conservation law.
    let deadline = Instant::now() + Duration::from_secs(5);
    let view = loop {
        let view = shared.stats.view();
        if view.check_balanced().is_ok() || Instant::now() >= deadline {
            break view;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    view.check_balanced()?;

    let snaps = shared
        .drain_snaps
        .lock()
        .expect("drain snapshot slot poisoned")
        .take()
        .unwrap_or_else(|| vec![None; shared.ids.len()]);
    Ok(merged_snapshot(&view, &shared.ids, &shared.board.view(), &snaps, true))
}

/// Probe every backend's `status` endpoint forever (until drain), under
/// short timeouts, feeding the health board.
fn probe_loop(sh: &Shared) {
    let probe_cfg = ClientConfig {
        connect_timeout: Some(ms(sh.cfg.probe_timeout_ms.max(1))),
        read_timeout: Some(ms(sh.cfg.probe_timeout_ms.max(1))),
    };
    loop {
        for i in 0..sh.ids.len() {
            if sh.stop_accepting.load(Ordering::SeqCst) {
                return;
            }
            let outcome = Client::connect_with(sh.addr_of(i), &probe_cfg)
                .map_err(|e| format!("probe connect: {e}"))
                .and_then(|mut c| c.status().map_err(|e| format!("probe: {e}")));
            match outcome {
                Ok(_) => sh.board.on_success(i),
                Err(e) => {
                    sh.board.on_failure(i, &e);
                    maybe_failover(sh, i, &probe_cfg);
                }
            }
        }
        // Sleep in small steps so drain doesn't wait out a long interval.
        let mut waited = 0u64;
        while waited < sh.cfg.probe_interval_ms {
            if sh.stop_accepting.load(Ordering::SeqCst) {
                return;
            }
            let step = (sh.cfg.probe_interval_ms - waited).min(50);
            std::thread::sleep(ms(step));
            waited += step;
        }
    }
}

/// Promote backend `i`'s standby if the backend has just been debounced
/// down and a standby is shadowing it.
///
/// Probe-confirmed and one-shot: the standby's own `status` must report
/// the standby role with `safe_to_promote` (its durable mark covers
/// everything the dead primary ever acked) before `promote` is sent.  On
/// success the backend *id* is repointed at the standby's address — the
/// ring hashes ids, so the keyspace map is untouched and the promoted
/// node inherits exactly the dead node's keys.
fn maybe_failover(sh: &Shared, i: usize, probe_cfg: &ClientConfig) {
    if sh.board.is_up(i) || sh.promoted[i].load(Ordering::SeqCst) {
        return;
    }
    let Some(standby_addr) = sh.standby_for[i].clone() else { return };
    let confirmed = Client::connect_with(&standby_addr, probe_cfg)
        .map_err(|e| format!("standby connect: {e}"))
        .and_then(|mut c| c.status().map_err(|e| format!("standby status: {e}")))
        .and_then(|s| {
            if s.get("role").and_then(Json::as_str) != Some("standby") {
                return Err("shadow node is not in the standby role".into());
            }
            if s.get("safe_to_promote") != Some(&Json::Bool(true)) {
                return Err(format!(
                    "standby is not safe to promote (replicated_seq {} < leader_acked_seq {})",
                    s.get("replicated_seq").and_then(Json::as_i64).unwrap_or(-1),
                    s.get("leader_acked_seq").and_then(Json::as_i64).unwrap_or(-1),
                ));
            }
            Ok(())
        });
    if let Err(e) = confirmed {
        eprintln!("router: backend {} is down but failover is held: {e}", sh.ids[i]);
        return;
    }
    // Promotion hands the standby's listener to a recovering server;
    // give the reply a forwarding-grade timeout, not a probe-grade one.
    let promote_cfg = ClientConfig {
        connect_timeout: Some(ms(sh.cfg.connect_timeout_ms.max(1))),
        read_timeout: Some(ms(sh.cfg.read_timeout_ms.max(1))),
    };
    match Client::connect_with(&standby_addr, &promote_cfg)
        .map_err(ClientError::Io)
        .and_then(|mut c| c.promote())
    {
        Ok(_) => {
            *sh.addrs[i].lock().expect("backend addr poisoned") = standby_addr.clone();
            sh.promoted[i].store(true, Ordering::SeqCst);
            sh.stats.on_failover();
            sh.board.reset(i);
            eprintln!(
                "router: promoted standby at {standby_addr} for backend {} — id repointed",
                sh.ids[i]
            );
        }
        Err(e) => eprintln!("router: promote of {}'s standby failed: {e}", sh.ids[i]),
    }
}

/// A cached raw-line connection to one backend.
struct Link {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Link {
    fn dial(addr: &str, connect_ms: u64, read_ms: u64) -> std::io::Result<Link> {
        let mut last: Option<std::io::Error> = None;
        let mut stream = None;
        for resolved in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&resolved, ms(connect_ms.max(1))) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last = Some(e),
            }
        }
        let Some(s) = stream else {
            return Err(last.unwrap_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "address resolved to no candidates",
                )
            }));
        };
        s.set_read_timeout(Some(ms(read_ms.max(1))))?;
        Ok(Link { reader: BufReader::new(s.try_clone()?), writer: s })
    }

    /// Send one raw protocol line, read one raw reply line.
    fn roundtrip(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "backend closed the connection",
            ));
        }
        Ok(resp.trim_end().to_string())
    }
}

/// Forward `line` to backend `idx`, reusing this connection's cached
/// link.  A failure on a *cached* link gets one fresh-dial retry — idle
/// links go stale when backends close them, and that is not evidence
/// the node is down.
fn forward(
    sh: &Shared,
    links: &mut [Option<Link>],
    idx: usize,
    line: &str,
) -> std::io::Result<String> {
    let dial = || Link::dial(&sh.addr_of(idx), sh.cfg.connect_timeout_ms, sh.cfg.read_timeout_ms);
    let had_cache = links[idx].is_some();
    if links[idx].is_none() {
        links[idx] = Some(dial()?);
    }
    match links[idx].as_mut().expect("link just ensured").roundtrip(line) {
        Ok(r) => Ok(r),
        Err(first) => {
            links[idx] = None;
            if !had_cache {
                return Err(first);
            }
            let mut fresh = dial()?;
            let r = fresh.roundtrip(line)?;
            links[idx] = Some(fresh);
            Ok(r)
        }
    }
}

enum ReplyKind {
    Ok,
    Overloaded(u64),
    Error,
}

fn classify(raw: &str) -> ReplyKind {
    let Ok(j) = Json::parse(raw) else { return ReplyKind::Error };
    match j.get("ok") {
        Some(&Json::Bool(true)) => ReplyKind::Ok,
        _ => {
            if j.get("error").and_then(Json::as_str) == Some("overloaded") {
                let retry =
                    j.get("retry_after_ms").and_then(Json::as_i64).unwrap_or(1).max(1) as u64;
                ReplyKind::Overloaded(retry)
            } else {
                ReplyKind::Error
            }
        }
    }
}

/// Dispatch one submit line: try the key's ring owner, then each distinct
/// successor, skipping nodes the health board says are down (unless all
/// are — then the board might be stale, so everything is tried).  The
/// backend's reply bytes are relayed verbatim.
fn dispatch_submit(
    sh: &Shared,
    raw_line: &str,
    key: &JobKey,
    links: &mut [Option<Link>],
    rng: &mut Rng,
) -> String {
    sh.stats.on_submit();
    let key_str = key.to_string();
    let order = sh.ring.route_order(&key_str);
    let owner = order[0];
    let up: Vec<usize> = order.iter().copied().filter(|&i| sh.board.is_up(i)).collect();
    let candidates = if up.is_empty() { order } else { up };
    let mut last_overloaded: Option<(usize, String, u64)> = None;
    for &idx in &candidates {
        if let Some((_, _, retry_after)) = last_overloaded {
            let wait =
                jittered_backoff_ms(retry_after, rng).min(sh.cfg.max_redispatch_wait_ms.max(1));
            std::thread::sleep(ms(wait));
        }
        sh.stats.on_dispatch(idx);
        match forward(sh, links, idx, raw_line) {
            Err(e) => {
                sh.stats.on_io_redispatch(idx);
                sh.board.on_failure(idx, &format!("forward: {e}"));
            }
            Ok(raw) => {
                sh.board.on_success(idx);
                match classify(&raw) {
                    ReplyKind::Ok => {
                        sh.stats.on_ack(idx, idx != owner);
                        return raw;
                    }
                    ReplyKind::Overloaded(retry_ms) => {
                        sh.stats.on_overload_redispatch(idx);
                        last_overloaded = Some((idx, raw, retry_ms));
                    }
                    ReplyKind::Error => {
                        sh.stats.on_relayed_error(idx, idx != owner);
                        return raw;
                    }
                }
            }
        }
    }
    // Every candidate failed.  A terminal overloaded is relayed verbatim
    // (the client's own backoff takes over); otherwise the router answers
    // for itself.  Either way the submit is accounted, never dropped.
    if let Some((idx, raw, _)) = last_overloaded {
        sh.stats.on_relayed_error(idx, idx != owner);
        return raw;
    }
    sh.stats.on_unavailable();
    resp_error(
        "unavailable",
        &format!("no backend reachable for key {key_str} ({} tried)", sh.ids.len()),
    )
    .to_compact()
}

enum FanVerb {
    Stats,
    Drain,
}

/// Ask every backend concurrently; `None` per node that could not answer.
fn collect_fanout(sh: &Shared, verb: &FanVerb) -> Vec<Option<Json>> {
    let addrs: Vec<String> = (0..sh.ids.len()).map(|i| sh.addr_of(i)).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = addrs
            .iter()
            .map(|addr| {
                scope.spawn(move || {
                    let cfg = ClientConfig {
                        connect_timeout: Some(ms(sh.cfg.connect_timeout_ms.max(1))),
                        // Drains block until every accepted job executes.
                        read_timeout: Some(ms(match verb {
                            FanVerb::Stats => sh.cfg.read_timeout_ms.max(1),
                            FanVerb::Drain => sh.cfg.read_timeout_ms.saturating_mul(10).max(1),
                        })),
                    };
                    let mut c = Client::connect_with(addr.as_str(), &cfg).ok()?;
                    match verb {
                        FanVerb::Stats => c.stats().ok(),
                        FanVerb::Drain => c.drain().ok(),
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap_or(None)).collect()
    })
}

fn status_reply(sh: &Shared) -> Json {
    let mut o = Json::obj();
    o.set("ok", true);
    o.set("role", "router");
    o.set("protocol_version", PROTOCOL_VERSION);
    o.set("backends", sh.ids.len() as u64);
    o.set("nodes_up", sh.board.up_count() as u64);
    o.set("draining", sh.stop_accepting.load(Ordering::SeqCst));
    o.set("failovers", sh.stats.view().failovers);
    let mut nodes = Json::obj();
    for (i, h) in sh.board.view().iter().enumerate() {
        let mut node = Json::obj();
        node.set("state", if h.state == HealthState::Up { "up" } else { "down" });
        node.set("addr", sh.addr_of(i));
        node.set("last_probe_us", h.last_probe_us);
        node.set("promoted_standby", sh.promoted[i].load(Ordering::SeqCst));
        nodes.set(&sh.ids[i], node);
    }
    o.set("nodes", nodes);
    o
}

fn dump_reply(sh: &Shared) -> Json {
    let mut o = Json::obj();
    o.set("ok", true);
    o.set("role", "router");
    o.set("router", router_section(&sh.stats.view(), &sh.ids));
    o
}

enum After {
    Continue,
    Close,
}

fn handle_line(
    line: &str,
    sh: &Shared,
    links: &mut [Option<Link>],
    rng: &mut Rng,
) -> (String, After) {
    let req = match Request::parse_line(line) {
        Ok(req) => req,
        Err(e) => {
            sh.stats.on_protocol_error();
            return (resp_error("protocol", &e).to_compact(), After::Continue);
        }
    };
    match req.route_class() {
        RouteClass::Keyed => {
            let Request::Submit { key, .. } = &req else { unreachable!("Keyed is submit-only") };
            (dispatch_submit(sh, line, key, links, rng), After::Continue)
        }
        RouteClass::Local => {
            sh.stats.on_local();
            let j = match req {
                Request::Status => status_reply(sh),
                // Promotion is the prober's decision, made against a
                // standby's control port directly — a client promoting
                // "the cluster" has no single sane target.
                Request::Promote => resp_error(
                    "not_standby",
                    "the router is not a standby; send promote to a standby's control port",
                ),
                _ => dump_reply(sh),
            };
            (j.to_compact(), After::Continue)
        }
        RouteClass::FanOut => {
            sh.stats.on_fanout();
            match req {
                Request::Stats => {
                    let snaps = collect_fanout(sh, &FanVerb::Stats);
                    let mut j =
                        merged_snapshot(&sh.stats.view(), &sh.ids, &sh.board.view(), &snaps, false);
                    j.set("ok", true);
                    (j.to_compact(), After::Continue)
                }
                Request::Metrics => {
                    let snaps = collect_fanout(sh, &FanVerb::Stats);
                    let text =
                        render_prometheus(&sh.stats.view(), &sh.ids, &sh.board.view(), &snaps);
                    let mut o = Json::obj();
                    o.set("ok", true);
                    o.set("metrics", text);
                    (o.to_compact(), After::Continue)
                }
                _ => {
                    // Drain: stop probing/accepting *after* the merged
                    // snapshot is assembled and on the wire.
                    let snaps = collect_fanout(sh, &FanVerb::Drain);
                    let mut j =
                        merged_snapshot(&sh.stats.view(), &sh.ids, &sh.board.view(), &snaps, true);
                    j.set("ok", true);
                    *sh.drain_snaps.lock().expect("drain snapshot slot poisoned") = Some(snaps);
                    (j.to_compact(), After::Close)
                }
            }
        }
    }
}

fn conn_loop(stream: TcpStream, sh: &Shared) {
    sh.stats.on_connection();
    let seq = sh.conn_seq.fetch_add(1, Ordering::SeqCst);
    // Deterministic per-connection jitter stream (the workspace has no
    // OS randomness source by design).
    let mut rng = Rng::new(0x0520_7EA4 ^ (seq.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    let mut links: Vec<Option<Link>> = (0..sh.ids.len()).map(|_| None).collect();
    let mut framer = LineFramer::new(MAX_LINE_BYTES);
    let mut stream = stream;
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        loop {
            let line = match framer.next_line() {
                Ok(Some(line)) => line,
                Ok(None) => break,
                Err(e) => {
                    sh.stats.on_protocol_error();
                    let mut reply = resp_error("protocol", &e).to_compact();
                    reply.push('\n');
                    let _ = stream.write_all(reply.as_bytes());
                    return;
                }
            };
            let (mut reply, after) = handle_line(&line, sh, &mut links, &mut rng);
            reply.push('\n');
            // The drain reply must be on the wire *before* the accept
            // loop is released: `run_router` may return (and the process
            // exit) the moment it pops.
            let wrote = stream.write_all(reply.as_bytes()).and_then(|()| stream.flush());
            if matches!(after, After::Close) {
                sh.stop_accepting.store(true, Ordering::SeqCst);
                // Self-connect to pop the accept loop out of `incoming()`.
                let _ = TcpStream::connect(sh.addr);
                return;
            }
            if wrote.is_err() {
                return;
            }
        }
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => return,
            Ok(n) => framer.push(&buf[..n]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_specs_parse_with_ids_and_shorthand() {
        let bs = parse_backends("n1=127.0.0.1:7070, n2=127.0.0.1:7071").unwrap();
        assert_eq!(bs.len(), 2);
        assert_eq!(bs[0], Backend { id: "n1".into(), addr: "127.0.0.1:7070".into() });
        assert_eq!(bs[1].id, "n2");
        // Bare address shorthand: the address doubles as the id.
        let bs = parse_backends("127.0.0.1:7070").unwrap();
        assert_eq!(bs[0].id, "127.0.0.1:7070");
        assert_eq!(bs[0].addr, "127.0.0.1:7070");
    }

    #[test]
    fn backend_specs_reject_degenerate_forms() {
        assert!(parse_backends("").is_err());
        assert!(parse_backends(",,").is_err());
        assert!(parse_backends("n1=").is_err());
        assert!(parse_backends("=addr").is_err());
        let e = parse_backends("n1=a,n1=b").unwrap_err();
        assert!(e.contains("duplicate"), "{e}");
    }

    #[test]
    fn reply_classification_matches_the_protocol_shapes() {
        assert!(matches!(classify(r#"{"ok":true,"outputs":[]}"#), ReplyKind::Ok));
        assert!(matches!(
            classify(r#"{"ok":false,"error":"overloaded","retry_after_ms":7}"#),
            ReplyKind::Overloaded(7)
        ));
        assert!(matches!(
            classify(r#"{"ok":false,"error":"draining","detail":"no new work"}"#),
            ReplyKind::Error
        ));
        assert!(matches!(classify("not json"), ReplyKind::Error));
    }
}
