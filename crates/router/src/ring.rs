//! The consistent-hash ring: which backend owns which coalescing key.
//!
//! Every submit is placed by its coalescing key `(algo, n, layout)` — the
//! same string the server groups batches by — so *all* traffic for a key
//! lands on one node.  That affinity is the whole point of the tier: the
//! paper's speedup comes from one compiled schedule amortized over `p`
//! coalesced instances, and spraying a key across nodes would fragment
//! its batches and recompile its schedule everywhere.
//!
//! Each node is planted on the ring at `vnodes` pseudo-random points
//! (virtual nodes); a key belongs to the first node point at or after its
//! own hash, wrapping around.  Virtual nodes smooth the load split and
//! bound disruption: when a node joins or leaves, only the keys falling
//! into its arcs move — an expected `1/N` (at most ~`2/N` with the vnode
//! counts used here) of the key space, instead of the near-total reshuffle
//! a modulo placement would cause.
//!
//! Hashing is FNV-1a finished with the SplitMix64 avalanche, chosen for
//! being dependency-free, byte-stable across platforms, and well mixed on
//! the short, similar strings job keys are made of.  Determinism matters:
//! a router restart, a test, and a CI script must all compute the same
//! placement from the same node names.

/// FNV-1a over `bytes`, finished with the SplitMix64 avalanche rounds.
///
/// Plain FNV-1a clusters badly on short strings differing in one byte
/// (exactly what `fft/64/col` vs `fft/64/row` are); the finisher spreads
/// those over the full 64-bit ring.
#[must_use]
pub fn stable_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // SplitMix64 finisher.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// A consistent-hash ring over named nodes with virtual nodes.
///
/// Placement depends only on the node *names* and `vnodes` — never on
/// addresses, construction order, or anything ephemeral — so two rings
/// built from the same names agree everywhere.
#[derive(Debug, Clone)]
pub struct HashRing {
    names: Vec<String>,
    /// `(ring point, index into names)`, sorted by point.
    points: Vec<(u64, usize)>,
    vnodes: usize,
}

impl HashRing {
    /// Plant each of `names` at `vnodes` points.  Duplicate names are
    /// rejected — they would silently double one node's share.
    ///
    /// # Errors
    ///
    /// Empty node list, zero `vnodes`, or duplicate names.
    pub fn new(names: &[String], vnodes: usize) -> Result<HashRing, String> {
        if names.is_empty() {
            return Err("hash ring needs at least one node".into());
        }
        if vnodes == 0 {
            return Err("hash ring needs at least one virtual node per node".into());
        }
        for (i, n) in names.iter().enumerate() {
            if names[..i].contains(n) {
                return Err(format!("duplicate node name '{n}' on the ring"));
            }
        }
        let mut points = Vec::with_capacity(names.len() * vnodes);
        for (idx, name) in names.iter().enumerate() {
            for v in 0..vnodes {
                points.push((stable_hash(format!("{name}#{v}").as_bytes()), idx));
            }
        }
        // Ties (vanishingly rare) break by node index, deterministically.
        points.sort_unstable();
        Ok(HashRing { names: names.to_vec(), points, vnodes })
    }

    /// The node names, in construction order (`node_of` indexes into this).
    #[must_use]
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of nodes on the ring.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Always false: construction rejects empty rings.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Virtual nodes per node.
    #[must_use]
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Index of the first ring point at or after `point`, wrapping.
    fn successor_point(&self, point: u64) -> usize {
        self.points.partition_point(|&(p, _)| p < point) % self.points.len()
    }

    /// The node that owns `key`: the first node point clockwise from the
    /// key's hash.
    #[must_use]
    pub fn node_of(&self, key: &str) -> usize {
        self.points[self.successor_point(stable_hash(key.as_bytes()))].1
    }

    /// All nodes in the order a dispatcher should try them for `key`:
    /// the owner first, then each *distinct* successor clockwise.  Every
    /// node appears exactly once, so a bounded retry loop over this order
    /// visits the cluster at most once.
    #[must_use]
    pub fn route_order(&self, key: &str) -> Vec<usize> {
        let start = self.successor_point(stable_hash(key.as_bytes()));
        let mut order = Vec::with_capacity(self.names.len());
        for i in 0..self.points.len() {
            let idx = self.points[(start + i) % self.points.len()].1;
            if !order.contains(&idx) {
                order.push(idx);
                if order.len() == self.names.len() {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    /// A key population shaped like real coalescing keys.
    fn keys() -> Vec<String> {
        let mut out = Vec::new();
        for algo in ["prefix-sums", "fft", "bitonic", "fir", "xtea", "horner", "opt"] {
            for size in [16, 32, 64, 128, 256] {
                for layout in ["col", "row"] {
                    out.push(format!("{algo}/{size}/{layout}"));
                }
            }
        }
        out
    }

    #[test]
    fn construction_rejects_degenerate_rings() {
        assert!(HashRing::new(&[], 64).is_err());
        assert!(HashRing::new(&names(&["a"]), 0).is_err());
        let err = HashRing::new(&names(&["a", "b", "a"]), 64).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
        assert!(HashRing::new(&names(&["a"]), 1).is_ok());
    }

    #[test]
    fn placement_is_deterministic_and_name_based() {
        let a = HashRing::new(&names(&["n1", "n2", "n3"]), 64).unwrap();
        let b = HashRing::new(&names(&["n1", "n2", "n3"]), 64).unwrap();
        for k in keys() {
            assert_eq!(a.node_of(&k), b.node_of(&k), "{k}");
            assert_eq!(a.route_order(&k), b.route_order(&k), "{k}");
        }
    }

    #[test]
    fn every_node_gets_a_nontrivial_share() {
        let ring = HashRing::new(&names(&["n1", "n2", "n3"]), 64).unwrap();
        let mut counts = [0usize; 3];
        let ks = keys();
        for k in &ks {
            counts[ring.node_of(k)] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!(
                *c * 10 >= ks.len(),
                "node {i} owns {c} of {} keys — virtual nodes failed to spread load: {counts:?}",
                ks.len()
            );
        }
    }

    #[test]
    fn route_order_starts_at_the_owner_and_covers_every_node_once() {
        let ring = HashRing::new(&names(&["n1", "n2", "n3", "n4"]), 64).unwrap();
        for k in keys() {
            let order = ring.route_order(&k);
            assert_eq!(order[0], ring.node_of(&k), "{k}");
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "{k}: {order:?}");
        }
    }

    #[test]
    fn node_join_and_leave_move_a_bounded_key_fraction() {
        let ks = keys();
        for n in [2usize, 3, 4, 8] {
            let base: Vec<String> = (0..n).map(|i| format!("node-{i}")).collect();
            let mut grown = base.clone();
            grown.push("node-new".into());
            let before = HashRing::new(&base, 64).unwrap();
            let after = HashRing::new(&grown, 64).unwrap();
            let moved = ks
                .iter()
                .filter(|k| before.names()[before.node_of(k)] != after.names()[after.node_of(k)])
                .count();
            let bound = (2.0 / n as f64 * ks.len() as f64).ceil() as usize;
            assert!(
                moved <= bound,
                "adding a node to {n} moved {moved}/{} keys (bound 2/N = {bound})",
                ks.len()
            );
            assert!(moved > 0, "adding a node to {n} moved nothing — the ring is inert");
            // Leave = the exact inverse: only keys the newcomer took move
            // back, everything else stays put.
            for k in &ks {
                let kept = before.names()[before.node_of(k)].clone();
                let now = after.names()[after.node_of(k)].clone();
                if now != "node-new" {
                    assert_eq!(kept, now, "{k} moved between survivors");
                }
            }
        }
    }

    #[test]
    fn stable_hash_spreads_near_identical_keys() {
        // Sibling keys (one flipped byte) must not cluster: check the top
        // bits differ across the sibling set often enough to be useful.
        let hs: Vec<u64> = keys().iter().map(|k| stable_hash(k.as_bytes())).collect();
        let mut sorted = hs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), hs.len(), "collision among {} keys", hs.len());
        let top_bytes: std::collections::HashSet<u8> = hs.iter().map(|h| (h >> 56) as u8).collect();
        assert!(top_bytes.len() > 16, "top bytes barely vary: {}", top_bytes.len());
    }
}
