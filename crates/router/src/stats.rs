//! The router's ledger, the merged cluster snapshot, and Prometheus.
//!
//! The ledger obeys one conservation law, checked the same way bulkd
//! checks its own: every submit line a client sends is accounted for
//! exactly once —
//!
//! ```text
//! submits == acked + relayed_errors + unavailable
//! ```
//!
//! `acked` relayed a backend's success, `relayed_errors` relayed a
//! backend's rejection verbatim (including a terminal `overloaded` after
//! redispatch ran out of nodes), and `unavailable` is the router's own
//! error when no backend could be reached at all.  Redispatch attempts
//! (`overload_redispatch`, `io_redispatch`) and `rerouted` (submits whose
//! *answering* node was not the key's owner) are observability on top of
//! that law, not part of it.

use crate::health::{HealthState, NodeHealth};
use bulkd::PROTOCOL_VERSION;
use obs::{Json, PromText, RunReport};
use std::sync::Mutex;

/// Per-backend dispatch counters (indexed like the ring's nodes).
#[derive(Debug, Clone, Copy, Default)]
pub struct BackendCounters {
    /// Submit dispatch attempts sent to this backend.
    pub dispatches: u64,
    /// Successful submit replies relayed from this backend.
    pub acked: u64,
    /// Rejection replies relayed from this backend.
    pub errors: u64,
    /// Overloaded replies that triggered a redispatch away from it.
    pub overloaded: u64,
    /// Connect/read/write failures talking to it.
    pub io_failures: u64,
}

/// A point-in-time copy of every router counter.
#[derive(Debug, Clone, Default)]
pub struct LedgerView {
    /// Submit lines received from clients.
    pub submits: u64,
    /// Submits answered with a backend's success reply.
    pub acked: u64,
    /// Submits answered with a backend's rejection, relayed verbatim.
    pub relayed_errors: u64,
    /// Submits answered with the router's own `unavailable` error.
    pub unavailable: u64,
    /// Submits whose answering node was not the key's ring owner.
    pub rerouted: u64,
    /// Redispatches triggered by a backend `overloaded` reply.
    pub overload_redispatch: u64,
    /// Redispatches triggered by a backend connect/IO failure.
    pub io_redispatch: u64,
    /// Fan-out requests served (stats, metrics, drain).
    pub fanouts: u64,
    /// Locally answered requests (status, dump).
    pub local: u64,
    /// Malformed client lines answered with a protocol error.
    pub protocol_errors: u64,
    /// Client connections accepted.
    pub connections: u64,
    /// Standby promotions driven by the prober (backend id repointed).
    pub failovers: u64,
    /// Per-backend counters, indexed like the ring.
    pub backends: Vec<BackendCounters>,
}

impl LedgerView {
    /// Verify the conservation law (see the module docs).
    ///
    /// # Errors
    ///
    /// The violated equation, with both sides' values.
    pub fn check_balanced(&self) -> Result<(), String> {
        let answered = self.acked + self.relayed_errors + self.unavailable;
        if self.submits != answered {
            return Err(format!(
                "submits {} != acked {} + relayed_errors {} + unavailable {}",
                self.submits, self.acked, self.relayed_errors, self.unavailable
            ));
        }
        Ok(())
    }
}

/// Thread-shared router counters.
#[derive(Debug)]
pub struct RouterStats {
    inner: Mutex<LedgerView>,
}

impl RouterStats {
    /// Zeroed counters for a cluster of `n` backends.
    #[must_use]
    pub fn new(n: usize) -> RouterStats {
        RouterStats {
            inner: Mutex::new(LedgerView {
                backends: vec![BackendCounters::default(); n],
                ..LedgerView::default()
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LedgerView> {
        self.inner.lock().expect("router stats poisoned")
    }

    /// A client connection was accepted.
    pub fn on_connection(&self) {
        self.lock().connections += 1;
    }

    /// The prober promoted a standby and repointed its backend id.
    pub fn on_failover(&self) {
        self.lock().failovers += 1;
    }

    /// A submit line arrived from a client.
    pub fn on_submit(&self) {
        self.lock().submits += 1;
    }

    /// A dispatch attempt is being sent to backend `idx`.
    pub fn on_dispatch(&self, idx: usize) {
        self.lock().backends[idx].dispatches += 1;
    }

    /// Backend `idx` answered the submit successfully.  `rerouted` marks
    /// the answering node as not being the key's ring owner.
    pub fn on_ack(&self, idx: usize, rerouted: bool) {
        let mut g = self.lock();
        g.acked += 1;
        g.backends[idx].acked += 1;
        if rerouted {
            g.rerouted += 1;
        }
    }

    /// Backend `idx`'s rejection was relayed to the client verbatim.
    pub fn on_relayed_error(&self, idx: usize, rerouted: bool) {
        let mut g = self.lock();
        g.relayed_errors += 1;
        g.backends[idx].errors += 1;
        if rerouted {
            g.rerouted += 1;
        }
    }

    /// No backend could take the submit; the router answered for itself.
    pub fn on_unavailable(&self) {
        self.lock().unavailable += 1;
    }

    /// Backend `idx` said `overloaded`; the submit moves to the successor.
    pub fn on_overload_redispatch(&self, idx: usize) {
        let mut g = self.lock();
        g.overload_redispatch += 1;
        g.backends[idx].overloaded += 1;
    }

    /// Talking to backend `idx` failed; the submit moves to the successor.
    pub fn on_io_redispatch(&self, idx: usize) {
        let mut g = self.lock();
        g.io_redispatch += 1;
        g.backends[idx].io_failures += 1;
    }

    /// A fan-out verb (stats/metrics/drain) was served.
    pub fn on_fanout(&self) {
        self.lock().fanouts += 1;
    }

    /// A local verb (status/dump) was served.
    pub fn on_local(&self) {
        self.lock().local += 1;
    }

    /// A malformed client line was answered with a protocol error.
    pub fn on_protocol_error(&self) {
        self.lock().protocol_errors += 1;
    }

    /// A copy of every counter.
    #[must_use]
    pub fn view(&self) -> LedgerView {
        self.lock().clone()
    }
}

fn snap_u64(snap: &Json, path: &str) -> u64 {
    snap.path(path).and_then(Json::as_i64).unwrap_or(0).max(0) as u64
}

/// Totals summed across the reachable backends' stats snapshots — the
/// cluster-wide view of the paper's amortization story.
#[derive(Debug, Clone, Default)]
pub struct ClusterTotals {
    /// Sum of backend `admission.submitted_jobs`.
    pub submitted_jobs: u64,
    /// Sum of backend `admission.accepted_jobs`.
    pub accepted_jobs: u64,
    /// Sum of backend `admission.rejected_jobs`.
    pub rejected_jobs: u64,
    /// Sum of backend `execution.completed_jobs`.
    pub completed_jobs: u64,
    /// Sum of backend `execution.failed_jobs`.
    pub failed_jobs: u64,
    /// Sum of backend `execution.completed_instances`.
    pub completed_instances: u64,
    /// Sum of backend `execution.batches`.
    pub batches: u64,
    /// Sum of backend `schedule_cache.hits`.
    pub cache_hits: u64,
    /// Sum of backend `schedule_cache.compiles`.
    pub cache_compiles: u64,
    /// Distinct coalescing keys seen across all backends' `per_key`.
    pub distinct_keys: u64,
    /// Backends whose snapshot was collected.
    pub reachable: u64,
    /// Backends that could not be reached for a snapshot.
    pub unreachable: u64,
}

impl ClusterTotals {
    /// Sum `snapshots` (one optional bulkd stats snapshot per backend).
    #[must_use]
    pub fn from_snapshots(snapshots: &[Option<Json>]) -> ClusterTotals {
        let mut t = ClusterTotals::default();
        let mut keys = std::collections::BTreeSet::new();
        for snap in snapshots {
            let Some(snap) = snap else {
                t.unreachable += 1;
                continue;
            };
            t.reachable += 1;
            t.submitted_jobs += snap_u64(snap, "admission.submitted_jobs");
            t.accepted_jobs += snap_u64(snap, "admission.accepted_jobs");
            t.rejected_jobs += snap_u64(snap, "admission.rejected_jobs");
            t.completed_jobs += snap_u64(snap, "execution.completed_jobs");
            t.failed_jobs += snap_u64(snap, "execution.failed_jobs");
            t.completed_instances += snap_u64(snap, "execution.completed_instances");
            t.batches += snap_u64(snap, "execution.batches");
            t.cache_hits += snap_u64(snap, "schedule_cache.hits");
            t.cache_compiles += snap_u64(snap, "schedule_cache.compiles");
            if let Some(pk) = snap.get("per_key").and_then(Json::as_obj) {
                for (k, _) in pk {
                    keys.insert(k.clone());
                }
            }
        }
        t.distinct_keys = keys.len() as u64;
        t
    }

    /// Cluster coalesce factor: jobs per executed batch, over all nodes.
    #[must_use]
    pub fn coalesce_factor(&self) -> Option<f64> {
        if self.batches == 0 {
            None
        } else {
            Some((self.completed_jobs + self.failed_jobs) as f64 / self.batches as f64)
        }
    }

    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("submitted_jobs", self.submitted_jobs);
        o.set("accepted_jobs", self.accepted_jobs);
        o.set("rejected_jobs", self.rejected_jobs);
        o.set("completed_jobs", self.completed_jobs);
        o.set("failed_jobs", self.failed_jobs);
        o.set("completed_instances", self.completed_instances);
        o.set("batches", self.batches);
        o.set("coalesce_factor", self.coalesce_factor().map_or(Json::Null, Json::from));
        let mut sc = Json::obj();
        sc.set("hits", self.cache_hits);
        sc.set("compiles", self.cache_compiles);
        o.set("schedule_cache", sc);
        o.set("distinct_keys", self.distinct_keys);
        o.set("reachable_backends", self.reachable);
        o.set("unreachable_backends", self.unreachable);
        o
    }
}

fn health_json(health: &[NodeHealth], ids: &[String]) -> Json {
    let mut o = Json::obj();
    for (i, h) in health.iter().enumerate() {
        let mut e = Json::obj();
        e.set("state", if h.state == HealthState::Up { "up" } else { "down" });
        e.set("successes", h.successes);
        e.set("failures", h.failures);
        e.set("marked_down", h.marked_down);
        e.set("marked_up", h.marked_up);
        e.set("consecutive_failures", u64::from(h.consecutive_failures));
        e.set("last_error", h.last_error.as_str());
        o.set(&ids[i], e);
    }
    o
}

/// The router's own ledger as a JSON section (also embedded in the
/// merged snapshot under `"router"`).
#[must_use]
pub fn router_section(view: &LedgerView, ids: &[String]) -> Json {
    let mut r = Json::obj();
    r.set("submits", view.submits);
    r.set("acked", view.acked);
    r.set("relayed_errors", view.relayed_errors);
    r.set("unavailable", view.unavailable);
    r.set("rerouted", view.rerouted);
    r.set("overload_redispatch", view.overload_redispatch);
    r.set("io_redispatch", view.io_redispatch);
    r.set("fanouts", view.fanouts);
    r.set("local", view.local);
    r.set("protocol_errors", view.protocol_errors);
    r.set("connections", view.connections);
    r.set("failovers", view.failovers);
    let mut per = Json::obj();
    for (i, b) in view.backends.iter().enumerate() {
        let mut e = Json::obj();
        e.set("dispatches", b.dispatches);
        e.set("acked", b.acked);
        e.set("errors", b.errors);
        e.set("overloaded", b.overloaded);
        e.set("io_failures", b.io_failures);
        per.set(&ids[i], e);
    }
    r.set("per_backend", per);
    r
}

/// The merged cluster snapshot served for `stats` (and returned from a
/// drain): the router's own ledger, each backend's snapshot keyed by its
/// stable id (`{"unreachable": true}` when a node could not answer),
/// health, and cluster totals.
#[must_use]
pub fn merged_snapshot(
    view: &LedgerView,
    ids: &[String],
    health: &[NodeHealth],
    snapshots: &[Option<Json>],
    drained: bool,
) -> Json {
    let mut report = RunReport::new("bulk-router");
    report.set("protocol_version", PROTOCOL_VERSION);
    report.set("router", router_section(view, ids));
    report.set("health", health_json(health, ids));
    let mut nodes_up = 0u64;
    for h in health {
        if h.state == HealthState::Up {
            nodes_up += 1;
        }
    }
    report.set("nodes_up", nodes_up);
    report.set("nodes_down", health.len() as u64 - nodes_up);

    let mut backends = Json::obj();
    for (i, snap) in snapshots.iter().enumerate() {
        match snap {
            Some(s) => {
                backends.set(&ids[i], s.clone());
            }
            None => {
                let mut e = Json::obj();
                e.set("unreachable", true);
                backends.set(&ids[i], e);
            }
        }
    }
    report.set("backends", backends);
    report.set("cluster", ClusterTotals::from_snapshots(snapshots).to_json());
    if drained {
        report.set("drained", true);
    }
    report.json().clone()
}

/// The merged Prometheus exposition served for `metrics`: the router's
/// counters, per-backend health and dispatch families labelled by
/// `node`, and cluster families aggregated from the backends' stats
/// snapshots (also labelled by `node`, plus unlabelled cluster totals).
#[must_use]
pub fn render_prometheus(
    view: &LedgerView,
    ids: &[String],
    health: &[NodeHealth],
    snapshots: &[Option<Json>],
) -> String {
    let mut p = PromText::new();
    p.counter("router_submits_total", "Submit lines received from clients.", view.submits);
    p.counter("router_acked_total", "Submits answered with a backend success.", view.acked);
    p.counter(
        "router_relayed_errors_total",
        "Submits answered with a relayed backend rejection.",
        view.relayed_errors,
    );
    p.counter(
        "router_unavailable_total",
        "Submits answered unavailable: no backend reachable.",
        view.unavailable,
    );
    p.counter(
        "router_rerouted_total",
        "Submits answered by a node other than the key's ring owner.",
        view.rerouted,
    );
    p.counter_vec(
        "router_redispatch_total",
        "Submit redispatches to a successor node, by trigger.",
        "reason",
        &[
            ("overloaded".to_string(), view.overload_redispatch),
            ("io".to_string(), view.io_redispatch),
        ],
    );
    p.counter("router_fanouts_total", "Fan-out requests served.", view.fanouts);
    p.counter(
        "router_protocol_errors_total",
        "Malformed client lines rejected.",
        view.protocol_errors,
    );
    p.counter("router_connections_total", "Client connections accepted.", view.connections);
    p.counter("router_failovers_total", "Standby promotions driven by the prober.", view.failovers);

    let series = |f: &dyn Fn(&BackendCounters) -> u64| -> Vec<(String, u64)> {
        view.backends.iter().enumerate().map(|(i, b)| (ids[i].clone(), f(b))).collect()
    };
    p.gauge_vec(
        "router_backend_up",
        "Whether each backend is currently routable (1 = up).",
        "node",
        &health
            .iter()
            .enumerate()
            .map(|(i, h)| (ids[i].clone(), f64::from(u8::from(h.state == HealthState::Up))))
            .collect::<Vec<_>>(),
    );
    p.counter_vec(
        "router_backend_dispatches_total",
        "Submit dispatch attempts per backend.",
        "node",
        &series(&|b| b.dispatches),
    );
    p.counter_vec(
        "router_backend_acked_total",
        "Relayed successes per backend.",
        "node",
        &series(&|b| b.acked),
    );
    p.counter_vec(
        "router_backend_io_failures_total",
        "Connect/IO failures per backend.",
        "node",
        &series(&|b| b.io_failures),
    );
    p.counter_vec(
        "router_backend_overloaded_total",
        "Overloaded replies per backend.",
        "node",
        &series(&|b| b.overloaded),
    );
    p.gauge_vec(
        "router_backend_last_probe_us",
        "Prober-clock stamp of each backend's last probe or dispatch (0 = never).",
        "node",
        &health
            .iter()
            .enumerate()
            .map(|(i, h)| (ids[i].clone(), h.last_probe_us as f64))
            .collect::<Vec<_>>(),
    );

    // Per-node families pulled from each reachable backend's snapshot.
    let pull = |path: &str| -> Vec<(String, u64)> {
        snapshots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|s| (ids[i].clone(), snap_u64(s, path))))
            .collect()
    };
    p.counter_vec(
        "bulkd_node_completed_jobs_total",
        "Jobs completed per node.",
        "node",
        &pull("execution.completed_jobs"),
    );
    p.counter_vec(
        "bulkd_node_batches_total",
        "Batches executed per node.",
        "node",
        &pull("execution.batches"),
    );
    p.counter_vec(
        "bulkd_node_completed_instances_total",
        "Instances completed per node.",
        "node",
        &pull("execution.completed_instances"),
    );
    p.counter_vec(
        "bulkd_node_schedule_compiles_total",
        "Schedules compiled per node.",
        "node",
        &pull("schedule_cache.compiles"),
    );
    // Replication lag, merged per node: a primary with a live standby
    // reports its follower's shortfall; solo nodes report 0.
    p.gauge_vec(
        "bulkd_node_repl_lag_records",
        "Durable records the node's replication follower still trails by.",
        "node",
        &pull("repl.lag_records").into_iter().map(|(id, v)| (id, v as f64)).collect::<Vec<_>>(),
    );
    p.gauge_vec(
        "bulkd_node_repl_lag_us",
        "Microseconds since the node's follower was last fully caught up.",
        "node",
        &pull("repl.lag_us").into_iter().map(|(id, v)| (id, v as f64)).collect::<Vec<_>>(),
    );
    p.gauge_vec(
        "bulkd_node_coalesce_factor",
        "Jobs per executed batch, per node.",
        "node",
        &snapshots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                s.as_ref().map(|s| {
                    (
                        ids[i].clone(),
                        s.path("coalescing.coalesce_factor").and_then(Json::as_f64).unwrap_or(0.0),
                    )
                })
            })
            .collect::<Vec<_>>(),
    );

    let totals = ClusterTotals::from_snapshots(snapshots);
    p.counter(
        "bulkd_cluster_completed_jobs_total",
        "Jobs completed across the cluster.",
        totals.completed_jobs,
    );
    p.counter(
        "bulkd_cluster_batches_total",
        "Batches executed across the cluster.",
        totals.batches,
    );
    p.counter(
        "bulkd_cluster_schedule_compiles_total",
        "Schedules compiled across the cluster.",
        totals.cache_compiles,
    );
    p.gauge(
        "bulkd_cluster_coalesce_factor",
        "Jobs per executed batch across the cluster.",
        totals.coalesce_factor().unwrap_or(0.0),
    );
    p.gauge(
        "bulkd_cluster_distinct_keys",
        "Distinct coalescing keys seen across the cluster.",
        totals.distinct_keys as f64,
    );
    p.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::{HealthBoard, HealthPolicy};

    fn fake_backend_snapshot(completed: u64, batches: u64, compiles: u64, keys: &[&str]) -> Json {
        let mut j = Json::obj();
        let mut adm = Json::obj();
        adm.set("submitted_jobs", completed);
        adm.set("accepted_jobs", completed);
        adm.set("rejected_jobs", 0u64);
        j.set("admission", adm);
        let mut ex = Json::obj();
        ex.set("completed_jobs", completed);
        ex.set("failed_jobs", 0u64);
        ex.set("completed_instances", completed * 4);
        ex.set("batches", batches);
        j.set("execution", ex);
        let mut co = Json::obj();
        co.set("coalesce_factor", completed as f64 / batches as f64);
        j.set("coalescing", co);
        let mut sc = Json::obj();
        sc.set("hits", completed - compiles);
        sc.set("compiles", compiles);
        j.set("schedule_cache", sc);
        let mut pk = Json::obj();
        for k in keys {
            pk.set(k, Json::obj());
        }
        j.set("per_key", pk);
        j
    }

    #[test]
    fn the_ledger_balances_and_catches_imbalance() {
        let s = RouterStats::new(2);
        s.on_submit();
        s.on_dispatch(0);
        s.on_ack(0, false);
        s.on_submit();
        s.on_dispatch(1);
        s.on_io_redispatch(1);
        s.on_dispatch(0);
        s.on_ack(0, true);
        s.on_submit();
        s.on_unavailable();
        let v = s.view();
        v.check_balanced().unwrap();
        assert_eq!(v.rerouted, 1);
        assert_eq!(v.io_redispatch, 1);
        assert_eq!(v.backends[0].acked, 2);
        assert_eq!(v.backends[1].io_failures, 1);

        s.on_submit(); // received but never answered: imbalance
        let err = s.view().check_balanced().unwrap_err();
        assert!(err.contains("submits 4"), "{err}");
    }

    #[test]
    fn merged_snapshot_totals_and_marks_unreachable_nodes() {
        let ids = vec!["n1".to_string(), "n2".to_string(), "n3".to_string()];
        let board = HealthBoard::new(3, HealthPolicy { down_after: 1, up_after: 1 });
        board.on_failure(2, "connect: refused");
        let snaps = vec![
            Some(fake_backend_snapshot(60, 10, 3, &["fft/64/col", "fir/32/row"])),
            Some(fake_backend_snapshot(40, 10, 2, &["xtea/16/col", "fft/64/col"])),
            None,
        ];
        let stats = RouterStats::new(3);
        let j = merged_snapshot(&stats.view(), &ids, &board.view(), &snaps, true);
        assert_eq!(j.path("tool").and_then(Json::as_str), Some("bulk-router"));
        assert_eq!(j.path("cluster.completed_jobs").and_then(Json::as_i64), Some(100));
        assert_eq!(j.path("cluster.batches").and_then(Json::as_i64), Some(20));
        assert_eq!(j.path("cluster.schedule_cache.compiles").and_then(Json::as_i64), Some(5));
        // fft/64/col appears on two nodes but counts once.
        assert_eq!(j.path("cluster.distinct_keys").and_then(Json::as_i64), Some(3));
        assert_eq!(j.path("cluster.coalesce_factor").and_then(Json::as_f64), Some(5.0));
        assert_eq!(j.path("cluster.unreachable_backends").and_then(Json::as_i64), Some(1));
        assert_eq!(j.path("nodes_up").and_then(Json::as_i64), Some(2));
        assert_eq!(j.path("nodes_down").and_then(Json::as_i64), Some(1));
        assert_eq!(j.path("backends.n3.unreachable"), Some(&Json::Bool(true)));
        assert!(j.path("backends.n1.execution.completed_jobs").is_some());
        assert_eq!(j.path("health.n3.state").and_then(Json::as_str), Some("down"));
        assert_eq!(j.path("drained"), Some(&Json::Bool(true)));
    }

    #[test]
    fn prometheus_view_labels_backends_by_node() {
        let ids = vec!["alpha".to_string(), "beta".to_string()];
        let board = HealthBoard::new(2, HealthPolicy { down_after: 1, up_after: 1 });
        board.on_failure(1, "down");
        let stats = RouterStats::new(2);
        stats.on_submit();
        stats.on_dispatch(0);
        stats.on_ack(0, false);
        let snaps = vec![Some(fake_backend_snapshot(8, 2, 1, &["fft/8/row"])), None];
        let text = render_prometheus(&stats.view(), &ids, &board.view(), &snaps);
        assert!(text.contains("router_submits_total 1\n"), "{text}");
        assert!(text.contains("router_backend_up{node=\"alpha\"} 1\n"), "{text}");
        assert!(text.contains("router_backend_up{node=\"beta\"} 0\n"), "{text}");
        assert!(text.contains("router_backend_acked_total{node=\"alpha\"} 1\n"), "{text}");
        assert!(text.contains("bulkd_node_completed_jobs_total{node=\"alpha\"} 8\n"), "{text}");
        assert!(text.contains("bulkd_cluster_completed_jobs_total 8\n"), "{text}");
        assert!(text.contains("bulkd_cluster_coalesce_factor 4\n"), "{text}");
        assert!(text.contains("router_redispatch_total{reason=\"overloaded\"} 0\n"), "{text}");
        // The unreachable node contributes no bulkd_node series.
        assert!(!text.contains("bulkd_node_completed_jobs_total{node=\"beta\"}"), "{text}");
    }
}
