//! # sim — deterministic simulation testing for `bulkd`
//!
//! FoundationDB-style schedule exploration for the batch-serving daemon:
//! the *real* [`bulkd::CoalescingQueue`], the real crash-recovery
//! [`bulkd::journal::replay`] logic, the real [`bulkd::ServerStats`]
//! accounting, and the real [`bulkd::LineFramer`] protocol framing run
//! single-threaded on a [`bulkd::VirtualClock`], with a seeded
//! [`obs::Rng`] deciding which runnable actor (client or worker) steps
//! next.  Every run is a pure function of its seed:
//!
//! - every nondeterminism decision is recorded to a compact
//!   [`trace::Trace`] that replays bit-identically;
//! - each client owns a byte-stream-modelled *connection*: its request
//!   lines cross to the server in scheduler-chosen chunks (one-byte
//!   dribble, partial lines, several lines coalesced), driving the
//!   daemon's own `LineFramer` + `Request::parse_line` path, and the
//!   connection can drop mid-submit or mid-reply (`--conn-faults`);
//! - the WAL is modelled at record granularity with an explicit durable
//!   prefix, so a crash can be injected after *every* append with *every*
//!   legal surviving cut (synced prefix ≤ cut ≤ appended length) —
//!   including between a group-commit append and its fsync;
//! - the WAL's fsync can *fail* (`--fsync-errors`): the journal must
//!   fail-stop — no job acked after a failed fsync, in-flight waiters
//!   get errors not hangs, the durable prefix never regresses;
//! - recovery runs the daemon's own `replay` over the survivors and a
//!   "second life" re-executes what it requeues, checking the
//!   exactly-once contract: an acknowledged job is never re-executed.
//!
//! A failure carries its reproducer — the seed (plus crash point, fault
//! flags) that deterministically replays it — in the error message.
//!
//! The workload streams (instance counts, input words, probe choices,
//! think times) are derived from `(seed, client)` independently of the
//! schedule stream, so the *same* work is offered under every
//! interleaving a seed range explores.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod trace;

use bulkd::clock::{Clock, Scheduler, SimScheduler, VirtualClock};
use bulkd::journal::{complete_payload, submit_payload, REC_COMPLETE, REC_SUBMIT};
use bulkd::protocol::{self, resp_error, resp_outputs, resp_overloaded};
use bulkd::queue::{
    CoalescingQueue, Job, QueueConfig, StageBreakdown, StageStamps, SubmitError, TryNext,
};
use bulkd::{JobKey, LineFramer, Request, ServerStats, PROTOCOL_VERSION};
use obs::{Json, Ring, Rng};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::{mpsc, Arc};
use std::time::Duration;
use trace::{Actor, Decision, Trace};
use wal::record::Record;

/// Tunables of one simulated world.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The seed: the run is a pure function of it (given the same config).
    pub seed: u64,
    /// Client actors, each submitting [`SimConfig::jobs_per_client`] jobs.
    pub clients: usize,
    /// Worker actors consuming coalesced batches.
    pub workers: usize,
    /// Jobs each client submits before finishing.
    pub jobs_per_client: usize,
    /// Queue size-flush trigger (instances).
    pub max_batch: usize,
    /// Queue admission bound (instances) — small enough that overload
    /// backoff paths get exercised.
    pub max_queue: usize,
    /// Queue deadline-flush trigger, in virtual microseconds.
    pub flush_after_us: u64,
    /// Inject connection faults: partial/coalesced/dribbled delivery of
    /// request bytes, status probes racing submits, and disconnects
    /// mid-submit or mid-reply.  Off, every send delivers in one piece.
    pub conn_faults: bool,
}

impl SimConfig {
    /// The default small world for `seed`: 3 clients × 2 workers × 4 jobs.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            clients: 3,
            workers: 2,
            jobs_per_client: 4,
            max_batch: 4,
            max_queue: 8,
            flush_after_us: 2_000,
            conn_faults: false,
        }
    }
}

/// A crash injection point: stop the world immediately after WAL append
/// number `after_append` (1-based), with the first `cut` records
/// surviving.  `cut` must lie between the durable prefix at that moment
/// and the appended length — fsynced records cannot be lost, unsynced
/// ones may or may not survive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Crash right after this append (1-based count of appends).
    pub after_append: u64,
    /// Records surviving the crash (a prefix length).
    pub cut: u64,
}

/// What recovering from an injected crash yielded (all invariants held).
#[derive(Debug, Clone, Copy)]
pub struct CrashOutcome {
    /// Surviving records.
    pub cut: u64,
    /// Jobs the real `replay` requeued.
    pub requeued: u64,
    /// Jobs `replay` recognized as already completed.
    pub already_completed: u64,
    /// Jobs the second life re-executed (must equal `requeued`).
    pub second_life_executed: u64,
}

/// One completed simulated run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Every nondeterminism decision, in order.
    pub trace: Trace,
    /// The final stats snapshot (compact JSON) — bit-identical across
    /// runs of the same seed.
    pub stats: String,
    /// Total WAL appends the run performed.
    pub appends: u64,
    /// Successful WAL fsyncs — the upper bound for `--fsync-fail-at`.
    pub syncs: u64,
    /// For each append `k` (index `k-1`): the durable prefix length just
    /// before it — the lower bound of crash cuts at that append.
    pub append_sync_floor: Vec<u64>,
    /// Job ids acknowledged to clients (reply pushed onto an open
    /// connection), in ack order.
    pub acked: Vec<u64>,
    /// The flight-recorder event stream (one [`obs::RingEvent`] text line
    /// per stage event, in stamp order) — recorded on the virtual clock
    /// with the daemon's stage names, so it is bit-identical across runs
    /// and replays of the same seed.
    pub events: String,
    /// Crash recovery report when a [`CrashPlan`] was active.
    pub crash: Option<CrashOutcome>,
    /// Scheduler decisions taken (a cost proxy).
    pub steps: u64,
    /// Connection delivery decisions taken.
    pub deliveries: u64,
    /// Deliveries that moved fewer bytes than were pending (partial
    /// lines / dribble — the framing-torture cases).
    pub partial_deliveries: u64,
    /// Connections dropped by fault injection.
    pub disconnects: u64,
    /// Replies the server finished but could not deliver (peer gone).
    pub replies_unsent: u64,
    /// The journal fail-stopped after an injected fsync error.
    pub fail_stopped: bool,
}

/// A failed run, carrying its deterministic reproducer.
#[derive(Debug, Clone)]
pub struct SimFailure {
    /// The seed that produces the failure.
    pub seed: u64,
    /// The crash injection active when it failed, if any.
    pub crash: Option<CrashPlan>,
    /// Connection faults were active.
    pub conn_faults: bool,
    /// The fsync-error injection active when it failed, if any (fail the
    /// Nth sync attempt).
    pub fsync_error_at: Option<u64>,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SimFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sim failure at seed {}", self.seed)?;
        if let Some(c) = &self.crash {
            write!(f, " (crash after append {}, cut {})", c.after_append, c.cut)?;
        }
        if let Some(s) = self.fsync_error_at {
            write!(f, " (fsync error at sync {s})")?;
        }
        write!(f, ": {}", self.message)?;
        write!(f, "\nreproduce: bulkrun sim --replay {}", self.seed)?;
        if let Some(c) = &self.crash {
            write!(f, " --crash-at {}", c.after_append)?;
        }
        if self.conn_faults {
            write!(f, " --conn-faults")?;
        }
        if let Some(s) = self.fsync_error_at {
            write!(f, " --fsync-fail-at {s}")?;
        }
        Ok(())
    }
}

/// The deterministic "executor": what a batch does to each input word.
/// Clients precompute the expected outputs and assert the reply matches,
/// so cross-wired or duplicated replies are caught.
#[must_use]
pub fn exec_word(w: u64) -> u64 {
    w.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(0xD1B5_4A32_D192_ED03)
}

/// Record-level WAL model: an append-only record list with an explicit
/// durable prefix.  `append` leaves records unsynced (page cache);
/// `sync` extends the durable prefix to the full length — exactly the
/// group-commit shape, so a crash between the two is representable.
///
/// An injected fsync error (`fail_at_sync`) makes the Nth sync attempt
/// fail and is *sticky*: the durable prefix freezes and every later sync
/// reports the original error, mirroring how a real `fdatasync` failure
/// must be treated (the page cache state is unknowable afterwards).
#[derive(Debug, Default)]
struct SimWal {
    records: Vec<Record>,
    synced_len: usize,
    next_seq: u64,
    appends: u64,
    syncs: u64,
    sync_floor: Vec<u64>,
    sync_attempts: u64,
    fail_at_sync: Option<u64>,
    failed: Option<String>,
    /// Appends issued after the fail-stop — the journal contract says
    /// this must stay zero.
    appends_after_fail: u64,
}

impl SimWal {
    fn new(fail_at_sync: Option<u64>) -> Self {
        Self { next_seq: 1, fail_at_sync, ..Self::default() }
    }

    /// Append unsynced; returns the total append count (for crash
    /// triggers).
    fn append(&mut self, rec_type: u8, payload: Vec<u8>) -> u64 {
        if self.failed.is_some() {
            self.appends_after_fail += 1;
        }
        self.sync_floor.push(self.synced_len as u64);
        self.records.push(Record { seq: self.next_seq, rec_type, payload });
        self.next_seq += 1;
        self.appends += 1;
        self.appends
    }

    /// One group fsync: everything appended so far becomes durable —
    /// unless the injection plan fails this attempt, after which the
    /// durable prefix is frozen and every sync reports the error.
    fn sync(&mut self) -> Result<(), String> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        if self.synced_len < self.records.len() {
            self.sync_attempts += 1;
            if self.fail_at_sync.is_some_and(|n| self.sync_attempts >= n) {
                let e = format!("injected fsync error at sync attempt {}", self.sync_attempts);
                self.failed = Some(e.clone());
                return Err(e);
            }
            self.syncs += 1;
            self.synced_len = self.records.len();
        }
        Ok(())
    }

    fn stats_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("enabled", true);
        o.set("model", "sim");
        o.set("records_appended", self.appends);
        o.set("fsyncs", self.syncs);
        o.set("synced_records", self.synced_len);
        o.set("fail_stopped", self.failed.is_some());
        o
    }
}

/// The job id a journal record names (records are JSON payloads).
fn record_job_id(rec: &Record) -> Result<u64, String> {
    let text =
        std::str::from_utf8(&rec.payload).map_err(|e| format!("record seq {}: {e}", rec.seq))?;
    let j = Json::parse(text).map_err(|e| format!("record seq {}: {e}", rec.seq))?;
    Ok(j.get("job")
        .and_then(Json::as_i64)
        .ok_or_else(|| format!("record seq {} has no job id", rec.seq))? as u64)
}

/// One client's byte-stream-modelled connection.  Client request lines
/// are *written* into `c2s` in full, then *delivered* to the server's
/// real [`LineFramer`] in scheduler-chosen chunks — so partial lines,
/// coalesced lines, and one-byte dribble all drive the daemon's own
/// framing path.  Server replies queue in `s2c` as complete lines (the
/// server writes with one `write_all` per reply).
#[derive(Debug)]
struct Connection {
    /// Bytes the client has written but the scheduler has not yet
    /// delivered to the server.
    c2s: Vec<u8>,
    /// The server end: the daemon's real incremental framer.
    framer: LineFramer,
    /// Server→client replies awaiting the client's read.
    s2c: VecDeque<String>,
    /// The peer dropped; later replies are undeliverable.
    closed: bool,
    /// A submit is in flight server-side: the real connection thread is
    /// parked in `rx.recv()` and processes no further lines until the
    /// reply — the slow-reader / head-of-line-blocking shape.
    busy: bool,
}

impl Connection {
    fn new() -> Self {
        Self {
            c2s: Vec::new(),
            framer: LineFramer::new(1 << 20),
            s2c: VecDeque::new(),
            closed: false,
            busy: false,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Phase {
    /// Ready to submit job number `job` (0-based within the client).
    Submit { job: usize },
    /// Request bytes for `job` written; deliveries still pending.
    Sending { job: usize },
    /// Waiting for the reply to the in-flight job.
    Await { job: usize },
    /// Thinking (post-ack) or backing off (post-overload) until the
    /// virtual clock reaches `until_us`, then submitting `job`.
    Pause { job: usize, until_us: u64 },
    /// All jobs acknowledged or refused.
    Done,
    /// The connection dropped; the client is gone for good.
    Disconnected,
}

struct PendingJob {
    key: JobKey,
    inputs: Vec<Vec<u64>>,
    expected: Vec<Vec<u64>>,
    /// Send a status probe ahead of the submit line (same connection),
    /// so control traffic races data traffic through the framer.
    probe: bool,
}

struct ClientState {
    phase: Phase,
    rng: Rng,
    pending: Option<PendingJob>,
    conn: Connection,
    /// Status probes sent but not yet answered.  Probes precede their
    /// submit on the wire, so probe replies always drain first.
    probes_outstanding: u32,
    in_flight_id: Option<u64>,
    /// Jobs this client saw acknowledged.
    acked_jobs: usize,
    /// Jobs refused with a journal fail-stop error.
    refused_jobs: usize,
}

struct WorkerState {
    done: bool,
    /// Eventcount snapshot + deadline from the last `Empty` poll.
    blocked: Option<(u64, Option<u64>)>,
}

const WORDS_PER_INSTANCE: usize = 2;
/// Hard cap on scheduler decisions — a livelock backstop far above any
/// legitimate run of the default world sizes.
const STEP_LIMIT: u64 = 1_000_000;
/// Flight-recorder capacity: ample for the default world sizes, so no
/// run loses events to wraparound and the stream stays comparable.
const SIM_RING_CAPACITY: usize = 65_536;

struct World {
    cfg: SimConfig,
    clock: Arc<VirtualClock>,
    sched: Arc<SimScheduler>,
    queue: CoalescingQueue,
    stats: ServerStats,
    wal: SimWal,
    /// The same flight recorder the real server writes, fed from the
    /// virtual clock — track 0 is the submit path, workers are 1-based,
    /// mirroring `bulkd::server`.
    ring: Ring,
    clients: Vec<ClientState>,
    workers: Vec<WorkerState>,
    owner: BTreeMap<u64, usize>,
    executed: BTreeMap<u64, u64>,
    acked: Vec<u64>,
    next_job_id: u64,
    crash_plan: Option<CrashPlan>,
    crashed: bool,
    decisions: Vec<Decision>,
    drain_started: bool,
    deliveries: u64,
    partial_deliveries: u64,
    disconnects: u64,
    replies_unsent: u64,
}

impl World {
    fn new(cfg: &SimConfig, crash: Option<CrashPlan>, fsync_error_at: Option<u64>) -> Self {
        let clock = Arc::new(VirtualClock::new());
        let sched = Arc::new(SimScheduler::new());
        let queue = CoalescingQueue::with_runtime(
            QueueConfig {
                max_batch: cfg.max_batch,
                max_queue: cfg.max_queue,
                flush_after: Duration::from_micros(cfg.flush_after_us),
            },
            Arc::<VirtualClock>::clone(&clock) as Arc<dyn Clock>,
            Arc::<SimScheduler>::clone(&sched) as Arc<dyn Scheduler>,
        );
        let clients = (0..cfg.clients)
            .map(|c| ClientState {
                phase: Phase::Submit { job: 0 },
                // Workload stream: derived from (seed, client), never from
                // the schedule — every interleaving sees the same offered
                // work.
                rng: Rng::new(cfg.seed ^ (c as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                pending: None,
                conn: Connection::new(),
                probes_outstanding: 0,
                in_flight_id: None,
                acked_jobs: 0,
                refused_jobs: 0,
            })
            .collect();
        let workers =
            (0..cfg.workers).map(|_| WorkerState { done: false, blocked: None }).collect();
        Self {
            cfg: cfg.clone(),
            clock,
            sched,
            queue,
            stats: ServerStats::new(),
            wal: SimWal::new(fsync_error_at.map(|n| n.max(1))),
            ring: Ring::with_capacity(SIM_RING_CAPACITY),
            clients,
            workers,
            owner: BTreeMap::new(),
            executed: BTreeMap::new(),
            acked: Vec::new(),
            next_job_id: 1,
            crash_plan: crash,
            crashed: false,
            decisions: Vec::new(),
            drain_started: false,
            deliveries: 0,
            partial_deliveries: 0,
            disconnects: 0,
            replies_unsent: 0,
        }
    }

    /// Append to the WAL model and fire the crash plan when its append
    /// count is reached.  Returns `true` when the world just crashed —
    /// the caller must abandon its step immediately (no sync, no enqueue,
    /// no reply: exactly what `kill -9` at that instruction would do).
    fn wal_append(&mut self, rec_type: u8, payload: Vec<u8>) -> bool {
        let n = self.wal.append(rec_type, payload);
        if let Some(plan) = &self.crash_plan {
            if n == plan.after_append {
                self.crashed = true;
                return true;
            }
        }
        false
    }

    fn runnable(&self) -> Vec<Actor> {
        let now = self.clock.now_us();
        let epoch = self.sched.epoch();
        let mut r = Vec::new();
        for (i, c) in self.clients.iter().enumerate() {
            let ready = match &c.phase {
                Phase::Submit { .. } | Phase::Sending { .. } => true,
                Phase::Pause { until_us, .. } => now >= *until_us,
                Phase::Await { .. } => !c.conn.s2c.is_empty(),
                Phase::Done | Phase::Disconnected => false,
            };
            if ready {
                r.push(Actor::Client(i as u32));
            }
        }
        for (i, w) in self.workers.iter().enumerate() {
            if w.done {
                continue;
            }
            let ready = match &w.blocked {
                None => true,
                Some((e, dl)) => *e != epoch || dl.is_some_and(|d| now >= d),
            };
            if ready {
                r.push(Actor::Worker(i as u32));
            }
        }
        r
    }

    /// The earliest virtual instant at which a currently-blocked actor
    /// becomes runnable by time alone.
    fn earliest_deadline(&self) -> Option<u64> {
        let mut min: Option<u64> = None;
        let mut fold = |t: u64| min = Some(min.map_or(t, |m| m.min(t)));
        for c in &self.clients {
            if let Phase::Pause { until_us, .. } = &c.phase {
                fold(*until_us);
            }
        }
        for w in &self.workers {
            if let Some((_, Some(d))) = &w.blocked {
                fold(*d);
            }
        }
        min
    }

    fn all_clients_done(&self) -> bool {
        self.clients.iter().all(|c| matches!(c.phase, Phase::Done | Phase::Disconnected))
    }

    fn step_client(&mut self, idx: usize, sched: &mut Schedule) -> Result<(), String> {
        match self.clients[idx].phase {
            Phase::Pause { job, until_us } => {
                debug_assert!(self.clock.now_us() >= until_us, "paused client stepped early");
                self.clients[idx].phase = Phase::Submit { job };
                self.begin_send(idx)?;
                self.send_step(idx, sched)
            }
            Phase::Submit { .. } => {
                self.begin_send(idx)?;
                self.send_step(idx, sched)
            }
            Phase::Sending { .. } => self.send_step(idx, sched),
            Phase::Await { .. } => self.receive(idx, sched),
            Phase::Done => Err(format!("client {idx} stepped after Done")),
            Phase::Disconnected => Err(format!("client {idx} stepped after disconnect")),
        }
    }

    /// Draw the job (lazily — overload retries re-offer the identical
    /// job) and write its request line(s) to the connection.  The wire
    /// bytes are the daemon's real protocol: an optional status probe
    /// line first, then the submit line.
    fn begin_send(&mut self, idx: usize) -> Result<(), String> {
        let Phase::Submit { job } = self.clients[idx].phase else {
            return Err("begin_send in wrong phase".into());
        };
        let conn_faults = self.cfg.conn_faults;
        if self.clients[idx].pending.is_none() {
            let c = &mut self.clients[idx];
            let instances = 1 + c.rng.range_u64(0, 3) as usize;
            let size = if c.rng.range_u64(0, 2) == 0 { 8 } else { 16 };
            let inputs: Vec<Vec<u64>> = (0..instances)
                .map(|_| (0..WORDS_PER_INSTANCE).map(|_| c.rng.next_u64()).collect())
                .collect();
            let expected =
                inputs.iter().map(|i| i.iter().copied().map(exec_word).collect()).collect();
            // The probe draw is consumed unconditionally so the workload
            // stream is identical whether or not faults are on.
            let probe = c.rng.range_u64(0, 4) == 0 && conn_faults;
            let key = JobKey { algo: "sim".into(), size, layout: oblivious::Layout::ColumnWise };
            c.pending = Some(PendingJob { key, inputs, expected, probe });
        }
        let (key, inputs, probe) = {
            let p = self.clients[idx].pending.as_ref().expect("pending drawn above");
            (p.key.clone(), p.inputs.clone(), p.probe)
        };
        let c = &mut self.clients[idx];
        if probe {
            // Control traffic races data traffic through the same framer.
            let mut line = Request::Status.to_json().to_compact().into_bytes();
            line.push(b'\n');
            c.conn.c2s.extend_from_slice(&line);
            c.probes_outstanding += 1;
        }
        let mut line =
            Request::Submit { key, inputs, timing: false }.to_json().to_compact().into_bytes();
        line.push(b'\n');
        c.conn.c2s.extend_from_slice(&line);
        c.phase = Phase::Sending { job };
        Ok(())
    }

    /// One connection scheduling decision: deliver some pending bytes to
    /// the server's framer, or drop the connection.
    fn send_step(&mut self, idx: usize, sched: &mut Schedule) -> Result<(), String> {
        let pending = self.clients[idx].conn.c2s.len() as u64;
        debug_assert!(pending > 0, "send_step with nothing to deliver");
        let d = sched.conn_send(pending, self.cfg.conn_faults)?;
        self.decisions.push(d);
        match d {
            Decision::Disconnect => {
                self.disconnect(idx);
                Ok(())
            }
            Decision::Deliver(n) => {
                self.deliveries += 1;
                if n < pending {
                    self.partial_deliveries += 1;
                }
                let chunk: Vec<u8> = self.clients[idx].conn.c2s.drain(..n as usize).collect();
                self.clients[idx].conn.framer.push(&chunk);
                self.pump_conn(idx)?;
                if self.crashed {
                    return Ok(());
                }
                if let Phase::Sending { job } = self.clients[idx].phase {
                    if self.clients[idx].conn.c2s.is_empty() {
                        self.clients[idx].phase = Phase::Await { job };
                    }
                }
                Ok(())
            }
            other => Err(format!("conn_send returned non-connection decision {other:?}")),
        }
    }

    /// Drop `idx`'s connection.  Counting rule (mirrors what the real
    /// server can observe, exactly once per drop):
    /// - a submit in flight server-side → discovered at reply-push time,
    ///   counted there as `mid-reply`;
    /// - bytes buffered in the framer → a `mid-line` EOF, counted now;
    /// - otherwise a clean EOF between requests → nothing to count
    ///   (bytes never delivered don't exist server-side).
    fn disconnect(&mut self, idx: usize) {
        self.disconnects += 1;
        let buffered = self.clients[idx].conn.framer.buffered();
        let busy = self.clients[idx].conn.busy;
        self.clients[idx].conn.closed = true;
        self.clients[idx].phase = Phase::Disconnected;
        if !busy && buffered > 0 {
            self.stats.on_disconnect("mid-line");
            self.ring.record(self.clock.now_us(), 0, "disconnect", 0, buffered as i64);
        }
    }

    /// The server end of `idx`'s connection: frame complete lines out of
    /// the delivered bytes and dispatch them through the daemon's real
    /// request parser — exactly what `conn_loop` does, minus the socket.
    /// Stops while a submit is in flight (`busy`), as the real
    /// connection thread blocks in `rx.recv()`.
    fn pump_conn(&mut self, idx: usize) -> Result<(), String> {
        loop {
            if self.crashed {
                return Ok(());
            }
            {
                let conn = &self.clients[idx].conn;
                if conn.closed || conn.busy {
                    return Ok(());
                }
            }
            let line = match self.clients[idx].conn.framer.next_line() {
                Ok(Some(l)) => l,
                Ok(None) => return Ok(()),
                Err(e) => return Err(format!("framer error for client {idx}: {e}")),
            };
            if line.trim().is_empty() {
                continue;
            }
            let req = Request::parse_line(&line)
                .map_err(|e| format!("client {idx} line failed to parse after framing: {e}"))?;
            match req {
                Request::Status => {
                    let mut o = Json::obj();
                    o.set("ok", true);
                    o.set("protocol_version", PROTOCOL_VERSION);
                    o.set("queued_instances", self.queue.depth().queued_instances);
                    o.set("uptime_us", self.clock.now_us());
                    let reply = o.to_compact();
                    self.push_reply(idx, reply);
                }
                Request::Submit { key, inputs, .. } => {
                    self.server_submit(idx, &key, &inputs)?;
                }
                other => return Err(format!("client {idx} sent unexpected request {other:?}")),
            }
        }
    }

    /// One submit attempt server-side: reserve → journal (durable) →
    /// enqueue, the daemon's two-phase admission, against the real queue.
    /// The parsed request must round-trip the client's pending job
    /// bit-exactly — the framing-correctness check.
    fn server_submit(
        &mut self,
        idx: usize,
        key: &JobKey,
        inputs: &[Vec<u64>],
    ) -> Result<(), String> {
        let n = inputs.len();
        self.stats.on_submit(n as u64);
        {
            let p = self.clients[idx]
                .pending
                .as_ref()
                .ok_or_else(|| format!("client {idx}: submit line with no pending job"))?;
            if p.key != *key || p.inputs != inputs {
                return Err(format!(
                    "framing corrupted client {idx}'s job: parsed submit differs from what was sent"
                ));
            }
        }
        // Fail-stop: after a failed fsync the journal refuses all new
        // work up front — no reservation, no id, no append.
        if let Some(e) = self.wal.failed.clone() {
            self.stats.on_reject(n as u64);
            let reply = resp_error("wal", &format!("journal fail-stopped: {e}")).to_compact();
            self.push_reply(idx, reply);
            return Ok(());
        }
        let adm = match self.queue.reserve(n) {
            Ok(adm) => adm,
            Err(SubmitError::Overloaded { retry_after_ms }) => {
                self.stats.on_reject(n as u64);
                let reply = resp_overloaded(retry_after_ms).to_compact();
                self.push_reply(idx, reply);
                return Ok(());
            }
            Err(SubmitError::Draining) => {
                return Err("queue draining while clients still live".into());
            }
        };
        let id = self.next_job_id;
        self.next_job_id += 1;
        // Trace context: the same stage events the real server records,
        // stamped on the virtual clock (track 0 = the submit path).
        let accepted_us = self.clock.now_us();
        self.ring.record(accepted_us, 0, "accepted", id, n as i64);
        if self.wal_append(REC_SUBMIT, submit_payload(id, key, inputs)) {
            // Crashed mid-submit: reservation and id die with the process.
            return Ok(());
        }
        if let Err(e) = self.wal.sync() {
            // The submit's own fsync failed: undo the reservation and
            // refuse — the job was never durably accepted.
            self.queue.cancel(adm);
            self.stats.on_reject(n as u64);
            let reply = resp_error("wal", &format!("journal fail-stopped: {e}")).to_compact();
            self.push_reply(idx, reply);
            return Ok(());
        }
        let journaled_us = self.clock.now_us();
        self.ring.record(journaled_us, 0, "journaled", id, 0);
        let (tx, _rx) = mpsc::channel();
        let enqueued_us = self.clock.now_us();
        let mut queued = Job::new(id, inputs.to_vec(), enqueued_us, tx);
        queued.stages = StageStamps { accepted_us, journaled_us, assembled_us: 0 };
        self.queue.enqueue(adm, key.clone(), queued);
        self.ring.record(enqueued_us, 0, "enqueued", id, 0);
        self.stats.on_accept(n as u64);
        self.owner.insert(id, idx);
        let c = &mut self.clients[idx];
        c.in_flight_id = Some(id);
        // The real connection thread now parks in rx.recv(): no further
        // lines are processed until the reply (head-of-line blocking).
        c.conn.busy = true;
        Ok(())
    }

    /// Deliver a finished reply line to `idx`'s connection.  Returns
    /// `false` when the peer is gone — the mid-reply disconnect case,
    /// counted here exactly once.
    fn push_reply(&mut self, idx: usize, line: String) -> bool {
        if self.clients[idx].conn.closed {
            self.replies_unsent += 1;
            self.stats.on_disconnect("mid-reply");
            self.ring.record(self.clock.now_us(), 0, "disconnect", 0, 0);
            false
        } else {
            self.clients[idx].conn.s2c.push_back(line);
            true
        }
    }

    /// The client reads (or refuses to read) the next queued reply line.
    fn receive(&mut self, idx: usize, sched: &mut Schedule) -> Result<(), String> {
        let Phase::Await { job } = self.clients[idx].phase else {
            return Err("receive in wrong phase".into());
        };
        // The client may drop instead of reading — the mid-reply
        // disconnect decision (peeked, not drawn, on replay).
        if sched.conn_recv_disconnects(self.cfg.conn_faults) {
            self.decisions.push(Decision::Disconnect);
            self.disconnect(idx);
            return Ok(());
        }
        let line = self.clients[idx]
            .conn
            .s2c
            .pop_front()
            .ok_or_else(|| format!("client {idx} stepped in Await with no reply queued"))?;
        let j = Json::parse(&line)
            .map_err(|e| format!("client {idx} got an unparseable reply: {e}"))?;
        if j.get("protocol_version").is_some() {
            // A status-probe reply: consume it and keep waiting.
            let c = &mut self.clients[idx];
            if c.probes_outstanding == 0 {
                return Err(format!("client {idx}: status reply with no probe outstanding"));
            }
            c.probes_outstanding -= 1;
            return Ok(());
        }
        if j.get("ok") == Some(&Json::Bool(true)) {
            let outputs: Vec<Vec<u64>> = j
                .get("outputs")
                .and_then(Json::as_arr)
                .ok_or("ok reply has no outputs array")?
                .iter()
                .map(protocol::words_from_json)
                .collect::<Result<_, _>>()?;
            let id = self.clients[idx].in_flight_id.ok_or("reply with no in-flight job")?;
            {
                let c = &self.clients[idx];
                let expected = &c.pending.as_ref().ok_or("reply with no pending job")?.expected;
                if &outputs != expected {
                    return Err(format!("job {id}: outputs do not match the executor function"));
                }
                // Probes precede submits on the wire, so their replies
                // must have drained before the job reply.
                if c.probes_outstanding != 0 {
                    return Err(format!("job {id}'s reply overtook a status-probe reply"));
                }
            }
            let exec = j.get("exec_us").and_then(Json::as_i64).unwrap_or(0);
            self.ring.record(self.clock.now_us(), 0, "reply_written", id, exec);
            let c = &mut self.clients[idx];
            c.acked_jobs += 1;
            c.pending = None;
            c.in_flight_id = None;
            self.advance_job(idx, job);
            return Ok(());
        }
        match j.get("error").and_then(Json::as_str).unwrap_or("") {
            "overloaded" => {
                let retry_ms =
                    j.get("retry_after_ms").and_then(Json::as_i64).unwrap_or(1).max(1) as u64;
                let now = self.clock.now_us();
                // Back off and re-offer the identical job.
                self.clients[idx].phase = Phase::Pause { job, until_us: now + retry_ms * 1_000 };
                Ok(())
            }
            "wal" => {
                // The journal fail-stopped: the job is refused, not hung.
                let c = &mut self.clients[idx];
                c.refused_jobs += 1;
                c.pending = None;
                c.in_flight_id = None;
                self.advance_job(idx, job);
                Ok(())
            }
            other => Err(format!("client {idx} got unexpected error reply {other:?}: {line}")),
        }
    }

    /// Move to the next job (or finish), consuming the think-time draw.
    fn advance_job(&mut self, idx: usize, job: usize) {
        let next = job + 1;
        let now = self.clock.now_us();
        let flush = self.cfg.flush_after_us;
        let jobs = self.cfg.jobs_per_client;
        let c = &mut self.clients[idx];
        if next >= jobs {
            c.phase = Phase::Done;
        } else {
            let think = c.rng.range_u64(0, flush * 2 + 1);
            c.phase = Phase::Pause { job: next, until_us: now + think };
        }
    }

    fn step_worker(&mut self, idx: usize) -> Result<(), String> {
        // Eventcount discipline: snapshot BEFORE polling the queue.
        let epoch = self.sched.epoch();
        match self.queue.try_next_batch() {
            TryNext::Batch(batch) => {
                self.workers[idx].blocked = None;
                let track = idx as u32 + 1;
                let t0 = self.clock.now_us();
                let p = batch.instances();
                for job in &batch.jobs {
                    self.ring.record(
                        job.stages.assembled_us,
                        track,
                        "assembled",
                        job.id,
                        job.inputs.len() as i64,
                    );
                }
                // Deterministic virtual execution cost.
                let exec_us = 20 + 5 * p as u64;
                self.clock.advance(exec_us);
                self.ring.record(self.clock.now_us(), track, "executed", 0, p as i64);
                self.stats.on_batch(p as u64, exec_us);
                // Group commit: append every completion unsynced, then one
                // fsync covers the batch.  A crash between lands cuts
                // strictly inside the unsynced window.  After a fail-stop
                // the journal takes no further appends at all.
                let synced = if self.wal.failed.is_none() {
                    for job in &batch.jobs {
                        let outputs: Vec<Vec<u64>> = job
                            .inputs
                            .iter()
                            .map(|i| i.iter().copied().map(exec_word).collect())
                            .collect();
                        if self.wal_append(REC_COMPLETE, complete_payload(job.id, Ok(&outputs))) {
                            return Ok(());
                        }
                    }
                    self.wal.sync().is_ok()
                } else {
                    false
                };
                // The deliberate CI bug: ack even though the completion
                // never became durable.
                let ack_anyway = bulkd::journal::ack_despite_fsync_error();
                let mut involved: Vec<usize> = Vec::new();
                for job in batch.jobs {
                    let n = job.inputs.len() as u64;
                    let queue_us = t0.saturating_sub(job.enqueued_us);
                    *self.executed.entry(job.id).or_insert(0) += 1;
                    let done_us = self.clock.now_us();
                    let breakdown = StageBreakdown {
                        journal_us: job.stages.journaled_us.saturating_sub(job.stages.accepted_us),
                        queue_us: job.stages.assembled_us.saturating_sub(job.enqueued_us),
                        dispatch_us: t0.saturating_sub(job.stages.assembled_us),
                        exec_us,
                        finalize_us: done_us.saturating_sub(t0.saturating_add(exec_us)),
                        total_us: done_us.saturating_sub(job.stages.accepted_us),
                    };
                    let client = self.owner.get(&job.id).copied();
                    if synced || ack_anyway {
                        let outputs: Vec<Vec<u64>> = job
                            .inputs
                            .iter()
                            .map(|i| i.iter().copied().map(exec_word).collect())
                            .collect();
                        self.ring.record(done_us, track, "completion_journaled", job.id, 0);
                        self.stats.on_job_done(&batch.key, n, queue_us, false, &breakdown);
                        let reply = resp_outputs(&outputs, p, queue_us, exec_us, None).to_compact();
                        if let Some(ci) = client {
                            // "Acked" = the reply reached an open
                            // connection, the durability contract's
                            // observable edge.
                            if self.push_reply(ci, reply) {
                                self.acked.push(job.id);
                            }
                        }
                    } else {
                        // Fail-stop: the waiter gets an error, not a hang.
                        self.ring.record(done_us, track, "completion_refused", job.id, -1);
                        self.stats.on_job_done(&batch.key, n, queue_us, true, &breakdown);
                        let reply =
                            resp_error("wal", "journal fail-stopped: completion not durable")
                                .to_compact();
                        if let Some(ci) = client {
                            self.push_reply(ci, reply);
                        }
                    }
                    if let Some(ci) = client {
                        self.clients[ci].conn.busy = false;
                        involved.push(ci);
                    }
                }
                self.queue.batch_done();
                // The connection threads unpark: process any lines that
                // were framed while the submit was in flight.
                for ci in involved {
                    self.pump_conn(ci)?;
                }
                Ok(())
            }
            TryNext::Empty { next_deadline_us } => {
                self.workers[idx].blocked = Some((epoch, next_deadline_us));
                Ok(())
            }
            TryNext::Drained => {
                self.workers[idx].done = true;
                Ok(())
            }
        }
    }

    fn snapshot(&self) -> String {
        self.stats
            .snapshot(
                self.queue.depth(),
                &self.queue.per_key_depth(),
                self.clock.now_us(),
                (0, 0),
                Some(self.wal.stats_json()),
            )
            .to_compact()
    }

    /// Post-crash: recover via the daemon's real `replay`, check every
    /// durability invariant, then run the "second life" that re-executes
    /// the requeued jobs.
    fn crash_outcome(&self) -> Result<CrashOutcome, String> {
        let plan = self.crash_plan.expect("crash outcome without a plan");
        let cut = plan.cut as usize;
        if cut < self.wal.synced_len || cut > self.wal.records.len() {
            return Err(format!(
                "invalid cut {cut}: durable prefix is {}, appended length {}",
                self.wal.synced_len,
                self.wal.records.len()
            ));
        }
        let survivors = &self.wal.records[..cut];
        let recovery = bulkd::journal::replay(survivors)
            .map_err(|e| format!("recovery replay rejected surviving records: {e}"))?;
        let mut durable_submits: BTreeSet<u64> = BTreeSet::new();
        let mut durable_completes: BTreeSet<u64> = BTreeSet::new();
        for rec in survivors {
            let id = record_job_id(rec).map_err(|e| format!("survivor {e}"))?;
            match rec.rec_type {
                REC_SUBMIT => {
                    durable_submits.insert(id);
                }
                REC_COMPLETE => {
                    durable_completes.insert(id);
                }
                other => return Err(format!("survivor seq {} has type {other}", rec.seq)),
            }
        }
        // Invariant A: an acknowledged job's completion is durable, and
        // recovery never re-queues it — exactly-once as the client saw it.
        for id in &self.acked {
            if !durable_completes.contains(id) {
                return Err(format!(
                    "acked job {id} has no durable completion at cut {cut} \
                     (reply must not outrun the fsync)"
                ));
            }
            if recovery.requeue.iter().any(|r| r.id == *id) {
                return Err(format!(
                    "exactly-once violated: acked job {id} would be re-executed after recovery"
                ));
            }
        }
        // Invariant B: nothing executed without a durable submit record —
        // the enqueue-after-durable contract of two-phase admission.
        for id in self.executed.keys() {
            if !durable_submits.contains(id) {
                return Err(format!("job {id} executed without a durable submit record"));
            }
        }
        // Requeues come only from durable, uncompleted submits.
        for r in &recovery.requeue {
            if !durable_submits.contains(&r.id) {
                return Err(format!("recovery invented job {} from nowhere", r.id));
            }
        }
        // Fresh ids must start above everything durable.
        if let Some(&max_id) = durable_submits.iter().max() {
            if recovery.next_job_id <= max_id {
                return Err(format!(
                    "next_job_id {} collides with durable job {max_id}",
                    recovery.next_job_id
                ));
            }
        }
        let requeued = recovery.requeue.len() as u64;
        let already_completed = recovery.already_completed;
        let second_life_executed = self.second_life(recovery.requeue)?;
        if second_life_executed != requeued {
            return Err(format!(
                "second life executed {second_life_executed} of {requeued} requeued jobs"
            ));
        }
        Ok(CrashOutcome { cut: cut as u64, requeued, already_completed, second_life_executed })
    }

    /// The restarted daemon in miniature: requeue the recovered jobs on a
    /// fresh queue (unbounded admission, dropped reply channels — their
    /// submitters are gone) and drain them through one worker.
    fn second_life(&self, requeue: Vec<bulkd::journal::RecoveredJob>) -> Result<u64, String> {
        let clock = Arc::new(VirtualClock::new());
        let queue = CoalescingQueue::with_runtime(
            QueueConfig {
                max_batch: self.cfg.max_batch,
                max_queue: self.cfg.max_queue,
                flush_after: Duration::from_micros(self.cfg.flush_after_us),
            },
            clock as Arc<dyn Clock>,
            Arc::new(SimScheduler::new()) as Arc<dyn Scheduler>,
        );
        for job in requeue {
            let adm = queue.reserve_unbounded(job.inputs.len());
            let (tx, _rx) = mpsc::channel();
            queue.enqueue(adm, job.key, Job::new(job.id, job.inputs, 0, tx));
        }
        queue.begin_drain();
        let mut executed = 0u64;
        let mut guard = 0u64;
        loop {
            guard += 1;
            if guard > STEP_LIMIT {
                return Err("second life livelocked".into());
            }
            match queue.try_next_batch() {
                TryNext::Batch(b) => {
                    for job in &b.jobs {
                        if self.acked.contains(&job.id) {
                            return Err(format!(
                                "exactly-once violated: acked job {} re-executed in recovery",
                                job.id
                            ));
                        }
                        executed += 1;
                    }
                    queue.batch_done();
                }
                TryNext::Drained => break,
                TryNext::Empty { .. } => {
                    return Err("second life queue idle while draining".into());
                }
            }
        }
        if !queue.drained() {
            return Err("second life queue did not drain clean".into());
        }
        Ok(executed)
    }
}

/// How the main loop picks among runnable actors and resolves connection
/// decisions.
enum Schedule {
    Seeded(Rng),
    Replay { decisions: Vec<Decision>, pos: usize },
}

impl Schedule {
    fn pick(&mut self, runnable: &[Actor]) -> Result<Actor, String> {
        match self {
            Self::Seeded(rng) => Ok(runnable[rng.range_u64(0, runnable.len() as u64) as usize]),
            Self::Replay { decisions, pos } => {
                // Advance/Crash entries are deterministic consequences —
                // regenerated, not consumed.  Steps are decisions; a
                // connection event here means the replayed world fell out
                // of sync with the recording.
                while let Some(d) = decisions.get(*pos) {
                    *pos += 1;
                    match d {
                        Decision::Step(a) => {
                            if !runnable.contains(a) {
                                return Err(format!(
                                    "trace divergence: {a:?} is not runnable at this point"
                                ));
                            }
                            return Ok(*a);
                        }
                        Decision::Advance(_) | Decision::Crash(_) => {}
                        Decision::Deliver(_) | Decision::Disconnect => {
                            return Err(format!(
                                "trace divergence: connection event {d:?} where a \
                                 scheduler step was expected"
                            ));
                        }
                    }
                }
                Err("trace exhausted before the world finished".into())
            }
        }
    }

    /// Resolve one send-side connection decision: deliver 1..=pending
    /// bytes, or drop.  Without faults every send delivers in one piece
    /// (still recorded, so no-fault traces replay through the same path).
    fn conn_send(&mut self, pending: u64, faults: bool) -> Result<Decision, String> {
        match self {
            Self::Seeded(rng) => {
                if faults && rng.range_u64(0, 12) == 0 {
                    return Ok(Decision::Disconnect);
                }
                let n = if faults {
                    match rng.range_u64(0, 3) {
                        0 => 1,                             // one-byte dribble
                        1 => rng.range_u64(1, pending + 1), // arbitrary split
                        _ => pending,                       // everything at once
                    }
                } else {
                    pending
                };
                Ok(Decision::Deliver(n))
            }
            Self::Replay { decisions, pos } => match decisions.get(*pos).copied() {
                Some(Decision::Deliver(n)) => {
                    *pos += 1;
                    if n == 0 || n > pending {
                        return Err(format!("trace divergence: deliver {n} outside 1..={pending}"));
                    }
                    Ok(Decision::Deliver(n))
                }
                Some(Decision::Disconnect) => {
                    *pos += 1;
                    Ok(Decision::Disconnect)
                }
                other => {
                    Err(format!("trace divergence: expected a connection event, found {other:?}"))
                }
            },
        }
    }

    /// Resolve a receive-side disconnect decision.  A plain read records
    /// nothing, so on replay this *peeks*: it consumes the next decision
    /// only when it is the recorded `d`.
    fn conn_recv_disconnects(&mut self, faults: bool) -> bool {
        match self {
            Self::Seeded(rng) => faults && rng.range_u64(0, 12) == 0,
            Self::Replay { decisions, pos } => {
                if decisions.get(*pos) == Some(&Decision::Disconnect) {
                    *pos += 1;
                    true
                } else {
                    false
                }
            }
        }
    }
}

fn run_world(
    cfg: &SimConfig,
    crash: Option<CrashPlan>,
    fsync_error_at: Option<u64>,
    mut schedule: Schedule,
) -> Result<RunOutcome, SimFailure> {
    let fail = |message: String| SimFailure {
        seed: cfg.seed,
        crash,
        conn_faults: cfg.conn_faults,
        fsync_error_at,
        message,
    };
    let mut w = World::new(cfg, crash, fsync_error_at);
    let mut steps = 0u64;
    loop {
        if steps > STEP_LIMIT {
            return Err(fail(format!("no progress after {STEP_LIMIT} decisions (livelock)")));
        }
        if w.crashed {
            break;
        }
        if !w.drain_started && w.all_clients_done() {
            // Not a decision: the daemon drains exactly when the offered
            // load ends, under every schedule.
            w.queue.begin_drain();
            w.drain_started = true;
        }
        let runnable = w.runnable();
        if runnable.is_empty() {
            if w.workers.iter().all(|x| x.done) && w.all_clients_done() {
                break;
            }
            match w.earliest_deadline() {
                Some(t) => {
                    let t = t.max(w.clock.now_us());
                    w.clock.advance_to(t);
                    w.decisions.push(Decision::Advance(t));
                    continue;
                }
                None => {
                    return Err(fail(
                        "deadlock: no runnable actor, no pending timer, world not done".into(),
                    ));
                }
            }
        }
        let actor = schedule.pick(&runnable).map_err(&fail)?;
        w.decisions.push(Decision::Step(actor));
        steps += 1;
        let res = match actor {
            Actor::Client(c) => w.step_client(c as usize, &mut schedule),
            Actor::Worker(wk) => w.step_worker(wk as usize),
        };
        res.map_err(&fail)?;
    }

    let crash_report = if w.crashed {
        let plan = w.crash_plan.expect("crashed without a plan");
        w.decisions.push(Decision::Crash(plan.cut));
        Some(w.crash_outcome().map_err(&fail)?)
    } else {
        // Clean shutdown: the full exactly-once ledger must balance.
        w.stats.check_balanced().map_err(&fail)?;
        if !w.queue.drained() {
            return Err(fail("queue not drained at clean shutdown".into()));
        }
        // Durable-ack invariant, under every fault plan: a job was acked
        // only if its completion record sits inside the *synced* prefix.
        // This is the check the feature-gated ack-before-fsync bug trips.
        let mut durable_completes: BTreeSet<u64> = BTreeSet::new();
        for rec in &w.wal.records[..w.wal.synced_len] {
            if rec.rec_type == REC_COMPLETE {
                durable_completes.insert(record_job_id(rec).map_err(&fail)?);
            }
        }
        for id in &w.acked {
            if !durable_completes.contains(id) {
                return Err(fail(format!(
                    "acked job {id} has no durable completion record in the synced prefix \
                     (ack must not outrun the fsync)"
                )));
            }
        }
        if w.wal.appends_after_fail > 0 {
            return Err(fail(format!(
                "{} WAL appends after the journal fail-stopped",
                w.wal.appends_after_fail
            )));
        }
        for (id, count) in &w.executed {
            if *count != 1 {
                return Err(fail(format!("job {id} executed {count} times (want exactly 1)")));
            }
        }
        if cfg.conn_faults || fsync_error_at.is_some() {
            // Faulty worlds may lose clients to disconnects and refuse
            // jobs after a fail-stop, but every *surviving* client must
            // have had each of its jobs either acked or refused — no
            // hangs, no losses.
            for (i, c) in w.clients.iter().enumerate() {
                if matches!(c.phase, Phase::Done)
                    && c.acked_jobs + c.refused_jobs != cfg.jobs_per_client
                {
                    return Err(fail(format!(
                        "client {i} finished with {} acked + {} refused of {} jobs",
                        c.acked_jobs, c.refused_jobs, cfg.jobs_per_client
                    )));
                }
            }
        } else {
            let total_jobs = (cfg.clients * cfg.jobs_per_client) as u64;
            if w.acked.len() as u64 != total_jobs {
                return Err(fail(format!(
                    "{} of {total_jobs} jobs acknowledged at clean shutdown",
                    w.acked.len()
                )));
            }
        }
        None
    };

    let stats = w.snapshot();
    let events = w.ring.text_tail(usize::MAX);
    Ok(RunOutcome {
        trace: Trace { decisions: w.decisions },
        stats,
        appends: w.wal.appends,
        syncs: w.wal.syncs,
        append_sync_floor: w.wal.sync_floor.clone(),
        acked: w.acked,
        events,
        crash: crash_report,
        steps,
        deliveries: w.deliveries,
        partial_deliveries: w.partial_deliveries,
        disconnects: w.disconnects,
        replies_unsent: w.replies_unsent,
        fail_stopped: w.wal.failed.is_some(),
    })
}

/// Run one seeded schedule (optionally with an injected crash and/or an
/// injected fsync error at the `fsync_error_at`-th sync attempt),
/// checking every invariant.
///
/// # Errors
///
/// A [`SimFailure`] carrying the reproducer seed (and fault plan).
pub fn run(
    cfg: &SimConfig,
    crash: Option<CrashPlan>,
    fsync_error_at: Option<u64>,
) -> Result<RunOutcome, SimFailure> {
    run_world(cfg, crash, fsync_error_at, Schedule::Seeded(Rng::new(cfg.seed)))
}

/// Replay a recorded trace: scheduler and connection decisions come from
/// the trace instead of the seed's RNG, and the regenerated trace must be
/// bit-identical to the input.
///
/// # Errors
///
/// A [`SimFailure`] on divergence or any invariant violation.
pub fn replay_trace(
    cfg: &SimConfig,
    crash: Option<CrashPlan>,
    fsync_error_at: Option<u64>,
    trace: &Trace,
) -> Result<RunOutcome, SimFailure> {
    let out = run_world(
        cfg,
        crash,
        fsync_error_at,
        Schedule::Replay { decisions: trace.decisions.clone(), pos: 0 },
    )?;
    if &out.trace != trace {
        return Err(SimFailure {
            seed: cfg.seed,
            crash,
            conn_faults: cfg.conn_faults,
            fsync_error_at,
            message: "replay diverged: regenerated trace differs from input".into(),
        });
    }
    Ok(out)
}

/// What a seed-range exploration covered.
#[derive(Debug, Default, Clone, Copy)]
pub struct ExploreReport {
    /// Seeds explored.
    pub seeds: u64,
    /// Distinct schedules executed (clean runs + determinism re-runs +
    /// trace replays + crash scenarios + fsync-error scenarios).
    pub schedules: u64,
    /// Crash scenarios among them (one per reachable WAL cut point).
    pub crash_scenarios: u64,
    /// Fsync-error scenarios among them (one per reachable sync attempt).
    pub fsync_error_scenarios: u64,
    /// Scheduler decisions taken across all schedules.
    pub total_steps: u64,
    /// Connection delivery decisions across the base runs.
    pub deliveries: u64,
    /// Partial (framing-torture) deliveries across the base runs.
    pub partial_deliveries: u64,
    /// Injected disconnects across the base runs.
    pub disconnects: u64,
}

impl ExploreReport {
    /// The report as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("seeds", self.seeds);
        o.set("schedules", self.schedules);
        o.set("crash_scenarios", self.crash_scenarios);
        o.set("fsync_error_scenarios", self.fsync_error_scenarios);
        o.set("total_steps", self.total_steps);
        o.set("deliveries", self.deliveries);
        o.set("partial_deliveries", self.partial_deliveries);
        o.set("disconnects", self.disconnects);
        o
    }
}

/// Explore `seeds` seeded schedules starting at `seed0`.  Per seed: run
/// twice (bit-identical trace + stats required), replay the trace, sweep
/// a crash over every reachable WAL cut point — every append index,
/// every legal surviving prefix — and, when `fsync_errors` is set, sweep
/// an injected fsync failure over every sync attempt the clean run made.
///
/// Connection faults are controlled by `base.conn_faults` and apply to
/// every schedule explored.
///
/// # Errors
///
/// The first [`SimFailure`] found, reproducible from its message.
pub fn explore(
    base: &SimConfig,
    seed0: u64,
    seeds: u64,
    fsync_errors: bool,
) -> Result<ExploreReport, SimFailure> {
    let mut report = ExploreReport { seeds, ..ExploreReport::default() };
    for seed in seed0..seed0.saturating_add(seeds) {
        let mut cfg = base.clone();
        cfg.seed = seed;
        let first = run(&cfg, None, None)?;
        let second = run(&cfg, None, None)?;
        report.schedules += 2;
        report.total_steps += first.steps + second.steps;
        report.deliveries += first.deliveries;
        report.partial_deliveries += first.partial_deliveries;
        report.disconnects += first.disconnects;
        if first.trace != second.trace
            || first.stats != second.stats
            || first.events != second.events
        {
            return Err(SimFailure {
                seed,
                crash: None,
                conn_faults: cfg.conn_faults,
                fsync_error_at: None,
                message: "nondeterminism: two runs of the same seed diverged".into(),
            });
        }
        let replayed = replay_trace(&cfg, None, None, &first.trace)?;
        report.schedules += 1;
        report.total_steps += replayed.steps;
        for k in 1..=first.appends {
            let floor = first.append_sync_floor[(k - 1) as usize];
            for cut in floor..=k {
                let out = run(&cfg, Some(CrashPlan { after_append: k, cut }), None)?;
                report.schedules += 1;
                report.crash_scenarios += 1;
                report.total_steps += out.steps;
            }
        }
        if fsync_errors {
            // The faulted run shares the clean run's schedule prefix up
            // to the failing sync, so every attempt 1..=syncs is
            // reachable and must end in a clean fail-stop.
            for s in 1..=first.syncs {
                let out = run(&cfg, None, Some(s))?;
                report.schedules += 1;
                report.fsync_error_scenarios += 1;
                report.total_steps += out.steps;
                if !out.fail_stopped {
                    return Err(SimFailure {
                        seed,
                        crash: None,
                        conn_faults: cfg.conn_faults,
                        fsync_error_at: Some(s),
                        message: format!(
                            "injected fsync error at sync {s} did not fail-stop the journal"
                        ),
                    });
                }
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_is_bit_identical() {
        let cfg = SimConfig::new(42);
        let a = run(&cfg, None, None).unwrap();
        let b = run(&cfg, None, None).unwrap();
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.acked, b.acked);
        assert_eq!(a.events, b.events, "virtual-time event streams diverged");
        assert!(!a.events.is_empty(), "a run that acked jobs must record stage events");
        for stage in ["accepted", "journaled", "enqueued", "assembled", "executed", "reply_written"]
        {
            assert!(a.events.contains(stage), "event stream is missing stage {stage:?}");
        }
        assert!(a.appends > 0);
        assert!(a.syncs > 0);
        // Even fault-free runs route every request through the simulated
        // connection, so delivery decisions appear in the trace.
        assert!(a.deliveries > 0, "no connection deliveries recorded");
        assert!(a.trace.to_string().contains('f'), "no deliver tokens in the trace");
        assert_eq!(a.disconnects, 0, "fault-free run must not disconnect");
    }

    #[test]
    fn different_seeds_take_different_schedules() {
        let a = run(&SimConfig::new(1), None, None).unwrap();
        let b = run(&SimConfig::new(2), None, None).unwrap();
        assert_ne!(a.trace, b.trace, "two seeds, one schedule: RNG not wired in");
    }

    #[test]
    fn trace_replays_bit_identically() {
        let cfg = SimConfig::new(7);
        let out = run(&cfg, None, None).unwrap();
        let replayed = replay_trace(&cfg, None, None, &out.trace).unwrap();
        assert_eq!(replayed.trace, out.trace);
        assert_eq!(replayed.stats, out.stats);
        assert_eq!(replayed.events, out.events, "replay must reproduce the event stream");
        // And survives a round-trip through the textual grammar.
        let parsed = Trace::parse(&out.trace.to_string()).unwrap();
        assert_eq!(parsed, out.trace);
    }

    #[test]
    fn clean_run_acks_every_job_exactly_once() {
        let cfg = SimConfig::new(1234);
        let out = run(&cfg, None, None).unwrap();
        assert_eq!(out.acked.len(), cfg.clients * cfg.jobs_per_client);
        let mut sorted = out.acked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), out.acked.len(), "no job acked twice");
        assert!(out.crash.is_none());
        assert!(!out.fail_stopped);
    }

    #[test]
    fn crash_sweep_over_every_cut_point_holds_invariants() {
        let cfg = SimConfig::new(99);
        let base = run(&cfg, None, None).unwrap();
        let mut scenarios = 0;
        for k in 1..=base.appends {
            let floor = base.append_sync_floor[(k - 1) as usize];
            for cut in floor..=k {
                let out = run(&cfg, Some(CrashPlan { after_append: k, cut }), None).unwrap();
                let c = out.crash.expect("crash plan must fire");
                assert_eq!(c.cut, cut);
                assert_eq!(c.second_life_executed, c.requeued);
                scenarios += 1;
            }
        }
        assert!(scenarios > base.appends, "sweep must include unsynced-window cuts");
    }

    /// The tentpole's connection-fault path: partial deliveries, probes
    /// racing submits, and disconnects all occur across a small seed
    /// range; every faulted schedule is bit-identical on re-run and
    /// replays from its trace.
    #[test]
    fn conn_fault_runs_are_deterministic_and_replayable() {
        let mut partial = 0u64;
        let mut drops = 0u64;
        let mut unsent = 0u64;
        for seed in 0..12u64 {
            let mut cfg = SimConfig::new(seed);
            cfg.conn_faults = true;
            let a = run(&cfg, None, None).unwrap();
            let b = run(&cfg, None, None).unwrap();
            assert_eq!(a.trace, b.trace, "seed {seed}: conn-fault schedule not deterministic");
            assert_eq!(a.stats, b.stats, "seed {seed}: stats diverged");
            assert_eq!(a.events, b.events, "seed {seed}: events diverged");
            let replayed = replay_trace(&cfg, None, None, &a.trace).unwrap();
            assert_eq!(replayed.stats, a.stats, "seed {seed}: replay diverged");
            partial += a.partial_deliveries;
            drops += a.disconnects;
            unsent += a.replies_unsent;
        }
        assert!(partial > 0, "fault exploration never split a delivery");
        assert!(drops > 0, "fault exploration never dropped a connection");
        assert!(unsent > 0, "fault exploration never orphaned a finished reply");
    }

    /// Mid-submit and mid-reply disconnects leave the server's ledger
    /// balanced (check_balanced runs at clean end) and are visible in
    /// the stats snapshot's connections section.
    #[test]
    fn disconnects_show_up_in_stats_and_stay_balanced() {
        let mut saw_disconnect_stat = false;
        for seed in 0..20u64 {
            let mut cfg = SimConfig::new(seed);
            cfg.conn_faults = true;
            let out = run(&cfg, None, None).unwrap();
            if out.disconnects > 0 && out.stats.contains("\"disconnects\"") {
                saw_disconnect_stat = true;
            }
        }
        assert!(saw_disconnect_stat, "no seed surfaced disconnect counters in stats");
    }

    /// The fsync-error sweep: fail every sync attempt the clean run made
    /// and require a clean fail-stop — waiters errored (not hung, the
    /// run terminates), no job acked without a durable completion, no
    /// appends after the failure, durable prefix frozen.
    #[test]
    fn fsync_error_sweep_fail_stops_cleanly() {
        let cfg = SimConfig::new(5);
        let base = run(&cfg, None, None).unwrap();
        assert!(base.syncs >= 2, "world too small to exercise fsync errors");
        for s in 1..=base.syncs {
            let out = run(&cfg, None, Some(s)).unwrap();
            assert!(out.fail_stopped, "sync {s}: injected error did not fail-stop");
            assert!(
                out.acked.len() < cfg.clients * cfg.jobs_per_client,
                "sync {s}: every job acked despite a failed fsync"
            );
            assert!(out.stats.contains("\"fail_stopped\":true"), "sync {s}: {}", out.stats);
            // The faulted schedule replays bit-identically too.
            let replayed = replay_trace(&cfg, None, Some(s), &out.trace).unwrap();
            assert_eq!(replayed.stats, out.stats, "sync {s}: replay diverged");
        }
    }

    /// Fsync errors and connection faults compose: the fail-stop
    /// invariants hold even while deliveries are split and peers drop.
    #[test]
    fn fsync_errors_compose_with_conn_faults() {
        for seed in 0..6u64 {
            let mut cfg = SimConfig::new(seed);
            cfg.conn_faults = true;
            let base = run(&cfg, None, None).unwrap();
            for s in 1..=base.syncs {
                let out = run(&cfg, None, Some(s)).unwrap();
                assert!(out.fail_stopped, "seed {seed} sync {s}: no fail-stop");
            }
        }
    }

    #[test]
    fn explore_counts_schedules_and_stays_clean() {
        let rep = explore(&SimConfig::new(0), 1, 3, false).unwrap();
        assert_eq!(rep.seeds, 3);
        assert!(rep.crash_scenarios > 0);
        assert!(rep.schedules > rep.crash_scenarios);
        assert_eq!(rep.fsync_error_scenarios, 0);
        assert!(rep.deliveries > 0);
    }

    #[test]
    fn explore_with_faults_counts_fault_scenarios() {
        let mut base = SimConfig::new(0);
        base.conn_faults = true;
        let rep = explore(&base, 1, 3, true).unwrap();
        assert!(rep.fsync_error_scenarios > 0, "no fsync-error scenarios explored");
        assert!(rep.partial_deliveries > 0, "no partial deliveries explored");
    }

    #[test]
    fn failure_message_carries_the_reproducer() {
        let f = SimFailure {
            seed: 77,
            crash: Some(CrashPlan { after_append: 5, cut: 4 }),
            conn_faults: false,
            fsync_error_at: None,
            message: "boom".into(),
        };
        let text = f.to_string();
        assert!(text.contains("seed 77"), "{text}");
        assert!(text.contains("--replay 77"), "{text}");
        assert!(text.contains("--crash-at 5"), "{text}");
        assert!(!text.contains("--conn-faults"), "{text}");
        let f = SimFailure {
            seed: 9,
            crash: None,
            conn_faults: true,
            fsync_error_at: Some(3),
            message: "boom".into(),
        };
        let text = f.to_string();
        assert!(text.contains("--replay 9"), "{text}");
        assert!(text.contains("--conn-faults"), "{text}");
        assert!(text.contains("--fsync-fail-at 3"), "{text}");
    }
}
