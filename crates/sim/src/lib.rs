//! # sim — deterministic simulation testing for `bulkd`
//!
//! FoundationDB-style schedule exploration for the batch-serving daemon:
//! the *real* [`bulkd::CoalescingQueue`], the real crash-recovery
//! [`bulkd::journal::replay`] logic, and the real [`bulkd::ServerStats`]
//! accounting run single-threaded on a [`bulkd::VirtualClock`], with a
//! seeded [`obs::Rng`] deciding which runnable actor (client or worker)
//! steps next.  Every run is a pure function of its seed:
//!
//! - every nondeterminism decision is recorded to a compact
//!   [`trace::Trace`] that replays bit-identically;
//! - the WAL is modelled at record granularity with an explicit durable
//!   prefix, so a crash can be injected after *every* append with *every*
//!   legal surviving cut (synced prefix ≤ cut ≤ appended length) —
//!   including between a group-commit append and its fsync;
//! - recovery runs the daemon's own `replay` over the survivors and a
//!   "second life" re-executes what it requeues, checking the
//!   exactly-once contract: an acknowledged job is never re-executed.
//!
//! A failure carries its reproducer — the seed (plus crash point) that
//! deterministically replays it — in the error message.
//!
//! The workload streams (instance counts, input words, think times) are
//! derived from `(seed, client)` independently of the schedule stream, so
//! the *same* work is offered under every interleaving a seed range
//! explores.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod trace;

use bulkd::clock::{Clock, Scheduler, SimScheduler, VirtualClock};
use bulkd::journal::{complete_payload, submit_payload, REC_COMPLETE, REC_SUBMIT};
use bulkd::queue::{
    CoalescingQueue, Job, JobDone, JobReply, QueueConfig, StageBreakdown, StageStamps, SubmitError,
    TryNext,
};
use bulkd::{JobKey, ServerStats};
use obs::{Json, Ring, Rng};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{mpsc, Arc};
use std::time::Duration;
use trace::{Actor, Decision, Trace};
use wal::record::Record;

/// Tunables of one simulated world.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The seed: the run is a pure function of it (given the same config).
    pub seed: u64,
    /// Client actors, each submitting [`SimConfig::jobs_per_client`] jobs.
    pub clients: usize,
    /// Worker actors consuming coalesced batches.
    pub workers: usize,
    /// Jobs each client submits before finishing.
    pub jobs_per_client: usize,
    /// Queue size-flush trigger (instances).
    pub max_batch: usize,
    /// Queue admission bound (instances) — small enough that overload
    /// backoff paths get exercised.
    pub max_queue: usize,
    /// Queue deadline-flush trigger, in virtual microseconds.
    pub flush_after_us: u64,
}

impl SimConfig {
    /// The default small world for `seed`: 3 clients × 2 workers × 4 jobs.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            clients: 3,
            workers: 2,
            jobs_per_client: 4,
            max_batch: 4,
            max_queue: 8,
            flush_after_us: 2_000,
        }
    }
}

/// A crash injection point: stop the world immediately after WAL append
/// number `after_append` (1-based), with the first `cut` records
/// surviving.  `cut` must lie between the durable prefix at that moment
/// and the appended length — fsynced records cannot be lost, unsynced
/// ones may or may not survive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Crash right after this append (1-based count of appends).
    pub after_append: u64,
    /// Records surviving the crash (a prefix length).
    pub cut: u64,
}

/// What recovering from an injected crash yielded (all invariants held).
#[derive(Debug, Clone, Copy)]
pub struct CrashOutcome {
    /// Surviving records.
    pub cut: u64,
    /// Jobs the real `replay` requeued.
    pub requeued: u64,
    /// Jobs `replay` recognized as already completed.
    pub already_completed: u64,
    /// Jobs the second life re-executed (must equal `requeued`).
    pub second_life_executed: u64,
}

/// One completed simulated run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Every nondeterminism decision, in order.
    pub trace: Trace,
    /// The final stats snapshot (compact JSON) — bit-identical across
    /// runs of the same seed.
    pub stats: String,
    /// Total WAL appends the run performed.
    pub appends: u64,
    /// For each append `k` (index `k-1`): the durable prefix length just
    /// before it — the lower bound of crash cuts at that append.
    pub append_sync_floor: Vec<u64>,
    /// Job ids acknowledged to clients, in ack order.
    pub acked: Vec<u64>,
    /// The flight-recorder event stream (one [`obs::RingEvent`] text line
    /// per stage event, in stamp order) — recorded on the virtual clock
    /// with the daemon's stage names, so it is bit-identical across runs
    /// and replays of the same seed.
    pub events: String,
    /// Crash recovery report when a [`CrashPlan`] was active.
    pub crash: Option<CrashOutcome>,
    /// Scheduler decisions taken (a cost proxy).
    pub steps: u64,
}

/// A failed run, carrying its deterministic reproducer.
#[derive(Debug, Clone)]
pub struct SimFailure {
    /// The seed that produces the failure.
    pub seed: u64,
    /// The crash injection active when it failed, if any.
    pub crash: Option<CrashPlan>,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SimFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sim failure at seed {}", self.seed)?;
        if let Some(c) = &self.crash {
            write!(f, " (crash after append {}, cut {})", c.after_append, c.cut)?;
        }
        write!(f, ": {}", self.message)?;
        write!(f, "\nreproduce: bulkrun sim --replay {}", self.seed)?;
        if let Some(c) = &self.crash {
            write!(f, " --crash-at {}", c.after_append)?;
        }
        Ok(())
    }
}

/// The deterministic "executor": what a batch does to each input word.
/// Clients precompute the expected outputs and assert the reply matches,
/// so cross-wired or duplicated replies are caught.
#[must_use]
pub fn exec_word(w: u64) -> u64 {
    w.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(0xD1B5_4A32_D192_ED03)
}

/// Record-level WAL model: an append-only record list with an explicit
/// durable prefix.  `append` leaves records unsynced (page cache);
/// `sync` extends the durable prefix to the full length — exactly the
/// group-commit shape, so a crash between the two is representable.
#[derive(Debug, Default)]
struct SimWal {
    records: Vec<Record>,
    synced_len: usize,
    next_seq: u64,
    appends: u64,
    syncs: u64,
    sync_floor: Vec<u64>,
}

impl SimWal {
    fn new() -> Self {
        Self { next_seq: 1, ..Self::default() }
    }

    /// Append unsynced; returns the total append count (for crash
    /// triggers).
    fn append(&mut self, rec_type: u8, payload: Vec<u8>) -> u64 {
        self.sync_floor.push(self.synced_len as u64);
        self.records.push(Record { seq: self.next_seq, rec_type, payload });
        self.next_seq += 1;
        self.appends += 1;
        self.appends
    }

    /// One group fsync: everything appended so far becomes durable.
    fn sync(&mut self) {
        if self.synced_len < self.records.len() {
            self.syncs += 1;
            self.synced_len = self.records.len();
        }
    }

    fn stats_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("enabled", true);
        o.set("model", "sim");
        o.set("records_appended", self.appends);
        o.set("fsyncs", self.syncs);
        o.set("synced_records", self.synced_len);
        o
    }
}

#[derive(Debug)]
enum Phase {
    /// Ready to submit job number `job` (0-based within the client).
    Submit { job: usize },
    /// Waiting for the reply to the in-flight job.
    Await { job: usize },
    /// Thinking (post-ack) or backing off (post-overload) until the
    /// virtual clock reaches `until_us`, then submitting `job`.
    Pause { job: usize, until_us: u64 },
    /// All jobs acknowledged.
    Done,
}

struct PendingJob {
    key: JobKey,
    inputs: Vec<Vec<u64>>,
    expected: Vec<Vec<u64>>,
}

struct ClientState {
    phase: Phase,
    rng: Rng,
    pending: Option<PendingJob>,
    rx: Option<mpsc::Receiver<JobReply>>,
    in_flight_id: Option<u64>,
    reply_ready: bool,
}

struct WorkerState {
    done: bool,
    /// Eventcount snapshot + deadline from the last `Empty` poll.
    blocked: Option<(u64, Option<u64>)>,
}

const WORDS_PER_INSTANCE: usize = 2;
/// Hard cap on scheduler decisions — a livelock backstop far above any
/// legitimate run of the default world sizes.
const STEP_LIMIT: u64 = 1_000_000;
/// Flight-recorder capacity: ample for the default world sizes, so no
/// run loses events to wraparound and the stream stays comparable.
const SIM_RING_CAPACITY: usize = 65_536;

struct World {
    cfg: SimConfig,
    clock: Arc<VirtualClock>,
    sched: Arc<SimScheduler>,
    queue: CoalescingQueue,
    stats: ServerStats,
    wal: SimWal,
    /// The same flight recorder the real server writes, fed from the
    /// virtual clock — track 0 is the submit path, workers are 1-based,
    /// mirroring `bulkd::server`.
    ring: Ring,
    clients: Vec<ClientState>,
    workers: Vec<WorkerState>,
    owner: BTreeMap<u64, usize>,
    executed: BTreeMap<u64, u64>,
    acked: Vec<u64>,
    next_job_id: u64,
    crash_plan: Option<CrashPlan>,
    crashed: bool,
    decisions: Vec<Decision>,
    drain_started: bool,
}

impl World {
    fn new(cfg: &SimConfig, crash: Option<CrashPlan>) -> Self {
        let clock = Arc::new(VirtualClock::new());
        let sched = Arc::new(SimScheduler::new());
        let queue = CoalescingQueue::with_runtime(
            QueueConfig {
                max_batch: cfg.max_batch,
                max_queue: cfg.max_queue,
                flush_after: Duration::from_micros(cfg.flush_after_us),
            },
            Arc::<VirtualClock>::clone(&clock) as Arc<dyn Clock>,
            Arc::<SimScheduler>::clone(&sched) as Arc<dyn Scheduler>,
        );
        let clients = (0..cfg.clients)
            .map(|c| ClientState {
                phase: Phase::Submit { job: 0 },
                // Workload stream: derived from (seed, client), never from
                // the schedule — every interleaving sees the same offered
                // work.
                rng: Rng::new(cfg.seed ^ (c as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                pending: None,
                rx: None,
                in_flight_id: None,
                reply_ready: false,
            })
            .collect();
        let workers =
            (0..cfg.workers).map(|_| WorkerState { done: false, blocked: None }).collect();
        Self {
            cfg: cfg.clone(),
            clock,
            sched,
            queue,
            stats: ServerStats::new(),
            wal: SimWal::new(),
            ring: Ring::with_capacity(SIM_RING_CAPACITY),
            clients,
            workers,
            owner: BTreeMap::new(),
            executed: BTreeMap::new(),
            acked: Vec::new(),
            next_job_id: 1,
            crash_plan: crash,
            crashed: false,
            decisions: Vec::new(),
            drain_started: false,
        }
    }

    /// Append to the WAL model and fire the crash plan when its append
    /// count is reached.  Returns `true` when the world just crashed —
    /// the caller must abandon its step immediately (no sync, no enqueue,
    /// no reply: exactly what `kill -9` at that instruction would do).
    fn wal_append(&mut self, rec_type: u8, payload: Vec<u8>) -> bool {
        let n = self.wal.append(rec_type, payload);
        if let Some(plan) = &self.crash_plan {
            if n == plan.after_append {
                self.crashed = true;
                return true;
            }
        }
        false
    }

    fn runnable(&self) -> Vec<Actor> {
        let now = self.clock.now_us();
        let epoch = self.sched.epoch();
        let mut r = Vec::new();
        for (i, c) in self.clients.iter().enumerate() {
            let ready = match &c.phase {
                Phase::Submit { .. } => true,
                Phase::Pause { until_us, .. } => now >= *until_us,
                Phase::Await { .. } => c.reply_ready,
                Phase::Done => false,
            };
            if ready {
                r.push(Actor::Client(i as u32));
            }
        }
        for (i, w) in self.workers.iter().enumerate() {
            if w.done {
                continue;
            }
            let ready = match &w.blocked {
                None => true,
                Some((e, dl)) => *e != epoch || dl.is_some_and(|d| now >= d),
            };
            if ready {
                r.push(Actor::Worker(i as u32));
            }
        }
        r
    }

    /// The earliest virtual instant at which a currently-blocked actor
    /// becomes runnable by time alone.
    fn earliest_deadline(&self) -> Option<u64> {
        let mut min: Option<u64> = None;
        let mut fold = |t: u64| min = Some(min.map_or(t, |m| m.min(t)));
        for c in &self.clients {
            if let Phase::Pause { until_us, .. } = &c.phase {
                fold(*until_us);
            }
        }
        for w in &self.workers {
            if let Some((_, Some(d))) = &w.blocked {
                fold(*d);
            }
        }
        min
    }

    fn all_clients_done(&self) -> bool {
        self.clients.iter().all(|c| matches!(c.phase, Phase::Done))
    }

    fn step_client(&mut self, idx: usize) -> Result<(), String> {
        let now = self.clock.now_us();
        let phase = std::mem::replace(&mut self.clients[idx].phase, Phase::Done);
        match phase {
            Phase::Pause { job, until_us } => {
                debug_assert!(now >= until_us, "paused client stepped early");
                self.clients[idx].phase = Phase::Submit { job };
                self.submit(idx)
            }
            Phase::Submit { job } => {
                self.clients[idx].phase = Phase::Submit { job };
                self.submit(idx)
            }
            Phase::Await { job } => {
                self.clients[idx].phase = Phase::Await { job };
                self.receive(idx)
            }
            Phase::Done => Err(format!("client {idx} stepped after Done")),
        }
    }

    /// One submit attempt: reserve → journal (durable) → enqueue, the
    /// daemon's two-phase admission, against the real queue.
    fn submit(&mut self, idx: usize) -> Result<(), String> {
        let Phase::Submit { job } = self.clients[idx].phase else {
            return Err("submit in wrong phase".into());
        };
        // Draw the workload lazily, once per job — overload retries
        // re-offer the identical job without consuming workload draws.
        if self.clients[idx].pending.is_none() {
            let c = &mut self.clients[idx];
            let instances = 1 + c.rng.range_u64(0, 3) as usize;
            let size = if c.rng.range_u64(0, 2) == 0 { 8 } else { 16 };
            let inputs: Vec<Vec<u64>> = (0..instances)
                .map(|_| (0..WORDS_PER_INSTANCE).map(|_| c.rng.next_u64()).collect())
                .collect();
            let expected =
                inputs.iter().map(|i| i.iter().copied().map(exec_word).collect()).collect();
            let key = JobKey { algo: "sim".into(), size, layout: oblivious::Layout::ColumnWise };
            c.pending = Some(PendingJob { key, inputs, expected });
        }
        let n = self.clients[idx].pending.as_ref().map_or(0, |p| p.inputs.len());
        self.stats.on_submit(n as u64);
        let adm = match self.queue.reserve(n) {
            Ok(adm) => adm,
            Err(SubmitError::Overloaded { retry_after_ms }) => {
                self.stats.on_reject(n as u64);
                let now = self.clock.now_us();
                self.clients[idx].phase =
                    Phase::Pause { job, until_us: now + retry_after_ms * 1_000 };
                return Ok(());
            }
            Err(SubmitError::Draining) => {
                return Err("queue draining while clients still live".into());
            }
        };
        let id = self.next_job_id;
        self.next_job_id += 1;
        // Trace context: the same stage events the real server records,
        // stamped on the virtual clock (track 0 = the submit path).
        let accepted_us = self.clock.now_us();
        self.ring.record(accepted_us, 0, "accepted", id, n as i64);
        let payload = {
            let p = self.clients[idx].pending.as_ref().expect("pending drawn above");
            submit_payload(id, &p.key, &p.inputs)
        };
        if self.wal_append(REC_SUBMIT, payload) {
            // Crashed mid-submit: reservation and id die with the process.
            return Ok(());
        }
        self.wal.sync();
        let journaled_us = self.clock.now_us();
        self.ring.record(journaled_us, 0, "journaled", id, 0);
        let (key, inputs) = {
            let p = self.clients[idx].pending.as_ref().expect("pending drawn above");
            (p.key.clone(), p.inputs.clone())
        };
        let (tx, rx) = mpsc::channel();
        let enqueued_us = self.clock.now_us();
        let mut queued = Job::new(id, inputs, enqueued_us, tx);
        queued.stages = StageStamps { accepted_us, journaled_us, assembled_us: 0 };
        self.queue.enqueue(adm, key, queued);
        self.ring.record(enqueued_us, 0, "enqueued", id, 0);
        self.stats.on_accept(n as u64);
        self.owner.insert(id, idx);
        let c = &mut self.clients[idx];
        c.rx = Some(rx);
        c.in_flight_id = Some(id);
        c.phase = Phase::Await { job };
        Ok(())
    }

    fn receive(&mut self, idx: usize) -> Result<(), String> {
        let Phase::Await { job } = self.clients[idx].phase else {
            return Err("receive in wrong phase".into());
        };
        let reply = match self.clients[idx].rx.as_ref().map(mpsc::Receiver::try_recv) {
            Some(Ok(r)) => r,
            Some(Err(_)) | None => {
                // Spurious wake: keep waiting.
                self.clients[idx].reply_ready = false;
                return Ok(());
            }
        };
        let id = self.clients[idx].in_flight_id.ok_or("reply with no in-flight job")?;
        let done: JobDone = reply.map_err(|e| format!("job {id} failed in sim executor: {e}"))?;
        {
            let c = &self.clients[idx];
            let expected = &c.pending.as_ref().ok_or("reply with no pending job")?.expected;
            if &done.outputs != expected {
                return Err(format!("job {id}: outputs do not match the executor function"));
            }
        }
        let total = done.breakdown.as_ref().map_or(0, |b| b.total_us as i64);
        self.ring.record(self.clock.now_us(), 0, "reply_written", id, total);
        self.acked.push(id);
        let next = job + 1;
        let c = &mut self.clients[idx];
        c.pending = None;
        c.rx = None;
        c.in_flight_id = None;
        c.reply_ready = false;
        if next >= self.cfg.jobs_per_client {
            c.phase = Phase::Done;
        } else {
            let think = c.rng.range_u64(0, self.cfg.flush_after_us * 2 + 1);
            c.phase = Phase::Pause { job: next, until_us: self.clock.now_us() + think };
        }
        Ok(())
    }

    fn step_worker(&mut self, idx: usize) -> Result<(), String> {
        // Eventcount discipline: snapshot BEFORE polling the queue.
        let epoch = self.sched.epoch();
        match self.queue.try_next_batch() {
            TryNext::Batch(batch) => {
                self.workers[idx].blocked = None;
                let track = idx as u32 + 1;
                let t0 = self.clock.now_us();
                let p = batch.instances();
                for job in &batch.jobs {
                    self.ring.record(
                        job.stages.assembled_us,
                        track,
                        "assembled",
                        job.id,
                        job.inputs.len() as i64,
                    );
                }
                // Deterministic virtual execution cost.
                let exec_us = 20 + 5 * p as u64;
                self.clock.advance(exec_us);
                self.ring.record(self.clock.now_us(), track, "executed", 0, p as i64);
                self.stats.on_batch(p as u64, exec_us);
                // Group commit: append every completion unsynced, then one
                // fsync covers the batch.  A crash between lands cuts
                // strictly inside the unsynced window.
                for job in &batch.jobs {
                    let outputs: Vec<Vec<u64>> = job
                        .inputs
                        .iter()
                        .map(|i| i.iter().copied().map(exec_word).collect())
                        .collect();
                    if self.wal_append(REC_COMPLETE, complete_payload(job.id, Ok(&outputs))) {
                        return Ok(());
                    }
                }
                self.wal.sync();
                for job in batch.jobs {
                    let n = job.inputs.len() as u64;
                    let queue_us = t0.saturating_sub(job.enqueued_us);
                    let outputs: Vec<Vec<u64>> = job
                        .inputs
                        .iter()
                        .map(|i| i.iter().copied().map(exec_word).collect())
                        .collect();
                    *self.executed.entry(job.id).or_insert(0) += 1;
                    let done_us = self.clock.now_us();
                    self.ring.record(done_us, track, "completion_journaled", job.id, 0);
                    let breakdown = StageBreakdown {
                        journal_us: job.stages.journaled_us.saturating_sub(job.stages.accepted_us),
                        queue_us: job.stages.assembled_us.saturating_sub(job.enqueued_us),
                        dispatch_us: t0.saturating_sub(job.stages.assembled_us),
                        exec_us,
                        finalize_us: done_us.saturating_sub(t0.saturating_add(exec_us)),
                        total_us: done_us.saturating_sub(job.stages.accepted_us),
                    };
                    self.stats.on_job_done(&batch.key, n, queue_us, false, &breakdown);
                    let _ = job.reply.send(Ok(JobDone {
                        outputs,
                        batch_p: p,
                        queue_us,
                        exec_us,
                        breakdown: Some(breakdown),
                    }));
                    if let Some(&client) = self.owner.get(&job.id) {
                        self.clients[client].reply_ready = true;
                    }
                }
                self.queue.batch_done();
                Ok(())
            }
            TryNext::Empty { next_deadline_us } => {
                self.workers[idx].blocked = Some((epoch, next_deadline_us));
                Ok(())
            }
            TryNext::Drained => {
                self.workers[idx].done = true;
                Ok(())
            }
        }
    }

    fn snapshot(&self) -> String {
        self.stats
            .snapshot(
                self.queue.depth(),
                &self.queue.per_key_depth(),
                self.clock.now_us(),
                (0, 0),
                Some(self.wal.stats_json()),
            )
            .to_compact()
    }

    /// Post-crash: recover via the daemon's real `replay`, check every
    /// durability invariant, then run the "second life" that re-executes
    /// the requeued jobs.
    fn crash_outcome(&self) -> Result<CrashOutcome, String> {
        let plan = self.crash_plan.expect("crash outcome without a plan");
        let cut = plan.cut as usize;
        if cut < self.wal.synced_len || cut > self.wal.records.len() {
            return Err(format!(
                "invalid cut {cut}: durable prefix is {}, appended length {}",
                self.wal.synced_len,
                self.wal.records.len()
            ));
        }
        let survivors = &self.wal.records[..cut];
        let recovery = bulkd::journal::replay(survivors)
            .map_err(|e| format!("recovery replay rejected surviving records: {e}"))?;
        let mut durable_submits: BTreeSet<u64> = BTreeSet::new();
        let mut durable_completes: BTreeSet<u64> = BTreeSet::new();
        for rec in survivors {
            let text = std::str::from_utf8(&rec.payload)
                .map_err(|e| format!("survivor seq {}: {e}", rec.seq))?;
            let j = Json::parse(text).map_err(|e| format!("survivor seq {}: {e}", rec.seq))?;
            let id = j
                .get("job")
                .and_then(Json::as_i64)
                .ok_or_else(|| format!("survivor seq {} has no job id", rec.seq))?
                as u64;
            match rec.rec_type {
                REC_SUBMIT => {
                    durable_submits.insert(id);
                }
                REC_COMPLETE => {
                    durable_completes.insert(id);
                }
                other => return Err(format!("survivor seq {} has type {other}", rec.seq)),
            }
        }
        // Invariant A: an acknowledged job's completion is durable, and
        // recovery never re-queues it — exactly-once as the client saw it.
        for id in &self.acked {
            if !durable_completes.contains(id) {
                return Err(format!(
                    "acked job {id} has no durable completion at cut {cut} \
                     (reply must not outrun the fsync)"
                ));
            }
            if recovery.requeue.iter().any(|r| r.id == *id) {
                return Err(format!(
                    "exactly-once violated: acked job {id} would be re-executed after recovery"
                ));
            }
        }
        // Invariant B: nothing executed without a durable submit record —
        // the enqueue-after-durable contract of two-phase admission.
        for id in self.executed.keys() {
            if !durable_submits.contains(id) {
                return Err(format!("job {id} executed without a durable submit record"));
            }
        }
        // Requeues come only from durable, uncompleted submits.
        for r in &recovery.requeue {
            if !durable_submits.contains(&r.id) {
                return Err(format!("recovery invented job {} from nowhere", r.id));
            }
        }
        // Fresh ids must start above everything durable.
        if let Some(&max_id) = durable_submits.iter().max() {
            if recovery.next_job_id <= max_id {
                return Err(format!(
                    "next_job_id {} collides with durable job {max_id}",
                    recovery.next_job_id
                ));
            }
        }
        let requeued = recovery.requeue.len() as u64;
        let already_completed = recovery.already_completed;
        let second_life_executed = self.second_life(recovery.requeue)?;
        if second_life_executed != requeued {
            return Err(format!(
                "second life executed {second_life_executed} of {requeued} requeued jobs"
            ));
        }
        Ok(CrashOutcome { cut: cut as u64, requeued, already_completed, second_life_executed })
    }

    /// The restarted daemon in miniature: requeue the recovered jobs on a
    /// fresh queue (unbounded admission, dropped reply channels — their
    /// submitters are gone) and drain them through one worker.
    fn second_life(&self, requeue: Vec<bulkd::journal::RecoveredJob>) -> Result<u64, String> {
        let clock = Arc::new(VirtualClock::new());
        let queue = CoalescingQueue::with_runtime(
            QueueConfig {
                max_batch: self.cfg.max_batch,
                max_queue: self.cfg.max_queue,
                flush_after: Duration::from_micros(self.cfg.flush_after_us),
            },
            clock as Arc<dyn Clock>,
            Arc::new(SimScheduler::new()) as Arc<dyn Scheduler>,
        );
        for job in requeue {
            let adm = queue.reserve_unbounded(job.inputs.len());
            let (tx, _rx) = mpsc::channel();
            queue.enqueue(adm, job.key, Job::new(job.id, job.inputs, 0, tx));
        }
        queue.begin_drain();
        let mut executed = 0u64;
        let mut guard = 0u64;
        loop {
            guard += 1;
            if guard > STEP_LIMIT {
                return Err("second life livelocked".into());
            }
            match queue.try_next_batch() {
                TryNext::Batch(b) => {
                    for job in &b.jobs {
                        if self.acked.contains(&job.id) {
                            return Err(format!(
                                "exactly-once violated: acked job {} re-executed in recovery",
                                job.id
                            ));
                        }
                        executed += 1;
                    }
                    queue.batch_done();
                }
                TryNext::Drained => break,
                TryNext::Empty { .. } => {
                    return Err("second life queue idle while draining".into());
                }
            }
        }
        if !queue.drained() {
            return Err("second life queue did not drain clean".into());
        }
        Ok(executed)
    }
}

/// How the main loop picks among runnable actors.
enum Schedule {
    Seeded(Rng),
    Replay { decisions: Vec<Decision>, pos: usize },
}

impl Schedule {
    fn pick(&mut self, runnable: &[Actor]) -> Result<Actor, String> {
        match self {
            Self::Seeded(rng) => Ok(runnable[rng.range_u64(0, runnable.len() as u64) as usize]),
            Self::Replay { decisions, pos } => {
                // Advance/Crash entries are deterministic consequences —
                // regenerated, not consumed.  Only Steps are decisions.
                while let Some(d) = decisions.get(*pos) {
                    *pos += 1;
                    if let Decision::Step(a) = d {
                        if !runnable.contains(a) {
                            return Err(format!(
                                "trace divergence: {a:?} is not runnable at this point"
                            ));
                        }
                        return Ok(*a);
                    }
                }
                Err("trace exhausted before the world finished".into())
            }
        }
    }
}

fn run_world(
    cfg: &SimConfig,
    crash: Option<CrashPlan>,
    mut schedule: Schedule,
) -> Result<RunOutcome, SimFailure> {
    let fail = |message: String| SimFailure { seed: cfg.seed, crash, message };
    let mut w = World::new(cfg, crash);
    let mut steps = 0u64;
    loop {
        if steps > STEP_LIMIT {
            return Err(fail(format!("no progress after {STEP_LIMIT} decisions (livelock)")));
        }
        if w.crashed {
            break;
        }
        if !w.drain_started && w.all_clients_done() {
            // Not a decision: the daemon drains exactly when the offered
            // load ends, under every schedule.
            w.queue.begin_drain();
            w.drain_started = true;
        }
        let runnable = w.runnable();
        if runnable.is_empty() {
            if w.workers.iter().all(|x| x.done) && w.all_clients_done() {
                break;
            }
            match w.earliest_deadline() {
                Some(t) => {
                    let t = t.max(w.clock.now_us());
                    w.clock.advance_to(t);
                    w.decisions.push(Decision::Advance(t));
                    continue;
                }
                None => {
                    return Err(fail(
                        "deadlock: no runnable actor, no pending timer, world not done".into(),
                    ));
                }
            }
        }
        let actor = schedule.pick(&runnable).map_err(&fail)?;
        w.decisions.push(Decision::Step(actor));
        steps += 1;
        let res = match actor {
            Actor::Client(c) => w.step_client(c as usize),
            Actor::Worker(wk) => w.step_worker(wk as usize),
        };
        res.map_err(&fail)?;
    }

    let crash_report = if w.crashed {
        let plan = w.crash_plan.expect("crashed without a plan");
        w.decisions.push(Decision::Crash(plan.cut));
        Some(w.crash_outcome().map_err(&fail)?)
    } else {
        // Clean shutdown: the full exactly-once ledger must balance.
        w.stats.check_balanced().map_err(&fail)?;
        if !w.queue.drained() {
            return Err(fail("queue not drained at clean shutdown".into()));
        }
        let total_jobs = (cfg.clients * cfg.jobs_per_client) as u64;
        if w.acked.len() as u64 != total_jobs {
            return Err(fail(format!(
                "{} of {total_jobs} jobs acknowledged at clean shutdown",
                w.acked.len()
            )));
        }
        for (id, count) in &w.executed {
            if *count != 1 {
                return Err(fail(format!("job {id} executed {count} times (want exactly 1)")));
            }
        }
        None
    };

    let stats = w.snapshot();
    let events = w.ring.text_tail(usize::MAX);
    Ok(RunOutcome {
        trace: Trace { decisions: w.decisions },
        stats,
        appends: w.wal.appends,
        append_sync_floor: w.wal.sync_floor.clone(),
        acked: w.acked,
        events,
        crash: crash_report,
        steps,
    })
}

/// Run one seeded schedule (optionally with an injected crash), checking
/// every invariant.
///
/// # Errors
///
/// A [`SimFailure`] carrying the reproducer seed (and crash point).
pub fn run(cfg: &SimConfig, crash: Option<CrashPlan>) -> Result<RunOutcome, SimFailure> {
    run_world(cfg, crash, Schedule::Seeded(Rng::new(cfg.seed)))
}

/// Replay a recorded trace: scheduler decisions come from the trace
/// instead of the seed's RNG, and the regenerated trace must be
/// bit-identical to the input.
///
/// # Errors
///
/// A [`SimFailure`] on divergence or any invariant violation.
pub fn replay_trace(
    cfg: &SimConfig,
    crash: Option<CrashPlan>,
    trace: &Trace,
) -> Result<RunOutcome, SimFailure> {
    let out =
        run_world(cfg, crash, Schedule::Replay { decisions: trace.decisions.clone(), pos: 0 })?;
    if &out.trace != trace {
        return Err(SimFailure {
            seed: cfg.seed,
            crash,
            message: "replay diverged: regenerated trace differs from input".into(),
        });
    }
    Ok(out)
}

/// What a seed-range exploration covered.
#[derive(Debug, Default, Clone, Copy)]
pub struct ExploreReport {
    /// Seeds explored.
    pub seeds: u64,
    /// Distinct schedules executed (clean runs + determinism re-runs +
    /// trace replays + crash scenarios).
    pub schedules: u64,
    /// Crash scenarios among them (one per reachable WAL cut point).
    pub crash_scenarios: u64,
    /// Scheduler decisions taken across all schedules.
    pub total_steps: u64,
}

impl ExploreReport {
    /// The report as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("seeds", self.seeds);
        o.set("schedules", self.schedules);
        o.set("crash_scenarios", self.crash_scenarios);
        o.set("total_steps", self.total_steps);
        o
    }
}

/// Explore `seeds` seeded schedules starting at `seed0`.  Per seed: run
/// twice (bit-identical trace + stats required), replay the trace, then
/// sweep a crash over every reachable WAL cut point — every append
/// index, every legal surviving prefix.
///
/// # Errors
///
/// The first [`SimFailure`] found, reproducible from its message.
pub fn explore(base: &SimConfig, seed0: u64, seeds: u64) -> Result<ExploreReport, SimFailure> {
    let mut report = ExploreReport { seeds, ..ExploreReport::default() };
    for seed in seed0..seed0.saturating_add(seeds) {
        let mut cfg = base.clone();
        cfg.seed = seed;
        let first = run(&cfg, None)?;
        let second = run(&cfg, None)?;
        report.schedules += 2;
        report.total_steps += first.steps + second.steps;
        if first.trace != second.trace
            || first.stats != second.stats
            || first.events != second.events
        {
            return Err(SimFailure {
                seed,
                crash: None,
                message: "nondeterminism: two runs of the same seed diverged".into(),
            });
        }
        let replayed = replay_trace(&cfg, None, &first.trace)?;
        report.schedules += 1;
        report.total_steps += replayed.steps;
        for k in 1..=first.appends {
            let floor = first.append_sync_floor[(k - 1) as usize];
            for cut in floor..=k {
                let out = run(&cfg, Some(CrashPlan { after_append: k, cut }))?;
                report.schedules += 1;
                report.crash_scenarios += 1;
                report.total_steps += out.steps;
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_is_bit_identical() {
        let cfg = SimConfig::new(42);
        let a = run(&cfg, None).unwrap();
        let b = run(&cfg, None).unwrap();
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.acked, b.acked);
        assert_eq!(a.events, b.events, "virtual-time event streams diverged");
        assert!(!a.events.is_empty(), "a run that acked jobs must record stage events");
        for stage in ["accepted", "journaled", "enqueued", "assembled", "executed", "reply_written"]
        {
            assert!(a.events.contains(stage), "event stream is missing stage {stage:?}");
        }
        assert!(a.appends > 0);
    }

    #[test]
    fn different_seeds_take_different_schedules() {
        let a = run(&SimConfig::new(1), None).unwrap();
        let b = run(&SimConfig::new(2), None).unwrap();
        assert_ne!(a.trace, b.trace, "two seeds, one schedule: RNG not wired in");
    }

    #[test]
    fn trace_replays_bit_identically() {
        let cfg = SimConfig::new(7);
        let out = run(&cfg, None).unwrap();
        let replayed = replay_trace(&cfg, None, &out.trace).unwrap();
        assert_eq!(replayed.trace, out.trace);
        assert_eq!(replayed.stats, out.stats);
        assert_eq!(replayed.events, out.events, "replay must reproduce the event stream");
        // And survives a round-trip through the textual grammar.
        let parsed = Trace::parse(&out.trace.to_string()).unwrap();
        assert_eq!(parsed, out.trace);
    }

    #[test]
    fn clean_run_acks_every_job_exactly_once() {
        let cfg = SimConfig::new(1234);
        let out = run(&cfg, None).unwrap();
        assert_eq!(out.acked.len(), cfg.clients * cfg.jobs_per_client);
        let mut sorted = out.acked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), out.acked.len(), "no job acked twice");
        assert!(out.crash.is_none());
    }

    #[test]
    fn crash_sweep_over_every_cut_point_holds_invariants() {
        let cfg = SimConfig::new(99);
        let base = run(&cfg, None).unwrap();
        let mut scenarios = 0;
        for k in 1..=base.appends {
            let floor = base.append_sync_floor[(k - 1) as usize];
            for cut in floor..=k {
                let out = run(&cfg, Some(CrashPlan { after_append: k, cut })).unwrap();
                let c = out.crash.expect("crash plan must fire");
                assert_eq!(c.cut, cut);
                assert_eq!(c.second_life_executed, c.requeued);
                scenarios += 1;
            }
        }
        assert!(scenarios > base.appends, "sweep must include unsynced-window cuts");
    }

    #[test]
    fn explore_counts_schedules_and_stays_clean() {
        let rep = explore(&SimConfig::new(0), 1, 3).unwrap();
        assert_eq!(rep.seeds, 3);
        assert!(rep.crash_scenarios > 0);
        assert!(rep.schedules > rep.crash_scenarios);
    }

    #[test]
    fn failure_message_carries_the_reproducer() {
        let f = SimFailure {
            seed: 77,
            crash: Some(CrashPlan { after_append: 5, cut: 4 }),
            message: "boom".into(),
        };
        let text = f.to_string();
        assert!(text.contains("seed 77"), "{text}");
        assert!(text.contains("--replay 77"), "{text}");
        assert!(text.contains("--crash-at 5"), "{text}");
    }
}
