//! The decision trace: a compact, replayable record of every
//! nondeterministic choice one simulated run made.
//!
//! A run is a pure function of its seed; the trace is the *witness* —
//! the exact sequence of scheduler decisions the seed produced.  The
//! grammar is a whitespace-separated token stream:
//!
//! ```text
//! trace    := token*
//! token    := step | advance | crash | deliver | disconnect
//! step     := "c" INDEX          client INDEX ran one step
//!           | "w" INDEX          worker INDEX ran one step
//! advance  := "a" MICROS         virtual clock jumped to MICROS
//! crash    := "x" CUT            world crashed; the first CUT WAL
//!                                records survived
//! deliver  := "f" BYTES          the stepped client's connection
//!                                delivered BYTES pending bytes (a
//!                                framing decision; follows its step)
//! disconnect := "d"              the stepped client's connection
//!                                dropped (bare token, no number)
//! ```
//!
//! Replaying a trace feeds these decisions back instead of drawing from
//! the schedule RNG; the replay must regenerate the identical trace or
//! the harness reports divergence (a determinism bug).

use std::fmt;

/// Who can be scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Actor {
    /// Client actor by index.
    Client(u32),
    /// Worker actor by index.
    Worker(u32),
}

/// One nondeterminism decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The scheduler picked this runnable actor to step.
    Step(Actor),
    /// Nothing was runnable; virtual time advanced to this microsecond.
    Advance(u64),
    /// The world crashed; the first `cut` WAL records survived.
    Crash(u64),
    /// The stepped client's connection delivered this many pending
    /// bytes toward the server's framer.
    Deliver(u64),
    /// The stepped client's connection dropped — mid-submit if bytes
    /// were still pending or buffered, mid-reply if a reply was queued.
    Disconnect,
}

/// A full run's decision sequence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Decisions in the order they were taken.
    pub decisions: Vec<Decision>,
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.decisions.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            match d {
                Decision::Step(Actor::Client(c)) => write!(f, "c{c}")?,
                Decision::Step(Actor::Worker(w)) => write!(f, "w{w}")?,
                Decision::Advance(t) => write!(f, "a{t}")?,
                Decision::Crash(cut) => write!(f, "x{cut}")?,
                Decision::Deliver(n) => write!(f, "f{n}")?,
                Decision::Disconnect => f.write_str("d")?,
            }
        }
        Ok(())
    }
}

impl Trace {
    /// Parse the compact token stream produced by [`Trace`]'s `Display`.
    ///
    /// # Errors
    ///
    /// Any token not matching the grammar, naming the offending token.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut decisions = Vec::new();
        for tok in text.split_whitespace() {
            if tok == "d" {
                decisions.push(Decision::Disconnect);
                continue;
            }
            let (kind, num) = tok.split_at(1);
            let n: u64 =
                num.parse().map_err(|_| format!("trace token {tok:?}: {num:?} is not a number"))?;
            let d = match kind {
                "c" => Decision::Step(Actor::Client(n as u32)),
                "w" => Decision::Step(Actor::Worker(n as u32)),
                "a" => Decision::Advance(n),
                "x" => Decision::Crash(n),
                "f" => Decision::Deliver(n),
                // A numbered "d…" is malformed: disconnect is bare.
                other => return Err(format!("trace token {tok:?}: unknown kind {other:?}")),
            };
            decisions.push(d);
        }
        Ok(Self { decisions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_text() {
        let t = Trace {
            decisions: vec![
                Decision::Step(Actor::Client(0)),
                Decision::Step(Actor::Worker(2)),
                Decision::Advance(5_000),
                Decision::Step(Actor::Client(11)),
                Decision::Crash(7),
            ],
        };
        let text = t.to_string();
        assert_eq!(text, "c0 w2 a5000 c11 x7");
        assert_eq!(Trace::parse(&text).unwrap(), t);
        assert_eq!(Trace::parse("").unwrap(), Trace::default());
    }

    #[test]
    fn conn_events_round_trip_through_text() {
        let t = Trace {
            decisions: vec![
                Decision::Step(Actor::Client(0)),
                Decision::Deliver(3),
                Decision::Step(Actor::Client(1)),
                Decision::Disconnect,
                Decision::Step(Actor::Worker(0)),
                Decision::Deliver(1),
            ],
        };
        let text = t.to_string();
        assert_eq!(text, "c0 f3 c1 d w0 f1");
        assert_eq!(Trace::parse(&text).unwrap(), t);
    }

    #[test]
    fn rejects_malformed_tokens() {
        // "d5" is malformed on purpose: disconnect carries no number, so
        // a numbered spelling is a grammar error, not a silent zero.
        for bad in ["q1", "c", "cx", "a-5", "c1 w2 zz", "d5", "f", "fx", "f-1", "dd"] {
            assert!(Trace::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    /// Property test: seeded random traces over the full grammar —
    /// including the connection events — survive Display → parse
    /// bit-identically, for every seed.
    #[test]
    fn random_traces_round_trip_for_every_seed() {
        for seed in 0..200u64 {
            let mut rng = obs::Rng::new(seed ^ 0xDECADE);
            let len = rng.range_u64(0, 40) as usize;
            let decisions: Vec<Decision> = (0..len)
                .map(|_| match rng.range_u64(0, 6) {
                    0 => Decision::Step(Actor::Client(rng.range_u64(0, 64) as u32)),
                    1 => Decision::Step(Actor::Worker(rng.range_u64(0, 64) as u32)),
                    2 => Decision::Advance(rng.range_u64(0, 1 << 40)),
                    3 => Decision::Crash(rng.range_u64(0, 1 << 20)),
                    4 => Decision::Deliver(rng.range_u64(1, 1 << 16)),
                    _ => Decision::Disconnect,
                })
                .collect();
            let t = Trace { decisions };
            let text = t.to_string();
            let back = Trace::parse(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
            assert_eq!(back, t, "seed {seed} diverged through the text form");
            assert_eq!(back.to_string(), text, "seed {seed}: re-display diverged");
        }
    }
}
