//! The decision trace: a compact, replayable record of every
//! nondeterministic choice one simulated run made.
//!
//! A run is a pure function of its seed; the trace is the *witness* —
//! the exact sequence of scheduler decisions the seed produced.  The
//! grammar is a whitespace-separated token stream:
//!
//! ```text
//! trace    := token*
//! token    := step | advance | crash
//! step     := "c" INDEX          client INDEX ran one step
//!           | "w" INDEX          worker INDEX ran one step
//! advance  := "a" MICROS         virtual clock jumped to MICROS
//! crash    := "x" CUT            world crashed; the first CUT WAL
//!                                records survived
//! ```
//!
//! Replaying a trace feeds these decisions back instead of drawing from
//! the schedule RNG; the replay must regenerate the identical trace or
//! the harness reports divergence (a determinism bug).

use std::fmt;

/// Who can be scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Actor {
    /// Client actor by index.
    Client(u32),
    /// Worker actor by index.
    Worker(u32),
}

/// One nondeterminism decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The scheduler picked this runnable actor to step.
    Step(Actor),
    /// Nothing was runnable; virtual time advanced to this microsecond.
    Advance(u64),
    /// The world crashed; the first `cut` WAL records survived.
    Crash(u64),
}

/// A full run's decision sequence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Decisions in the order they were taken.
    pub decisions: Vec<Decision>,
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.decisions.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            match d {
                Decision::Step(Actor::Client(c)) => write!(f, "c{c}")?,
                Decision::Step(Actor::Worker(w)) => write!(f, "w{w}")?,
                Decision::Advance(t) => write!(f, "a{t}")?,
                Decision::Crash(cut) => write!(f, "x{cut}")?,
            }
        }
        Ok(())
    }
}

impl Trace {
    /// Parse the compact token stream produced by [`Trace`]'s `Display`.
    ///
    /// # Errors
    ///
    /// Any token not matching the grammar, naming the offending token.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut decisions = Vec::new();
        for tok in text.split_whitespace() {
            let (kind, num) = tok.split_at(1);
            let n: u64 =
                num.parse().map_err(|_| format!("trace token {tok:?}: {num:?} is not a number"))?;
            let d = match kind {
                "c" => Decision::Step(Actor::Client(n as u32)),
                "w" => Decision::Step(Actor::Worker(n as u32)),
                "a" => Decision::Advance(n),
                "x" => Decision::Crash(n),
                other => return Err(format!("trace token {tok:?}: unknown kind {other:?}")),
            };
            decisions.push(d);
        }
        Ok(Self { decisions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_text() {
        let t = Trace {
            decisions: vec![
                Decision::Step(Actor::Client(0)),
                Decision::Step(Actor::Worker(2)),
                Decision::Advance(5_000),
                Decision::Step(Actor::Client(11)),
                Decision::Crash(7),
            ],
        };
        let text = t.to_string();
        assert_eq!(text, "c0 w2 a5000 c11 x7");
        assert_eq!(Trace::parse(&text).unwrap(), t);
        assert_eq!(Trace::parse("").unwrap(), Trace::default());
    }

    #[test]
    fn rejects_malformed_tokens() {
        for bad in ["q1", "c", "cx", "a-5", "c1 w2 zz"] {
            assert!(Trace::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }
}
