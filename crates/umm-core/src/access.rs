//! Memory access requests: the unit of work consumed by the machine models.

/// Kind of a memory operation.
///
/// The UMM/DMM cost model of the paper does not distinguish read from write
/// cost-wise, but traces keep the distinction so that correctness checkers
/// and statistics can use it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// A load from memory.
    Read,
    /// A store to memory.
    Write,
}

/// One thread's action during one machine step.
///
/// A thread either issues a single memory request (`Access`) or stays silent
/// (`Idle`).  The paper's definition of an oblivious algorithm allows a step
/// to "access address `a(i)` or not access the memory at all" — `Idle`
/// captures the latter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadAction {
    /// No memory request this step.
    Idle,
    /// A memory request for `addr`.
    Access(Op, usize),
}

impl ThreadAction {
    /// The address touched, if any.
    #[inline]
    #[must_use]
    pub fn addr(&self) -> Option<usize> {
        match self {
            ThreadAction::Idle => None,
            ThreadAction::Access(_, a) => Some(*a),
        }
    }

    /// Shorthand for a read request.
    #[inline]
    #[must_use]
    pub fn read(addr: usize) -> Self {
        ThreadAction::Access(Op::Read, addr)
    }

    /// Shorthand for a write request.
    #[inline]
    #[must_use]
    pub fn write(addr: usize) -> Self {
        ThreadAction::Access(Op::Write, addr)
    }

    /// True if the thread issues a request this step.
    #[inline]
    #[must_use]
    pub fn is_access(&self) -> bool {
        matches!(self, ThreadAction::Access(..))
    }
}

/// The set of requests issued by one warp when it is dispatched.
///
/// `actions[i]` is the action of the warp's `i`-th thread.  A warp on a
/// machine of width `w` always has exactly `w` lanes; callers construct warps
/// via [`crate::schedule::WarpSchedule`], which enforces that.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarpRequest<'a> {
    /// Per-lane actions, length `w`.
    pub actions: &'a [ThreadAction],
}

impl<'a> WarpRequest<'a> {
    /// Construct from a slice of per-lane actions.
    #[must_use]
    pub fn new(actions: &'a [ThreadAction]) -> Self {
        Self { actions }
    }

    /// True if at least one lane issues a request.  Warps in which no thread
    /// needs the memory are *not* dispatched (paper, Section II).
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.actions.iter().any(ThreadAction::is_access)
    }

    /// Iterator over the addresses requested by active lanes.
    pub fn addresses(&self) -> impl Iterator<Item = usize> + '_ {
        self.actions.iter().filter_map(ThreadAction::addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_has_no_address() {
        assert_eq!(ThreadAction::Idle.addr(), None);
        assert!(!ThreadAction::Idle.is_access());
    }

    #[test]
    fn access_roundtrip() {
        let a = ThreadAction::read(17);
        assert_eq!(a.addr(), Some(17));
        assert!(a.is_access());
        let b = ThreadAction::write(3);
        assert_eq!(b, ThreadAction::Access(Op::Write, 3));
    }

    #[test]
    fn warp_activity() {
        let lanes = [ThreadAction::Idle, ThreadAction::Idle];
        assert!(!WarpRequest::new(&lanes).is_active());
        let lanes = [ThreadAction::Idle, ThreadAction::read(9)];
        let w = WarpRequest::new(&lanes);
        assert!(w.is_active());
        assert_eq!(w.addresses().collect::<Vec<_>>(), vec![9]);
    }
}
