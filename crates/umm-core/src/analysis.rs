//! Trace analysis: structural summaries of an address function `a(t)`.
//!
//! These diagnostics answer the questions a developer asks before choosing
//! an arrangement: how big is the working set, how strided is the walk,
//! which address groups run hot, and how much locality is there to exploit.

use crate::access::{Op, ThreadAction};
use crate::config::MachineConfig;
use crate::trace::ThreadTrace;
use std::collections::HashMap;

/// Structural summary of a thread trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Total steps (including idles).
    pub steps: usize,
    /// Read count.
    pub reads: usize,
    /// Write count.
    pub writes: usize,
    /// Idle steps.
    pub idles: usize,
    /// Number of distinct addresses touched.
    pub working_set: usize,
    /// Smallest address touched.
    pub min_address: Option<usize>,
    /// Largest address touched.
    pub max_address: Option<usize>,
    /// Mean absolute stride between consecutive accesses.
    pub mean_abs_stride: f64,
    /// Fraction of consecutive access pairs with |stride| ≤ 1.
    pub sequential_fraction: f64,
    /// Mean reuse distance (steps between successive touches of the same
    /// address), over addresses touched more than once.
    pub mean_reuse_distance: f64,
}

/// Compute the summary of a trace.
#[must_use]
pub fn summarize(trace: &ThreadTrace) -> TraceSummary {
    let mut reads = 0usize;
    let mut writes = 0usize;
    let mut idles = 0usize;
    let mut last_touch: HashMap<usize, usize> = HashMap::new();
    let mut reuse_sum = 0usize;
    let mut reuse_count = 0usize;
    let mut prev_addr: Option<usize> = None;
    let mut stride_sum = 0f64;
    let mut stride_count = 0usize;
    let mut sequential = 0usize;
    let mut min_address = None::<usize>;
    let mut max_address = None::<usize>;

    for (t, step) in trace.steps().iter().enumerate() {
        match step {
            ThreadAction::Idle => idles += 1,
            ThreadAction::Access(op, addr) => {
                match op {
                    Op::Read => reads += 1,
                    Op::Write => writes += 1,
                }
                min_address = Some(min_address.map_or(*addr, |m| m.min(*addr)));
                max_address = Some(max_address.map_or(*addr, |m| m.max(*addr)));
                if let Some(prev) = prev_addr {
                    let stride = (*addr as isize - prev as isize).unsigned_abs();
                    stride_sum += stride as f64;
                    stride_count += 1;
                    if stride <= 1 {
                        sequential += 1;
                    }
                }
                prev_addr = Some(*addr);
                if let Some(&last) = last_touch.get(addr) {
                    reuse_sum += t - last;
                    reuse_count += 1;
                }
                last_touch.insert(*addr, t);
            }
        }
    }

    TraceSummary {
        steps: trace.len(),
        reads,
        writes,
        idles,
        working_set: last_touch.len(),
        min_address,
        max_address,
        mean_abs_stride: if stride_count > 0 { stride_sum / stride_count as f64 } else { 0.0 },
        sequential_fraction: if stride_count > 0 {
            sequential as f64 / stride_count as f64
        } else {
            0.0
        },
        mean_reuse_distance: if reuse_count > 0 {
            reuse_sum as f64 / reuse_count as f64
        } else {
            0.0
        },
    }
}

/// Per-address-group access counts — which rows of the memory run hot.
#[must_use]
pub fn address_group_histogram(trace: &ThreadTrace, cfg: &MachineConfig) -> Vec<(usize, usize)> {
    let mut counts: HashMap<usize, usize> = HashMap::new();
    for step in trace.steps() {
        if let Some(addr) = step.addr() {
            *counts.entry(cfg.address_group(addr)).or_default() += 1;
        }
    }
    let mut v: Vec<(usize, usize)> = counts.into_iter().collect();
    v.sort_unstable();
    v
}

/// Histogram of signed strides between consecutive accesses, clamped into
/// `[-clamp, clamp]` buckets (out-of-range strides land on the boundary).
#[must_use]
pub fn stride_histogram(trace: &ThreadTrace, clamp: isize) -> HashMap<isize, usize> {
    assert!(clamp > 0, "clamp must be positive");
    let mut out: HashMap<isize, usize> = HashMap::new();
    let mut prev: Option<usize> = None;
    for step in trace.steps() {
        if let Some(addr) = step.addr() {
            if let Some(p) = prev {
                let s = (addr as isize - p as isize).clamp(-clamp, clamp);
                *out.entry(s).or_default() += 1;
            }
            prev = Some(addr);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep(n: usize) -> ThreadTrace {
        let mut t = ThreadTrace::new();
        for i in 0..n {
            t.read(i);
            t.write(i);
        }
        t
    }

    #[test]
    fn summary_of_a_linear_sweep() {
        let s = summarize(&sweep(8));
        assert_eq!(s.steps, 16);
        assert_eq!(s.reads, 8);
        assert_eq!(s.writes, 8);
        assert_eq!(s.idles, 0);
        assert_eq!(s.working_set, 8);
        assert_eq!((s.min_address, s.max_address), (Some(0), Some(7)));
        // Strides: 0 (read->write same addr) and +1 alternate.
        assert!(s.sequential_fraction > 0.99, "{}", s.sequential_fraction);
        assert!(s.mean_abs_stride < 1.0);
        assert!((s.mean_reuse_distance - 1.0).abs() < 1e-9, "write follows read immediately");
    }

    #[test]
    fn summary_counts_idles() {
        let mut t = ThreadTrace::new();
        t.read(0);
        t.push(crate::access::ThreadAction::Idle);
        t.write(5);
        let s = summarize(&t);
        assert_eq!(s.idles, 1);
        assert_eq!(s.working_set, 2);
        assert_eq!(s.mean_abs_stride, 5.0);
        assert_eq!(s.sequential_fraction, 0.0);
        assert_eq!(s.mean_reuse_distance, 0.0, "no address touched twice");
    }

    #[test]
    fn empty_trace_summary_is_zeroed() {
        let s = summarize(&ThreadTrace::new());
        assert_eq!(s.steps, 0);
        assert_eq!(s.working_set, 0);
        assert_eq!(s.min_address, None);
    }

    #[test]
    fn group_histogram_buckets_by_w() {
        let cfg = MachineConfig::new(4, 1);
        let h = address_group_histogram(&sweep(8), &cfg);
        // Addresses 0..8 over w=4: groups 0 and 1, 8 touches each.
        assert_eq!(h, vec![(0, 8), (1, 8)]);
    }

    #[test]
    fn stride_histogram_clamps() {
        let mut t = ThreadTrace::new();
        t.read(0);
        t.read(1000);
        t.read(999);
        let h = stride_histogram(&t, 16);
        assert_eq!(h.get(&16), Some(&1), "big stride clamped to +16");
        assert_eq!(h.get(&-1), Some(&1));
    }

    #[test]
    #[should_panic(expected = "clamp must be positive")]
    fn zero_clamp_rejected() {
        let _ = stride_histogram(&ThreadTrace::new(), 0);
    }
}
