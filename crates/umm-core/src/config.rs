//! Machine configuration shared by the UMM and DMM simulators.

use obs::Json;

/// Parameters of a memory machine (UMM or DMM).
///
/// The paper characterises both machines by two architectural parameters:
///
/// * `width` (`w`) — the number of memory banks, which is also the number of
///   threads in a warp and the number of words in an address group;
/// * `latency` (`l`) — the depth of the memory access pipeline, i.e. the
///   number of time units between a request entering the pipeline and its
///   completion.
///
/// The number of threads `p` is a property of a particular execution, not of
/// the machine, so it lives in [`crate::schedule::WarpSchedule`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MachineConfig {
    /// Memory width `w`: words per address group, threads per warp, banks.
    pub width: usize,
    /// Memory access latency `l` in time units (pipeline depth).
    pub latency: usize,
}

impl MachineConfig {
    /// Create a configuration, validating both parameters.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `latency == 0`; the model is undefined for
    /// either (the paper assumes `w >= 1` and an `l`-stage pipeline with
    /// `l >= 1`).
    #[must_use]
    pub fn new(width: usize, latency: usize) -> Self {
        assert!(width > 0, "UMM/DMM width w must be positive");
        assert!(latency > 0, "UMM/DMM latency l must be positive");
        Self { width, latency }
    }

    /// The configuration used in the paper's worked example (Figure 4):
    /// width 4, latency 5.
    #[must_use]
    pub fn paper_figure4() -> Self {
        Self::new(4, 5)
    }

    /// A configuration loosely modelling the global memory of a GeForce GTX
    /// Titan class device: 32-thread warps and a few hundred cycles of DRAM
    /// latency.  (The paper quotes widths of 256–384 *bits* for the DRAM bus;
    /// in words the effective coalescing unit is the 32-thread warp.)
    #[must_use]
    pub fn titan_global() -> Self {
        Self::new(32, 400)
    }

    /// A configuration loosely modelling the shared memory of a streaming
    /// multiprocessor: 32 banks, very small latency.
    #[must_use]
    pub fn sm_shared() -> Self {
        Self::new(32, 2)
    }

    /// The address group index of memory address `addr`: `A[j]` holds
    /// addresses `j*w .. (j+1)*w`.
    #[inline]
    #[must_use]
    pub fn address_group(&self, addr: usize) -> usize {
        addr / self.width
    }

    /// The memory bank index of memory address `addr`: `B[j]` holds addresses
    /// `{ j, j+w, j+2w, ... }`.
    #[inline]
    #[must_use]
    pub fn bank(&self, addr: usize) -> usize {
        addr % self.width
    }

    /// As a JSON object `{"width": w, "latency": l}` for run reports.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("width", self.width);
        obj.set("latency", self.latency);
        obj
    }
}

impl Default for MachineConfig {
    /// Defaults to the paper's worked-example machine (`w = 4`, `l = 5`).
    fn default() -> Self {
        Self::paper_figure4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_group_partitions_memory_into_w_word_rows() {
        let c = MachineConfig::new(4, 5);
        assert_eq!(c.address_group(0), 0);
        assert_eq!(c.address_group(3), 0);
        assert_eq!(c.address_group(4), 1);
        assert_eq!(c.address_group(15), 3);
    }

    #[test]
    fn bank_interleaves_addresses_mod_w() {
        let c = MachineConfig::new(4, 5);
        assert_eq!(c.bank(0), 0);
        assert_eq!(c.bank(5), 1);
        assert_eq!(c.bank(14), 2);
        // B[j] = { j, j+w, j+2w, ... } from the paper.
        for j in 0..4 {
            for k in 0..8 {
                assert_eq!(c.bank(j + k * 4), j);
            }
        }
    }

    #[test]
    fn figure4_example_config() {
        let c = MachineConfig::paper_figure4();
        assert_eq!(c.width, 4);
        assert_eq!(c.latency, 5);
        assert_eq!(MachineConfig::default(), c);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        let _ = MachineConfig::new(0, 5);
    }

    #[test]
    #[should_panic(expected = "latency")]
    fn zero_latency_rejected() {
        let _ = MachineConfig::new(4, 0);
    }
}
