//! The Discrete Memory Machine (DMM) timing simulator.
//!
//! The DMM models the *shared memory* of a streaming multiprocessor: each of
//! the `w` banks has its own address line, so a dispatched warp's requests
//! are constrained by **bank conflicts** rather than address groups.  If the
//! maximum number of requests aimed at any single bank is `c`, the warp's
//! requests are serialised into `c` pipeline injections.
//!
//! Comparing the DMM and UMM cost of the *same* trace (ablation A3 in
//! DESIGN.md) shows why the two memories want opposite layouts: stride-`w`
//! access is free on the UMM's address groups but fully serialised on the
//! DMM's banks, and vice versa for same-group access.

use crate::access::ThreadAction;
use crate::config::MachineConfig;
use crate::profile::{SimProfile, SimTimeline};
use crate::schedule::{WarpSchedule, WarpScratch};
use crate::stats::AccessStats;
use crate::trace::RoundTrace;
use obs::trace::Tracer;

/// Streaming round-synchronous DMM timing simulator.
///
/// API mirrors [`crate::umm::UmmSimulator`]; only the per-warp charge
/// differs (max bank conflict instead of distinct address groups).
#[derive(Debug)]
pub struct DmmSimulator {
    cfg: MachineConfig,
    schedule: WarpSchedule,
    scratch: WarpScratch,
    elapsed: u64,
    stats: AccessStats,
    profile: Option<SimProfile>,
    timeline: Option<Box<SimTimeline>>,
}

impl DmmSimulator {
    /// Create a simulator for `p` lockstep threads on machine `cfg`.
    #[must_use]
    pub fn new(cfg: MachineConfig, p: usize) -> Self {
        Self {
            cfg,
            schedule: WarpSchedule::new(p, &cfg),
            scratch: WarpScratch::new(),
            elapsed: 0,
            stats: AccessStats::default(),
            profile: None,
            timeline: None,
        }
    }

    /// Machine configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Turn on per-warp profiling (histogram of per-warp bank conflicts,
    /// stall accounting).  No-op at compile time when `obs` is built
    /// without its `profile` feature.
    pub fn enable_profiling(&mut self) {
        if obs::PROFILING_COMPILED {
            self.profile = Some(SimProfile::new());
        }
    }

    /// The recorded profile, if profiling was enabled.
    #[must_use]
    pub fn profile(&self) -> Option<&SimProfile> {
        self.profile.as_ref()
    }

    /// Turn on event-timeline tracing: one span per dispatched warp (track
    /// = warp id, args = the bank-conflict charge `c`) plus fill/drain and
    /// idle markers on a "pipeline" track.  No-op at compile time when
    /// `obs` is built without its `profile` feature.
    pub fn enable_tracing(&mut self) {
        if obs::PROFILING_COMPILED {
            self.timeline = Some(Box::new(SimTimeline::new("dmm", self.schedule.warp_count())));
        }
    }

    /// The recorded timeline events, if tracing was enabled.
    #[must_use]
    pub fn tracer(&self) -> Option<&Tracer> {
        self.timeline.as_ref().map(|tl| tl.tracer())
    }

    /// Take the recorded timeline out of the simulator (tracing stops).
    #[must_use]
    pub fn take_tracer(&mut self) -> Option<Tracer> {
        self.timeline.take().map(|tl| tl.into_tracer())
    }

    /// Charge one lockstep round and return its cost:
    /// `(Σ_{active warps} c_i) + l - 1`, where `c_i` is warp `i`'s maximum
    /// bank conflict; a round with no active warp costs nothing.
    pub fn step(&mut self, actions: &[ThreadAction]) -> u64 {
        debug_assert_eq!(actions.len(), self.schedule.p, "round width must equal p");
        let round_start = self.elapsed;
        let mut stages = 0u64;
        let mut active = false;
        for (wi, warp) in self.schedule.warps(actions).enumerate() {
            let c = self.scratch.max_bank_conflicts(&self.cfg, &warp) as u64;
            if c > 0 {
                active = true;
                if let Some(tl) = self.timeline.as_mut() {
                    tl.warp(wi, round_start + stages, c);
                }
                stages += c;
                if let Some(pr) = self.profile.as_mut() {
                    pr.record_warp(c);
                }
            }
        }
        let cost = if active { stages + self.cfg.latency as u64 - 1 } else { 0 };
        self.elapsed += cost;
        self.stats.record_round(actions, stages, cost);
        if let Some(pr) = self.profile.as_mut() {
            pr.record_round(active, self.cfg.latency);
        }
        if let Some(tl) = self.timeline.as_mut() {
            if active {
                tl.drain(round_start + stages, self.cfg.latency as u64 - 1);
            } else {
                tl.idle(round_start);
            }
        }
        cost
    }

    /// Charge one *uniform* round from precomputed per-warp conflict
    /// charges, and return its cost.
    ///
    /// The DMM counterpart of [`crate::umm::UmmSimulator::step_uniform`]:
    /// `charges[i]` must be warp `i`'s maximum bank-conflict count for the
    /// round (`>= 1`, since every lane accesses).  Accounting is identical
    /// to [`DmmSimulator::step`] on the materialised round.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `charges.len()` differs from the warp
    /// count or any charge is zero.
    pub fn step_uniform(&mut self, op: crate::access::Op, charges: &[u64]) -> u64 {
        debug_assert_eq!(charges.len(), self.schedule.warp_count(), "one charge per warp required");
        debug_assert!(charges.iter().all(|&c| c > 0), "uniform rounds have no idle warp");
        let round_start = self.elapsed;
        let mut stages = 0u64;
        for (wi, &c) in charges.iter().enumerate() {
            if let Some(tl) = self.timeline.as_mut() {
                tl.warp(wi, round_start + stages, c);
            }
            stages += c;
            if let Some(pr) = self.profile.as_mut() {
                pr.record_warp(c);
            }
        }
        let cost = stages + self.cfg.latency as u64 - 1;
        self.elapsed += cost;
        self.stats.record_uniform_round(op, self.schedule.p as u64, stages, cost);
        if let Some(pr) = self.profile.as_mut() {
            pr.record_round(true, self.cfg.latency);
        }
        if let Some(tl) = self.timeline.as_mut() {
            tl.drain(round_start + stages, self.cfg.latency as u64 - 1);
        }
        cost
    }

    /// Total time units charged so far.
    #[must_use]
    pub fn elapsed(&self) -> u64 {
        self.elapsed
    }

    /// Access statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &AccessStats {
        &self.stats
    }

    /// Reset the clock, statistics, and any recorded profile or timeline.
    pub fn reset(&mut self) {
        self.elapsed = 0;
        self.stats = AccessStats::default();
        if let Some(pr) = self.profile.as_mut() {
            *pr = SimProfile::new();
        }
        if let Some(tl) = self.timeline.as_mut() {
            **tl = SimTimeline::new("dmm", self.schedule.warp_count());
        }
    }

    /// Run an entire materialised trace and return the total time.
    pub fn run(&mut self, trace: &RoundTrace) -> u64 {
        for round in trace.rounds() {
            self.step(&round.actions);
        }
        self.elapsed
    }
}

/// Cost of a single round on the DMM.
#[must_use]
pub fn round_cost(cfg: &MachineConfig, actions: &[ThreadAction]) -> u64 {
    let mut sim = DmmSimulator::new(*cfg, actions.len());
    sim.step(actions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::umm;

    #[test]
    fn conflict_free_round_costs_warps_plus_latency() {
        let cfg = MachineConfig::new(4, 5);
        let p = 16;
        // Consecutive addresses: each warp hits all 4 banks once.
        let actions: Vec<_> = (0..p).map(ThreadAction::read).collect();
        assert_eq!(round_cost(&cfg, &actions), (p / 4 + 5 - 1) as u64);
    }

    #[test]
    fn stride_w_round_fully_serialises() {
        let cfg = MachineConfig::new(4, 5);
        let p = 16;
        // Stride-w: every thread in a warp hits bank 0 → c = w per warp.
        let actions: Vec<_> = (0..p).map(|j| ThreadAction::read(j * 4)).collect();
        assert_eq!(round_cost(&cfg, &actions), (p + 5 - 1) as u64);
    }

    #[test]
    fn dmm_and_umm_disagree_on_layouts() {
        // The duality the two models exist to capture: stride-w is the best
        // case for the UMM within one group span but the worst case for the
        // DMM, and conversely n-strided single-bank-free patterns flip it.
        let cfg = MachineConfig::new(4, 5);
        let p = 4;
        // All four threads in addresses 0..4: one address group, all banks.
        let coalesced: Vec<_> = (0..p).map(ThreadAction::read).collect();
        assert_eq!(umm::round_cost(&cfg, &coalesced), 1 + 4);
        assert_eq!(round_cost(&cfg, &coalesced), 1 + 4);
        // Stride 4 (= w): 4 address groups on UMM, 1 bank on DMM.
        let strided: Vec<_> = (0..p).map(|j| ThreadAction::read(j * 4)).collect();
        assert_eq!(umm::round_cost(&cfg, &strided), 4 + 4);
        assert_eq!(round_cost(&cfg, &strided), 4 + 4);
        // Diagonal stride w+1: distinct banks AND (generally) distinct
        // groups — good for DMM, bad for UMM.
        let diagonal: Vec<_> = (0..p).map(|j| ThreadAction::read(j * 5)).collect();
        assert_eq!(round_cost(&cfg, &diagonal), 1 + 4); // banks 0,1,2,3
        assert_eq!(umm::round_cost(&cfg, &diagonal), 4 + 4); // groups 0,1,2,3
    }

    #[test]
    fn idle_round_is_free() {
        let cfg = MachineConfig::new(4, 5);
        let actions = vec![ThreadAction::Idle; 8];
        assert_eq!(round_cost(&cfg, &actions), 0);
    }

    #[test]
    fn accumulation_and_reset() {
        let cfg = MachineConfig::new(4, 2);
        let mut sim = DmmSimulator::new(cfg, 4);
        let actions: Vec<_> = (0..4).map(ThreadAction::read).collect();
        sim.step(&actions);
        sim.step(&actions);
        assert_eq!(sim.elapsed(), 2 * (1 + 1));
        assert_eq!(sim.stats().rounds, 2);
        sim.reset();
        assert_eq!(sim.elapsed(), 0);
    }

    /// DMM counterpart of the UMM `step_uniform` equivalence: per-warp
    /// conflict charges replayed through the fast path must reproduce
    /// `step`'s cost, statistics, profile, and timeline exactly.
    #[test]
    fn step_uniform_matches_step_exactly() {
        use crate::access::{Op, WarpRequest};
        use crate::schedule::WarpScratch;
        let mut scratch = WarpScratch::new();
        for w in [1usize, 3, 4, 8] {
            let cfg = MachineConfig::new(w, 5);
            for p in [1usize, 4, 7, 16, 33] {
                let mut a = DmmSimulator::new(cfg, p);
                let mut b = DmmSimulator::new(cfg, p);
                a.enable_profiling();
                a.enable_tracing();
                b.enable_profiling();
                b.enable_tracing();
                for (base, stride, op) in
                    [(0usize, 1usize, Op::Read), (5, 4, Op::Write), (2, 7, Op::Read)]
                {
                    let actions: Vec<_> =
                        (0..p).map(|j| ThreadAction::Access(op, base + j * stride)).collect();
                    let charges: Vec<u64> = actions
                        .chunks(w)
                        .map(|c| scratch.max_bank_conflicts(&cfg, &WarpRequest::new(c)) as u64)
                        .collect();
                    assert_eq!(a.step(&actions), b.step_uniform(op, &charges), "w={w} p={p}");
                }
                assert_eq!(a.elapsed(), b.elapsed());
                assert_eq!(a.stats(), b.stats());
                assert_eq!(a.profile(), b.profile());
                let (ta, tb) = (a.take_tracer().unwrap(), b.take_tracer().unwrap());
                assert_eq!(ta.events(), tb.events(), "timelines diverge at w={w} p={p}");
            }
        }
    }
}
