//! The Hierarchical Memory Machine (HMM).
//!
//! The paper's Section I.B describes the HMM (introduced in the authors'
//! companion work) as the model that "captures the essence of the
//! hierarchical architecture of the CUDA-enabled GPU": it has multiple
//! DMMs — one per streaming multiprocessor, each with its own shared
//! memory — plus a single global memory shared by all threads, which
//! behaves as a UMM.
//!
//! Cost semantics implemented here (round-synchronous, consistent with the
//! UMM/DMM accounting):
//!
//! * threads are partitioned into `d` DMMs of `p/d` threads each;
//! * **shared** accesses are served by each DMM's own banks *in parallel
//!   across DMMs*: the shared component of a round costs the maximum DMM
//!   cost;
//! * **global** accesses from all DMMs funnel through the single UMM
//!   pipeline: their stage counts add up;
//! * a round's cost is the sum of its shared and global components (the
//!   two phases use different hardware but the same warps, so they do not
//!   overlap within a round).

use crate::access::{Op, ThreadAction};
use crate::config::MachineConfig;
use crate::schedule::{WarpSchedule, WarpScratch};

/// Which memory space a thread touches in a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HmmAction {
    /// No request this round.
    Idle,
    /// A request to the thread's own DMM's shared memory.
    Shared(Op, usize),
    /// A request to the global memory (UMM).
    Global(Op, usize),
}

impl HmmAction {
    /// Shorthand for a shared-memory read.
    #[must_use]
    pub fn shared_read(addr: usize) -> Self {
        HmmAction::Shared(Op::Read, addr)
    }
    /// Shorthand for a global-memory read.
    #[must_use]
    pub fn global_read(addr: usize) -> Self {
        HmmAction::Global(Op::Read, addr)
    }
    /// Shorthand for a shared-memory write.
    #[must_use]
    pub fn shared_write(addr: usize) -> Self {
        HmmAction::Shared(Op::Write, addr)
    }
    /// Shorthand for a global-memory write.
    #[must_use]
    pub fn global_write(addr: usize) -> Self {
        HmmAction::Global(Op::Write, addr)
    }
}

/// HMM parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HmmConfig {
    /// Number of DMMs (streaming multiprocessors).
    pub dmms: usize,
    /// Shared-memory machine of each DMM (width = banks, small latency).
    pub shared: MachineConfig,
    /// Global-memory machine (UMM width and DRAM-scale latency).
    pub global: MachineConfig,
}

impl HmmConfig {
    /// A GTX-Titan-like HMM: 14 DMMs with 32-bank low-latency shared
    /// memories under a w=32, high-latency global UMM.
    #[must_use]
    pub fn titan_like() -> Self {
        Self { dmms: 14, shared: MachineConfig::sm_shared(), global: MachineConfig::titan_global() }
    }

    /// Validate and construct.
    ///
    /// # Panics
    ///
    /// Panics if `dmms == 0`.
    #[must_use]
    pub fn new(dmms: usize, shared: MachineConfig, global: MachineConfig) -> Self {
        assert!(dmms > 0, "an HMM needs at least one DMM");
        Self { dmms, shared, global }
    }
}

/// Round-synchronous HMM timing simulator.
#[derive(Debug)]
pub struct HmmSimulator {
    cfg: HmmConfig,
    p: usize,
    per_dmm: usize,
    scratch: WarpScratch,
    elapsed: u64,
    shared_units: u64,
    global_units: u64,
}

impl HmmSimulator {
    /// Simulator for `p` threads, split contiguously over the DMMs.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a positive multiple of `cfg.dmms`.
    #[must_use]
    pub fn new(cfg: HmmConfig, p: usize) -> Self {
        assert!(
            p > 0 && p.is_multiple_of(cfg.dmms),
            "p must be a positive multiple of the DMM count"
        );
        Self {
            cfg,
            p,
            per_dmm: p / cfg.dmms,
            scratch: WarpScratch::new(),
            elapsed: 0,
            shared_units: 0,
            global_units: 0,
        }
    }

    /// Total time units charged so far.
    #[must_use]
    pub fn elapsed(&self) -> u64 {
        self.elapsed
    }

    /// Time units attributable to shared-memory phases.
    #[must_use]
    pub fn shared_units(&self) -> u64 {
        self.shared_units
    }

    /// Time units attributable to global-memory phases.
    #[must_use]
    pub fn global_units(&self) -> u64 {
        self.global_units
    }

    /// Charge one lockstep round of `p` actions; returns its cost.
    pub fn step(&mut self, actions: &[HmmAction]) -> u64 {
        assert_eq!(actions.len(), self.p, "round width must equal p");
        // Shared phase: per-DMM bank-conflict cost, DMMs in parallel.
        let mut shared_max = 0u64;
        let sched = WarpSchedule::new(self.per_dmm, &self.cfg.shared);
        let mut lane_buf: Vec<ThreadAction> = Vec::with_capacity(self.per_dmm);
        for dmm in 0..self.cfg.dmms {
            lane_buf.clear();
            lane_buf.extend(actions[dmm * self.per_dmm..(dmm + 1) * self.per_dmm].iter().map(
                |a| match *a {
                    HmmAction::Shared(op, addr) => ThreadAction::Access(op, addr),
                    _ => ThreadAction::Idle,
                },
            ));
            let mut stages = 0u64;
            for warp in sched.warps(&lane_buf) {
                stages += self.scratch.max_bank_conflicts(&self.cfg.shared, &warp) as u64;
            }
            if stages > 0 {
                shared_max = shared_max.max(stages + self.cfg.shared.latency as u64 - 1);
            }
        }
        // Global phase: all DMMs' global requests share one UMM pipeline.
        let gsched = WarpSchedule::new(self.p, &self.cfg.global);
        let glane: Vec<ThreadAction> = actions
            .iter()
            .map(|a| match *a {
                HmmAction::Global(op, addr) => ThreadAction::Access(op, addr),
                _ => ThreadAction::Idle,
            })
            .collect();
        let mut gstages = 0u64;
        for warp in gsched.warps(&glane) {
            gstages += self.scratch.distinct_address_groups(&self.cfg.global, &warp) as u64;
        }
        let global_cost =
            if gstages > 0 { gstages + self.cfg.global.latency as u64 - 1 } else { 0 };

        self.shared_units += shared_max;
        self.global_units += global_cost;
        let cost = shared_max + global_cost;
        self.elapsed += cost;
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HmmConfig {
        // 2 DMMs, shared w=4 l=2, global w=4 l=10.
        HmmConfig::new(2, MachineConfig::new(4, 2), MachineConfig::new(4, 10))
    }

    #[test]
    fn shared_phases_run_in_parallel_across_dmms() {
        let mut sim = HmmSimulator::new(cfg(), 8);
        // Both DMMs: conflict-free shared access (4 consecutive banks).
        let actions: Vec<_> = (0..8).map(|j| HmmAction::shared_read(j % 4)).collect();
        // Each DMM: 1 stage + l - 1 = 2; parallel -> total 2, not 4.
        assert_eq!(sim.step(&actions), 2);
        assert_eq!(sim.shared_units(), 2);
        assert_eq!(sim.global_units(), 0);
    }

    #[test]
    fn shared_bank_conflicts_serialise_within_a_dmm() {
        let mut sim = HmmSimulator::new(cfg(), 8);
        // DMM 0: all four lanes hit bank 0 (addresses 0, 4, 8, 12).
        // DMM 1: idle.
        let mut actions = vec![HmmAction::Idle; 8];
        for (j, a) in actions.iter_mut().take(4).enumerate() {
            *a = HmmAction::shared_read(j * 4);
        }
        assert_eq!(sim.step(&actions), 4 + 2 - 1);
    }

    #[test]
    fn global_requests_share_one_pipeline() {
        let mut sim = HmmSimulator::new(cfg(), 8);
        // All 8 threads read 8 consecutive global addresses: 2 warps, one
        // group each -> 2 stages + 10 - 1 = 11.
        let actions: Vec<_> = (0..8).map(HmmAction::global_read).collect();
        assert_eq!(sim.step(&actions), 11);
        assert_eq!(sim.global_units(), 11);
    }

    #[test]
    fn mixed_round_adds_phases() {
        let mut sim = HmmSimulator::new(cfg(), 8);
        // DMM 0 does shared (1 stage + 1), DMM 1 does global (1 stage + 9).
        let mut actions = vec![HmmAction::Idle; 8];
        for (j, a) in actions.iter_mut().enumerate() {
            *a =
                if j < 4 { HmmAction::shared_read(j) } else { HmmAction::global_read(100 + j - 4) };
        }
        assert_eq!(sim.step(&actions), 2 + 10);
    }

    #[test]
    fn idle_round_is_free() {
        let mut sim = HmmSimulator::new(cfg(), 8);
        assert_eq!(sim.step(&[HmmAction::Idle; 8]), 0);
        assert_eq!(sim.elapsed(), 0);
    }

    #[test]
    fn titan_like_shape() {
        let c = HmmConfig::titan_like();
        assert_eq!(c.dmms, 14);
        assert!(c.global.latency > c.shared.latency);
    }

    #[test]
    #[should_panic(expected = "multiple of the DMM count")]
    fn ragged_p_rejected() {
        let _ = HmmSimulator::new(cfg(), 9);
    }

    #[test]
    fn staging_beats_repeated_global_access() {
        // The canonical HMM lesson: loading a tile into shared memory once
        // and reusing it beats re-reading global memory.  Model a thread
        // block reusing one word 10 times.
        let c = cfg();
        let reuse = 10;
        let mut all_global = HmmSimulator::new(c, 8);
        let mut staged = HmmSimulator::new(c, 8);
        // All-global: 10 rounds of coalesced global reads.
        for _ in 0..reuse {
            let actions: Vec<_> = (0..8).map(HmmAction::global_read).collect();
            all_global.step(&actions);
        }
        // Staged: 1 global round + 10 shared rounds.
        let load: Vec<_> = (0..8).map(HmmAction::global_read).collect();
        staged.step(&load);
        for _ in 0..reuse {
            let actions: Vec<_> = (0..8).map(|j| HmmAction::shared_read(j % 4)).collect();
            staged.step(&actions);
        }
        assert!(
            staged.elapsed() < all_global.elapsed(),
            "staging {} must beat all-global {}",
            staged.elapsed(),
            all_global.elapsed()
        );
    }
}
