//! # umm-core — memory machine models
//!
//! Cycle-level timing models of the **Unified Memory Machine (UMM)** and the
//! **Discrete Memory Machine (DMM)**, the theoretical GPU memory models of
//! Nakano et al. used by *"Bulk Execution of Oblivious Algorithms on the
//! Unified Memory Machine, with GPU Implementation"* (Tani, Takafuji,
//! Nakano, Ito; 2014).
//!
//! Both machines run `p` threads in SIMD lockstep, partitioned into warps of
//! `w` threads, over a memory reached through an `l`-stage pipeline:
//!
//! * on the **UMM** a warp's requests are grouped by *address group*
//!   (`w` consecutive words) and occupy one pipeline stage per distinct
//!   group — the model of CUDA global-memory *coalescing*;
//! * on the **DMM** a warp's requests are serialised per *memory bank*
//!   (addresses congruent mod `w`) — the model of shared-memory *bank
//!   conflicts*.
//!
//! The crate is **trace-driven**: it prices sequences of memory requests and
//! never stores data values.  Value semantics live in the `oblivious` crate.
//!
//! ## Quick example
//!
//! ```
//! use umm_core::{MachineConfig, ThreadAction, UmmSimulator};
//!
//! // Width 4, latency 5 — the machine of the paper's Figure 4.
//! let cfg = MachineConfig::paper_figure4();
//! let mut sim = UmmSimulator::new(cfg, 8);
//!
//! // Eight threads read eight consecutive addresses: two warps, one
//! // address group each => 2 stages + 5 - 1 = 6 time units.
//! let round: Vec<_> = (0..8).map(ThreadAction::read).collect();
//! assert_eq!(sim.step(&round), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod analysis;
pub mod config;
pub mod dmm;
pub mod hmm;
pub mod profile;
pub mod schedule;
pub mod stats;
pub mod trace;
pub mod umm;

pub use access::{Op, ThreadAction, WarpRequest};
pub use analysis::{address_group_histogram, stride_histogram, summarize, TraceSummary};
pub use config::MachineConfig;
pub use dmm::DmmSimulator;
pub use hmm::{HmmAction, HmmConfig, HmmSimulator};
pub use profile::{SimProfile, SimTimeline};
pub use schedule::{WarpSchedule, WarpScratch};
pub use stats::AccessStats;
pub use trace::{Round, RoundTrace, ThreadTrace};
pub use umm::{simulate_async, simulate_async_profiled, simulate_async_traced, UmmSimulator};
