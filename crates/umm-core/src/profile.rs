//! Simulator profiling: per-warp dispatch histograms and stall accounting.
//!
//! The round-synchronous simulators ([`crate::umm::UmmSimulator`],
//! [`crate::dmm::DmmSimulator`]) and the event-driven
//! [`crate::umm::simulate_async`] optionally record *why* time was spent:
//!
//! * a histogram of the per-warp charge `k` (distinct address groups on the
//!   UMM, maximum bank conflict on the DMM) — the paper's entire coalescing
//!   argument is about the shape of this distribution;
//! * pipeline-stall accounting — time units in which no useful request was
//!   injected, split into per-round latency overhead (`l - 1` fill/drain
//!   per synchronous round) and, for the async executor, slots in which no
//!   warp was ready to dispatch.
//!
//! Recording is off by default and costs one never-taken branch per warp
//! when disabled; when the `obs` crate is built without its `profile`
//! feature, `enable_profiling` is a compile-time no-op.

use obs::{Histogram, Json};

/// Profiling data recorded by a simulator run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimProfile {
    /// Active (dispatched) warp count.
    pub warp_dispatches: u64,
    /// Distribution of the per-warp charge `k`: distinct address groups on
    /// the UMM, maximum bank conflict on the DMM.
    pub group_histogram: Histogram,
    /// Rounds in which no thread accessed memory (free on both machines).
    pub idle_rounds: u64,
    /// Time units lost to pipeline fill/drain: `l - 1` per active round on
    /// the synchronous simulators.
    pub latency_stall_units: u64,
    /// Async only: time units in which the pipeline had no ready warp to
    /// inject (threads all waiting on outstanding requests).
    pub wait_stall_units: u64,
}

impl SimProfile {
    /// A fresh, empty profile.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one dispatched warp with charge `k > 0`.
    #[inline]
    pub fn record_warp(&mut self, k: u64) {
        self.warp_dispatches += 1;
        self.group_histogram.record(k);
    }

    /// Record one synchronous round's outcome.
    #[inline]
    pub fn record_round(&mut self, active: bool, latency: usize) {
        if active {
            self.latency_stall_units += latency as u64 - 1;
        } else {
            self.idle_rounds += 1;
        }
    }

    /// Record an async scheduling gap of `gap` time units.
    #[inline]
    pub fn record_wait(&mut self, gap: u64) {
        self.wait_stall_units += gap;
    }

    /// As a JSON object (the `RunReport` building block).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("warp_dispatches", self.warp_dispatches);
        obj.set("idle_rounds", self.idle_rounds);
        obj.set("latency_stall_units", self.latency_stall_units);
        obj.set("wait_stall_units", self.wait_stall_units);
        obj.set("address_group_histogram", self.group_histogram.to_json());
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_accumulates_warps_and_rounds() {
        let mut p = SimProfile::new();
        p.record_warp(3);
        p.record_warp(1);
        p.record_round(true, 5);
        p.record_round(false, 5);
        assert_eq!(p.warp_dispatches, 2);
        assert_eq!(p.group_histogram.count(3), 1);
        assert_eq!(p.latency_stall_units, 4);
        assert_eq!(p.idle_rounds, 1);
        let j = p.to_json();
        assert_eq!(j.path("warp_dispatches").unwrap().as_i64(), Some(2));
        assert_eq!(j.path("address_group_histogram.total").unwrap().as_i64(), Some(2));
    }
}
