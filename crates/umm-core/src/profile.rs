//! Simulator profiling: per-warp dispatch histograms and stall accounting.
//!
//! The round-synchronous simulators ([`crate::umm::UmmSimulator`],
//! [`crate::dmm::DmmSimulator`]) and the event-driven
//! [`crate::umm::simulate_async`] optionally record *why* time was spent:
//!
//! * a histogram of the per-warp charge `k` (distinct address groups on the
//!   UMM, maximum bank conflict on the DMM) — the paper's entire coalescing
//!   argument is about the shape of this distribution;
//! * pipeline-stall accounting — time units in which no useful request was
//!   injected, split into per-round latency overhead (`l - 1` fill/drain
//!   per synchronous round) and, for the async executor, slots in which no
//!   warp was ready to dispatch.
//!
//! Recording is off by default and costs one never-taken branch per warp
//! when disabled; when the `obs` crate is built without its `profile`
//! feature, `enable_profiling` is a compile-time no-op.

use obs::trace::Tracer;
use obs::{Histogram, Json};

/// Profiling data recorded by a simulator run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimProfile {
    /// Active (dispatched) warp count.
    pub warp_dispatches: u64,
    /// Distribution of the per-warp charge `k`: distinct address groups on
    /// the UMM, maximum bank conflict on the DMM.
    pub group_histogram: Histogram,
    /// Rounds in which no thread accessed memory (free on both machines).
    pub idle_rounds: u64,
    /// Time units lost to pipeline fill/drain: `l - 1` per active round on
    /// the synchronous simulators.
    pub latency_stall_units: u64,
    /// Async only: time units in which the pipeline had no ready warp to
    /// inject (threads all waiting on outstanding requests).
    pub wait_stall_units: u64,
}

impl SimProfile {
    /// A fresh, empty profile.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one dispatched warp with charge `k > 0`.
    #[inline]
    pub fn record_warp(&mut self, k: u64) {
        self.warp_dispatches += 1;
        self.group_histogram.record(k);
    }

    /// Record one synchronous round's outcome.
    #[inline]
    pub fn record_round(&mut self, active: bool, latency: usize) {
        if active {
            self.latency_stall_units += latency as u64 - 1;
        } else {
            self.idle_rounds += 1;
        }
    }

    /// Record an async scheduling gap of `gap` time units.
    #[inline]
    pub fn record_wait(&mut self, gap: u64) {
        self.wait_stall_units += gap;
    }

    /// As a JSON object (the `RunReport` building block).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("warp_dispatches", self.warp_dispatches);
        obj.set("idle_rounds", self.idle_rounds);
        obj.set("latency_stall_units", self.latency_stall_units);
        obj.set("wait_stall_units", self.wait_stall_units);
        obj.set("address_group_histogram", self.group_histogram.to_json());
        obj
    }
}

/// Per-warp pipeline-occupancy timeline shared by the simulators.
///
/// Tracks 0..`warp_count` hold one complete span per dispatched warp (the
/// `k` injection slots it occupied); one extra "pipeline" track holds the
/// `l - 1` fill/drain span of each active round, async starvation gaps,
/// and idle-round markers.  By construction the spans on each track are
/// non-overlapping and their total duration reconciles exactly with
/// [`SimProfile`] and `AccessStats` accounting — the workspace's
/// `trace_invariants` tests assert this.
#[derive(Debug)]
pub struct SimTimeline {
    tracer: Tracer,
    model: &'static str,
    stall_tid: u64,
}

impl SimTimeline {
    /// A timeline for `warp_count` warps of the `model` machine
    /// (`"umm"`, `"dmm"`, `"umm-async"` — used as the span category).
    #[must_use]
    pub fn new(model: &'static str, warp_count: usize) -> Self {
        let mut tracer = Tracer::new();
        for i in 0..warp_count {
            tracer.name_track(i as u64, format!("warp {i}"));
        }
        let stall_tid = warp_count as u64;
        tracer.name_track(stall_tid, "pipeline");
        Self { tracer, model, stall_tid }
    }

    /// Record warp `warp` occupying `k` injection slots from `ts`.
    #[inline]
    pub fn warp(&mut self, warp: usize, ts: u64, k: u64) {
        let mut args = Json::obj();
        args.set("k", k);
        self.tracer.span(warp as u64, "warp", self.model, ts, k, args);
    }

    /// Record a round's `l - 1` fill/drain span starting at `ts`.
    #[inline]
    pub fn drain(&mut self, ts: u64, units: u64) {
        self.tracer.span(self.stall_tid, "fill/drain", "stall", ts, units, Json::Null);
    }

    /// Record an async starvation gap (no warp ready) starting at `ts`.
    #[inline]
    pub fn starved(&mut self, ts: u64, units: u64) {
        self.tracer.span(self.stall_tid, "starved", "stall", ts, units, Json::Null);
    }

    /// Mark a free idle round (no thread accessed memory) at `ts`.
    #[inline]
    pub fn idle(&mut self, ts: u64) {
        self.tracer.instant(self.stall_tid, "idle_round", "stall", ts);
    }

    /// The stall track's id (`warp_count`).
    #[must_use]
    pub fn stall_track(&self) -> u64 {
        self.stall_tid
    }

    /// The recorded events.
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Consume the timeline, yielding the recorded events.
    #[must_use]
    pub fn into_tracer(self) -> Tracer {
        self.tracer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_accumulates_warps_and_rounds() {
        let mut p = SimProfile::new();
        p.record_warp(3);
        p.record_warp(1);
        p.record_round(true, 5);
        p.record_round(false, 5);
        assert_eq!(p.warp_dispatches, 2);
        assert_eq!(p.group_histogram.count(3), 1);
        assert_eq!(p.latency_stall_units, 4);
        assert_eq!(p.idle_rounds, 1);
        let j = p.to_json();
        assert_eq!(j.path("warp_dispatches").unwrap().as_i64(), Some(2));
        assert_eq!(j.path("address_group_histogram.total").unwrap().as_i64(), Some(2));
    }

    #[test]
    fn timeline_names_tracks_and_separates_categories() {
        let mut tl = SimTimeline::new("umm", 2);
        tl.warp(0, 0, 3);
        tl.warp(1, 3, 1);
        tl.drain(4, 4);
        tl.idle(8);
        assert_eq!(tl.stall_track(), 2);
        let t = tl.into_tracer();
        assert_eq!(t.track_name(0), Some("warp 0"));
        assert_eq!(t.track_name(2), Some("pipeline"));
        assert_eq!(t.spanned_ticks(0), 3);
        assert_eq!(t.spanned_ticks_by_cat("umm"), 4);
        assert_eq!(t.spanned_ticks_by_cat("stall"), 4);
        obs::trace::validate(&t).unwrap();
    }
}
