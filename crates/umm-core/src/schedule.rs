//! Warp partitioning and per-warp cost primitives.
//!
//! Both machine models share the same thread organisation: `p` threads are
//! split into `p/w` warps `W(i) = { T(iw), ..., T((i+1)w - 1) }`.  What
//! differs is how a dispatched warp's requests are charged:
//!
//! * **UMM** — requests spanning `k` distinct *address groups* occupy `k`
//!   pipeline stages;
//! * **DMM** — requests are serialised per *memory bank*, so the warp costs
//!   the maximum number of requests aimed at any single bank.

use crate::access::{ThreadAction, WarpRequest};
use crate::config::MachineConfig;

/// The warp decomposition of `p` threads on a machine of width `w`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarpSchedule {
    /// Total thread count `p`.
    pub p: usize,
    /// Threads per warp (= machine width `w`).
    pub w: usize,
}

impl WarpSchedule {
    /// Build a schedule for `p` threads on machine `cfg`.
    ///
    /// The paper assumes `p` is a multiple of `w`; we relax this by letting
    /// the final warp be partially populated (its missing lanes are treated
    /// as idle), which is also what CUDA does.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    #[must_use]
    pub fn new(p: usize, cfg: &MachineConfig) -> Self {
        assert!(p > 0, "a schedule needs at least one thread");
        Self { p, w: cfg.width }
    }

    /// Number of warps `ceil(p / w)`.
    #[must_use]
    pub fn warp_count(&self) -> usize {
        self.p.div_ceil(self.w)
    }

    /// The half-open lane range `[lo, hi)` of warp `i` within `0..p`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= warp_count()`.
    #[must_use]
    pub fn warp_range(&self, i: usize) -> core::ops::Range<usize> {
        assert!(i < self.warp_count(), "warp index out of range");
        let lo = i * self.w;
        let hi = ((i + 1) * self.w).min(self.p);
        lo..hi
    }

    /// Split a `p`-long round of actions into per-warp request slices.
    pub fn warps<'a>(
        &self,
        actions: &'a [ThreadAction],
    ) -> impl Iterator<Item = WarpRequest<'a>> + 'a {
        debug_assert_eq!(actions.len(), self.p);
        let w = self.w;
        actions.chunks(w).map(WarpRequest::new)
    }
}

/// Scratch space reused across per-warp cost computations to avoid
/// reallocating inside hot simulator loops.
#[derive(Debug, Default)]
pub struct WarpScratch {
    buf: Vec<usize>,
}

impl WarpScratch {
    /// Fresh scratch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of **distinct address groups** touched by a warp's requests —
    /// the UMM pipeline-stage count `k` for this warp.  Zero for an inactive
    /// warp.
    #[must_use]
    pub fn distinct_address_groups(
        &mut self,
        cfg: &MachineConfig,
        warp: &WarpRequest<'_>,
    ) -> usize {
        self.buf.clear();
        self.buf.extend(warp.addresses().map(|a| cfg.address_group(a)));
        Self::count_distinct(&mut self.buf)
    }

    /// Maximum number of requests destined for any single **memory bank** —
    /// the DMM serialisation factor for this warp.  Zero for an inactive
    /// warp.
    #[must_use]
    pub fn max_bank_conflicts(&mut self, cfg: &MachineConfig, warp: &WarpRequest<'_>) -> usize {
        self.buf.clear();
        self.buf.extend(warp.addresses().map(|a| cfg.bank(a)));
        if self.buf.is_empty() {
            return 0;
        }
        self.buf.sort_unstable();
        let mut best = 1;
        let mut run = 1;
        for i in 1..self.buf.len() {
            if self.buf[i] == self.buf[i - 1] {
                run += 1;
                best = best.max(run);
            } else {
                run = 1;
            }
        }
        best
    }

    fn count_distinct(buf: &mut [usize]) -> usize {
        if buf.is_empty() {
            return 0;
        }
        buf.sort_unstable();
        1 + buf.windows(2).filter(|wd| wd[0] != wd[1]).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::new(4, 5)
    }

    #[test]
    fn warp_partition_matches_paper_layout() {
        let s = WarpSchedule::new(20, &cfg());
        assert_eq!(s.warp_count(), 5);
        assert_eq!(s.warp_range(0), 0..4);
        assert_eq!(s.warp_range(4), 16..20);
    }

    #[test]
    fn ragged_final_warp_allowed() {
        let s = WarpSchedule::new(10, &cfg());
        assert_eq!(s.warp_count(), 3);
        assert_eq!(s.warp_range(2), 8..10);
    }

    #[test]
    fn warps_iterator_chunks_actions() {
        let s = WarpSchedule::new(8, &cfg());
        let actions: Vec<_> = (0..8).map(ThreadAction::read).collect();
        let warps: Vec<_> = s.warps(&actions).collect();
        assert_eq!(warps.len(), 2);
        assert_eq!(warps[1].addresses().collect::<Vec<_>>(), vec![4, 5, 6, 7]);
    }

    #[test]
    fn distinct_groups_counts_coalescing() {
        let c = cfg();
        let mut scratch = WarpScratch::new();
        // Four consecutive addresses in one group: fully coalesced, k = 1.
        let lanes: Vec<_> = (8..12).map(ThreadAction::read).collect();
        assert_eq!(scratch.distinct_address_groups(&c, &WarpRequest::new(&lanes)), 1);
        // Stride-n accesses land in 4 different groups: k = 4.
        let lanes: Vec<_> = (0..4).map(|j| ThreadAction::read(j * 6)).collect();
        assert_eq!(scratch.distinct_address_groups(&c, &WarpRequest::new(&lanes)), 4);
        // Idle warp: k = 0.
        let lanes = vec![ThreadAction::Idle; 4];
        assert_eq!(scratch.distinct_address_groups(&c, &WarpRequest::new(&lanes)), 0);
    }

    #[test]
    fn bank_conflicts_counts_serialisation() {
        let c = cfg();
        let mut scratch = WarpScratch::new();
        // Consecutive addresses hit distinct banks: conflict-free.
        let lanes: Vec<_> = (8..12).map(ThreadAction::read).collect();
        assert_eq!(scratch.max_bank_conflicts(&c, &WarpRequest::new(&lanes)), 1);
        // Stride-w accesses all hit bank 0: fully serialised.
        let lanes: Vec<_> = (0..4).map(|j| ThreadAction::read(j * 4)).collect();
        assert_eq!(scratch.max_bank_conflicts(&c, &WarpRequest::new(&lanes)), 4);
        // Two-way conflict.
        let lanes: Vec<_> = [0usize, 4, 1, 2].iter().map(|&a| ThreadAction::read(a)).collect();
        assert_eq!(scratch.max_bank_conflicts(&c, &WarpRequest::new(&lanes)), 2);
        // Idle warp.
        let lanes = vec![ThreadAction::Idle; 4];
        assert_eq!(scratch.max_bank_conflicts(&c, &WarpRequest::new(&lanes)), 0);
    }

    #[test]
    fn duplicate_addresses_same_group_still_one_stage() {
        // The UMM broadcasts one address row; identical addresses coalesce.
        let c = cfg();
        let mut scratch = WarpScratch::new();
        let lanes = vec![ThreadAction::read(7); 4];
        assert_eq!(scratch.distinct_address_groups(&c, &WarpRequest::new(&lanes)), 1);
    }
}
