//! Aggregate memory access statistics.

use crate::access::ThreadAction;
use obs::Json;

/// Counters accumulated by the machine simulators.
///
/// `pipeline_stages` counts injections into the memory pipeline: on the UMM
/// one per distinct address group per warp dispatch, on the DMM the sum of
/// per-warp maximum bank conflicts.  The ratio of accesses to stage-widths
/// gives a *coalescing efficiency*: 1.0 means every stage carried a full
/// warp's worth of useful requests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Lockstep rounds observed (including all-idle rounds).
    pub rounds: u64,
    /// Rounds in which at least one thread accessed memory.
    pub active_rounds: u64,
    /// Individual thread memory requests.
    pub accesses: u64,
    /// Read requests among `accesses`.
    pub reads: u64,
    /// Write requests among `accesses`.
    pub writes: u64,
    /// Pipeline injections charged.
    pub pipeline_stages: u64,
    /// Total time units charged.
    pub time_units: u64,
}

impl AccessStats {
    /// Record one round's actions and its charged stages/cost.
    pub(crate) fn record_round(&mut self, actions: &[ThreadAction], stages: u64, cost: u64) {
        self.rounds += 1;
        if stages > 0 {
            self.active_rounds += 1;
        }
        for a in actions {
            match a {
                ThreadAction::Idle => {}
                ThreadAction::Access(crate::access::Op::Read, _) => {
                    self.accesses += 1;
                    self.reads += 1;
                }
                ThreadAction::Access(crate::access::Op::Write, _) => {
                    self.accesses += 1;
                    self.writes += 1;
                }
            }
        }
        self.pipeline_stages += stages;
        self.time_units += cost;
    }

    /// Record one *uniform* round — all `p` threads perform the same `op`
    /// (no idle lanes) — without materialising a per-thread action vector.
    ///
    /// Arithmetic is identical to [`AccessStats::record_round`] on a round
    /// of `p` copies of `ThreadAction::Access(op, _)`; the compiled-schedule
    /// replay path uses this so its statistics are bit-identical to the
    /// interpreter's.
    pub(crate) fn record_uniform_round(
        &mut self,
        op: crate::access::Op,
        p: u64,
        stages: u64,
        cost: u64,
    ) {
        self.rounds += 1;
        if stages > 0 {
            self.active_rounds += 1;
        }
        self.accesses += p;
        match op {
            crate::access::Op::Read => self.reads += p,
            crate::access::Op::Write => self.writes += p,
        }
        self.pipeline_stages += stages;
        self.time_units += cost;
    }

    /// Fraction of pipeline stage capacity carrying useful requests:
    /// `accesses / (pipeline_stages * w)`.  Returns `None` before any stage
    /// has been charged.
    #[must_use]
    pub fn coalescing_efficiency(&self, width: usize) -> Option<f64> {
        if self.pipeline_stages == 0 {
            return None;
        }
        Some(self.accesses as f64 / (self.pipeline_stages as f64 * width as f64))
    }

    /// As a JSON object, one field per counter.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("rounds", self.rounds);
        obj.set("active_rounds", self.active_rounds);
        obj.set("accesses", self.accesses);
        obj.set("reads", self.reads);
        obj.set("writes", self.writes);
        obj.set("pipeline_stages", self.pipeline_stages);
        obj.set("time_units", self.time_units);
        obj
    }

    /// Merge another statistics block into this one.
    pub fn merge(&mut self, other: &AccessStats) {
        self.rounds += other.rounds;
        self.active_rounds += other.active_rounds;
        self.accesses += other.accesses;
        self.reads += other.reads;
        self.writes += other.writes;
        self.pipeline_stages += other.pipeline_stages;
        self.time_units += other.time_units;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::ThreadAction;

    #[test]
    fn record_counts_ops() {
        let mut s = AccessStats::default();
        let actions = [ThreadAction::read(0), ThreadAction::write(1), ThreadAction::Idle];
        s.record_round(&actions, 2, 6);
        assert_eq!(s.rounds, 1);
        assert_eq!(s.active_rounds, 1);
        assert_eq!(s.accesses, 2);
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.pipeline_stages, 2);
        assert_eq!(s.time_units, 6);
    }

    #[test]
    fn efficiency_is_accesses_per_stage_width() {
        let mut s = AccessStats::default();
        let actions: Vec<_> = (0..4).map(ThreadAction::read).collect();
        s.record_round(&actions, 1, 5);
        assert_eq!(s.coalescing_efficiency(4), Some(1.0));
        let mut bad = AccessStats::default();
        bad.record_round(&actions, 4, 8);
        assert_eq!(bad.coalescing_efficiency(4), Some(0.25));
    }

    #[test]
    fn efficiency_none_without_stages() {
        let s = AccessStats::default();
        assert_eq!(s.coalescing_efficiency(4), None);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = AccessStats::default();
        let actions = [ThreadAction::read(0)];
        a.record_round(&actions, 1, 5);
        let mut b = AccessStats::default();
        b.record_round(&actions, 1, 5);
        a.merge(&b);
        assert_eq!(a.rounds, 2);
        assert_eq!(a.accesses, 2);
        assert_eq!(a.time_units, 10);
    }
}
