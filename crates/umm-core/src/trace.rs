//! Memory access traces.
//!
//! A *thread trace* is the sequence of actions one sequential algorithm
//! performs — the concrete form of the paper's address function `a(t)`.
//! A *round trace* is the per-step action matrix of `p` threads executing in
//! SIMD lockstep; the machine simulators consume rounds.

use crate::access::{Op, ThreadAction};
use obs::Json;

/// The recorded access sequence of a single sequential execution.
///
/// For an oblivious algorithm this sequence is the same for every input of
/// the same size, so it *is* the address function `a : time -> address`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThreadTrace {
    steps: Vec<ThreadAction>,
}

impl ThreadTrace {
    /// Empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Trace with pre-allocated capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self { steps: Vec::with_capacity(cap) }
    }

    /// Append one step.
    pub fn push(&mut self, action: ThreadAction) {
        self.steps.push(action);
    }

    /// Record a read of `addr`.
    pub fn read(&mut self, addr: usize) {
        self.push(ThreadAction::read(addr));
    }

    /// Record a write of `addr`.
    pub fn write(&mut self, addr: usize) {
        self.push(ThreadAction::write(addr));
    }

    /// Number of steps `t` (including idle steps).
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if no steps were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of steps that actually touch memory.
    #[must_use]
    pub fn access_count(&self) -> usize {
        self.steps.iter().filter(|s| s.is_access()).count()
    }

    /// The steps as a slice.
    #[must_use]
    pub fn steps(&self) -> &[ThreadAction] {
        &self.steps
    }

    /// Largest address referenced, if any access exists.
    #[must_use]
    pub fn max_address(&self) -> Option<usize> {
        self.steps.iter().filter_map(ThreadAction::addr).max()
    }

    /// True if every referenced address is `< bound`.
    #[must_use]
    pub fn within_bounds(&self, bound: usize) -> bool {
        self.max_address().is_none_or(|m| m < bound)
    }

    /// As a JSON array of actions (see [`action_json`] for the encoding).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Arr(self.steps.iter().map(action_json).collect())
    }
}

/// JSON encoding of one action: `null` for idle, `["r", addr]` / `["w",
/// addr]` for accesses.  Used by the golden-trace regression files.
#[must_use]
pub fn action_json(a: &ThreadAction) -> Json {
    match a {
        ThreadAction::Idle => Json::Null,
        ThreadAction::Access(op, addr) => Json::Arr(vec![
            Json::from(match op {
                Op::Read => "r",
                Op::Write => "w",
            }),
            Json::from(*addr),
        ]),
    }
}

impl FromIterator<ThreadAction> for ThreadTrace {
    fn from_iter<I: IntoIterator<Item = ThreadAction>>(iter: I) -> Self {
        Self { steps: iter.into_iter().collect() }
    }
}

/// One lockstep step of `p` threads: `actions[j]` is thread `T(j)`'s action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Round {
    /// Per-thread actions, length `p`.
    pub actions: Vec<ThreadAction>,
}

impl Round {
    /// A round in which every one of `p` threads performs `f(j)`.
    #[must_use]
    pub fn from_fn(p: usize, f: impl Fn(usize) -> ThreadAction) -> Self {
        Self { actions: (0..p).map(f).collect() }
    }

    /// Number of threads.
    #[must_use]
    pub fn p(&self) -> usize {
        self.actions.len()
    }
}

/// Materialised multi-round trace for `p` lockstep threads.
///
/// Large bulk executions should prefer the streaming cost APIs in
/// [`crate::umm`] / [`crate::dmm`], which consume one round at a time; this
/// container exists for tests and small model experiments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundTrace {
    rounds: Vec<Round>,
}

impl RoundTrace {
    /// Empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a round.  All rounds must have the same thread count.
    ///
    /// # Panics
    ///
    /// Panics if `round.p()` differs from previously pushed rounds.
    pub fn push(&mut self, round: Round) {
        if let Some(first) = self.rounds.first() {
            assert_eq!(
                first.p(),
                round.p(),
                "all rounds of a RoundTrace must have the same thread count"
            );
        }
        self.rounds.push(round);
    }

    /// The rounds.
    #[must_use]
    pub fn rounds(&self) -> &[Round] {
        &self.rounds
    }

    /// Number of rounds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// True if no rounds exist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Thread count `p`, or 0 when empty.
    #[must_use]
    pub fn p(&self) -> usize {
        self.rounds.first().map_or(0, Round::p)
    }

    /// As a JSON array of rounds, each an array of per-thread actions.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.rounds
                .iter()
                .map(|r| Json::Arr(r.actions.iter().map(action_json).collect()))
                .collect(),
        )
    }
}

impl FromIterator<Round> for RoundTrace {
    fn from_iter<I: IntoIterator<Item = Round>>(iter: I) -> Self {
        let mut t = Self::new();
        for r in iter {
            t.push(r);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::Op;

    #[test]
    fn thread_trace_records_in_order() {
        let mut t = ThreadTrace::new();
        t.read(0);
        t.write(0);
        t.push(ThreadAction::Idle);
        t.read(1);
        assert_eq!(t.len(), 4);
        assert_eq!(t.access_count(), 3);
        assert_eq!(t.steps()[0], ThreadAction::Access(Op::Read, 0));
        assert_eq!(t.steps()[2], ThreadAction::Idle);
        assert_eq!(t.max_address(), Some(1));
        assert!(t.within_bounds(2));
        assert!(!t.within_bounds(1));
    }

    #[test]
    fn empty_trace_is_within_any_bounds() {
        let t = ThreadTrace::new();
        assert!(t.is_empty());
        assert!(t.within_bounds(0));
        assert_eq!(t.max_address(), None);
    }

    #[test]
    fn round_from_fn_builds_per_thread_actions() {
        let r = Round::from_fn(4, |j| ThreadAction::read(10 * j));
        assert_eq!(r.p(), 4);
        assert_eq!(r.actions[3], ThreadAction::read(30));
    }

    #[test]
    #[should_panic(expected = "same thread count")]
    fn mismatched_round_width_rejected() {
        let mut t = RoundTrace::new();
        t.push(Round::from_fn(4, |_| ThreadAction::Idle));
        t.push(Round::from_fn(5, |_| ThreadAction::Idle));
    }

    #[test]
    fn round_trace_collects() {
        let t: RoundTrace =
            (0..3).map(|i| Round::from_fn(2, move |j| ThreadAction::read(i * 2 + j))).collect();
        assert_eq!(t.len(), 3);
        assert_eq!(t.p(), 2);
    }
}
