//! The Unified Memory Machine (UMM) timing simulators.
//!
//! The UMM charges a dispatched warp one pipeline stage per **distinct
//! address group** among its requests; a request injected into the pipeline
//! at time `τ` completes at `τ + l - 1`.  The paper's Figure 4 example —
//! warp `W(0)` spanning 3 address groups followed by `W(1)` spanning 1, with
//! latency `l = 5` — therefore finishes in `3 + 1 + 5 - 1 = 8` time units.
//!
//! Two executors are provided:
//!
//! * [`UmmSimulator`] — *round-synchronous*: every lockstep round is charged
//!   `(Σ_warps k_i) + l - 1` and rounds do not overlap in the pipeline.
//!   This is exactly the accounting used in the paper's proofs (Lemma 1,
//!   Theorem 2, Corollary 5) and is cheap enough to stream billions of
//!   rounds.
//! * [`simulate_async`] — a discrete-event simulator in which warps are
//!   dispatched round-robin and constrained only by their own previous
//!   request (one outstanding request per thread).  It can overlap distinct
//!   warps' rounds in the pipeline, so its time never exceeds the
//!   round-synchronous time; both satisfy the paper's Ω(pt/w + lt) lower
//!   bound.

use crate::access::ThreadAction;
use crate::config::MachineConfig;
use crate::profile::SimProfile;
use crate::schedule::{WarpSchedule, WarpScratch};
use crate::stats::AccessStats;
use crate::trace::RoundTrace;

/// Streaming round-synchronous UMM timing simulator.
///
/// Feed one lockstep round at a time with [`UmmSimulator::step`]; the running
/// total in time units is available from [`UmmSimulator::elapsed`].
#[derive(Debug)]
pub struct UmmSimulator {
    cfg: MachineConfig,
    schedule: WarpSchedule,
    scratch: WarpScratch,
    elapsed: u64,
    stats: AccessStats,
    profile: Option<SimProfile>,
}

impl UmmSimulator {
    /// Create a simulator for `p` lockstep threads on machine `cfg`.
    #[must_use]
    pub fn new(cfg: MachineConfig, p: usize) -> Self {
        Self {
            cfg,
            schedule: WarpSchedule::new(p, &cfg),
            scratch: WarpScratch::new(),
            elapsed: 0,
            stats: AccessStats::default(),
            profile: None,
        }
    }

    /// Machine configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Thread count `p`.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.schedule.p
    }

    /// Turn on per-warp profiling (histogram of distinct address groups,
    /// stall accounting).  No-op at compile time when `obs` is built
    /// without its `profile` feature.
    pub fn enable_profiling(&mut self) {
        if obs::PROFILING_COMPILED {
            self.profile = Some(SimProfile::new());
        }
    }

    /// The recorded profile, if profiling was enabled.
    #[must_use]
    pub fn profile(&self) -> Option<&SimProfile> {
        self.profile.as_ref()
    }

    /// Charge one lockstep round (`actions.len() == p`) and return its cost.
    ///
    /// The cost is `(Σ_{active warps} k_i) + l - 1` where `k_i` is the number
    /// of distinct address groups requested by warp `i`; a round with no
    /// active warp costs nothing.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `actions.len() != p`.
    pub fn step(&mut self, actions: &[ThreadAction]) -> u64 {
        debug_assert_eq!(actions.len(), self.schedule.p, "round width must equal p");
        let mut stages = 0u64;
        let mut active = false;
        for warp in self.schedule.warps(actions) {
            let k = self.scratch.distinct_address_groups(&self.cfg, &warp) as u64;
            if k > 0 {
                active = true;
                stages += k;
                if let Some(pr) = self.profile.as_mut() {
                    pr.record_warp(k);
                }
            }
        }
        let cost = if active { stages + self.cfg.latency as u64 - 1 } else { 0 };
        self.elapsed += cost;
        self.stats.record_round(actions, stages, cost);
        if let Some(pr) = self.profile.as_mut() {
            pr.record_round(active, self.cfg.latency);
        }
        cost
    }

    /// Total time units charged so far.
    #[must_use]
    pub fn elapsed(&self) -> u64 {
        self.elapsed
    }

    /// Access statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &AccessStats {
        &self.stats
    }

    /// Reset the clock, statistics, and any recorded profile, keeping
    /// configuration (and whether profiling is enabled).
    pub fn reset(&mut self) {
        self.elapsed = 0;
        self.stats = AccessStats::default();
        if let Some(pr) = self.profile.as_mut() {
            *pr = SimProfile::new();
        }
    }

    /// Run an entire materialised trace and return the total time.
    pub fn run(&mut self, trace: &RoundTrace) -> u64 {
        for round in trace.rounds() {
            self.step(&round.actions);
        }
        self.elapsed
    }
}

/// Cost of a single round without constructing a simulator.
#[must_use]
pub fn round_cost(cfg: &MachineConfig, actions: &[ThreadAction]) -> u64 {
    let mut sim = UmmSimulator::new(*cfg, actions.len());
    sim.step(actions)
}

/// A recording sink for [`simulate_async`] events.
///
/// The plain entry point uses the no-op implementation, which monomorphizes
/// to nothing — the profiled and unprofiled simulations compile to separate
/// code, so disabled instrumentation costs zero.
trait AsyncSink {
    fn dispatch(&mut self, _k: u64) {}
    fn wait(&mut self, _gap: u64) {}
}

/// The zero-cost sink.
struct NoSink;
impl AsyncSink for NoSink {}

impl AsyncSink for SimProfile {
    fn dispatch(&mut self, k: u64) {
        self.record_warp(k);
    }
    fn wait(&mut self, gap: u64) {
        self.record_wait(gap);
    }
}

/// Discrete-event UMM simulation of a materialised trace.
///
/// Warps are dispatched in round-robin order among those that are *ready*
/// (their previous round's requests have completed).  The pipeline accepts
/// one address-group injection per time unit; a warp whose round spans `k`
/// groups occupies `k` consecutive injection slots and completes `l - 1`
/// time units after its last injection.  Returns the completion time of the
/// final request (total duration in time units).
#[must_use]
pub fn simulate_async(cfg: &MachineConfig, trace: &RoundTrace) -> u64 {
    simulate_async_sink(cfg, trace, &mut NoSink)
}

/// [`simulate_async`] with profiling: additionally returns the per-warp
/// dispatch histogram and the time units in which the pipeline sat idle
/// because every warp was waiting on its outstanding request.
#[must_use]
pub fn simulate_async_profiled(cfg: &MachineConfig, trace: &RoundTrace) -> (u64, SimProfile) {
    let mut profile = SimProfile::new();
    let t = simulate_async_sink(cfg, trace, &mut profile);
    (t, profile)
}

fn simulate_async_sink<S: AsyncSink>(cfg: &MachineConfig, trace: &RoundTrace, sink: &mut S) -> u64 {
    if trace.is_empty() {
        return 0;
    }
    let p = trace.p();
    let schedule = WarpSchedule::new(p, cfg);
    let nwarps = schedule.warp_count();
    let rounds = trace.rounds();
    let l = cfg.latency as u64;
    let mut scratch = WarpScratch::new();

    // Per-warp stage counts per round, precomputed; rounds with k = 0 are
    // skipped entirely (the warp is not dispatched).
    let mut queues: Vec<Vec<u64>> = vec![Vec::new(); nwarps];
    for round in rounds {
        for (i, warp) in schedule.warps(&round.actions).enumerate() {
            let k = scratch.distinct_address_groups(cfg, &warp) as u64;
            if k > 0 {
                queues[i].push(k);
            }
        }
    }

    let mut next: Vec<usize> = vec![0; nwarps]; // next round index per warp
    let mut busy: Vec<u64> = vec![0; nwarps]; // earliest re-dispatch time
    let mut inject: u64 = 0; // next free pipeline slot
    let mut finish: u64 = 0; // completion time of last request so far
    let mut rr = 0usize; // round-robin pointer
    let mut pending: usize = queues.iter().filter(|q| !q.is_empty()).count();

    while pending > 0 {
        // Find the next ready warp in round-robin order.
        let mut chosen = None;
        for off in 0..nwarps {
            let i = (rr + off) % nwarps;
            if next[i] < queues[i].len() && busy[i] <= inject {
                chosen = Some(i);
                break;
            }
        }
        let Some(i) = chosen else {
            // Nobody ready: advance the clock to the earliest ready time.
            let earliest = (0..nwarps)
                .filter(|&i| next[i] < queues[i].len())
                .map(|i| busy[i])
                .min()
                .expect("pending > 0 implies a pending warp exists");
            sink.wait(earliest - inject);
            inject = earliest;
            continue;
        };
        let k = queues[i][next[i]];
        sink.dispatch(k);
        next[i] += 1;
        if next[i] == queues[i].len() {
            pending -= 1;
        }
        let done = inject + k - 1 + (l - 1);
        busy[i] = done + 1;
        finish = finish.max(done + 1);
        inject += k;
        rr = (i + 1) % nwarps;
    }
    finish
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Round;

    /// The paper's Figure 4 worked example: width 4, latency 5; warp W(0)'s
    /// requests span 3 address groups, W(1)'s span 1 → 3 + 1 + 5 - 1 = 8.
    #[test]
    fn paper_worked_example() {
        let cfg = MachineConfig::paper_figure4();
        // p = 8 threads, 2 warps.  W(0) touches groups {0, 1, 2}; W(1)
        // touches a single group.
        let actions = vec![
            // W(0): addresses 0, 5, 9, 1 → groups 0, 1, 2, 0 → k = 3.
            ThreadAction::read(0),
            ThreadAction::read(5),
            ThreadAction::read(9),
            ThreadAction::read(1),
            // W(1): addresses 12..16 → group 3 → k = 1.
            ThreadAction::read(12),
            ThreadAction::read(13),
            ThreadAction::read(14),
            ThreadAction::read(15),
        ];
        assert_eq!(round_cost(&cfg, &actions), 8);

        // The event-driven simulator agrees on a single round.
        let mut trace = RoundTrace::new();
        trace.push(Round { actions });
        assert_eq!(simulate_async(&cfg, &trace), 8);
    }

    #[test]
    fn fully_coalesced_round_costs_pw_plus_l_minus_1() {
        // p threads reading p consecutive addresses: p/w stages total.
        let cfg = MachineConfig::new(4, 5);
        let p = 16;
        let actions: Vec<_> = (0..p).map(ThreadAction::read).collect();
        assert_eq!(round_cost(&cfg, &actions), (p / 4 + 5 - 1) as u64);
    }

    #[test]
    fn worst_case_round_costs_p_plus_l_minus_1() {
        // Each thread reads stride-w addresses within its own group... the
        // row-wise pattern: thread j reads j*n + c with n >= w, so every
        // thread is in its own address group: p stages.
        let cfg = MachineConfig::new(4, 5);
        let p = 16;
        let n = 8; // n >= w
        let actions: Vec<_> = (0..p).map(|j| ThreadAction::read(j * n)).collect();
        assert_eq!(round_cost(&cfg, &actions), (p + 5 - 1) as u64);
    }

    #[test]
    fn idle_round_is_free() {
        let cfg = MachineConfig::new(4, 5);
        let actions = vec![ThreadAction::Idle; 8];
        assert_eq!(round_cost(&cfg, &actions), 0);
        let mut trace = RoundTrace::new();
        trace.push(Round { actions });
        assert_eq!(simulate_async(&cfg, &trace), 0);
    }

    #[test]
    fn sync_simulator_accumulates_rounds() {
        let cfg = MachineConfig::new(4, 5);
        let p = 8;
        let mut sim = UmmSimulator::new(cfg, p);
        for i in 0..10usize {
            // Column-wise style: all threads read consecutive addresses.
            let base = i * p;
            let actions: Vec<_> = (0..p).map(|j| ThreadAction::read(base + j)).collect();
            sim.step(&actions);
        }
        // Each round: p/w + l - 1 = 2 + 4 = 6; ten rounds = 60.
        assert_eq!(sim.elapsed(), 60);
        sim.reset();
        assert_eq!(sim.elapsed(), 0);
    }

    #[test]
    fn async_never_slower_than_sync() {
        // The async executor can overlap warps in the pipeline, so it is at
        // least as fast as the round-synchronous accounting.
        let cfg = MachineConfig::new(4, 3);
        let p = 12;
        let mut trace = RoundTrace::new();
        let mut sim = UmmSimulator::new(cfg, p);
        for i in 0..20usize {
            let actions: Vec<_> =
                (0..p).map(|j| ThreadAction::read((i * 31 + j * 7) % 64)).collect();
            sim.step(&actions);
            trace.push(Round { actions });
        }
        let sync = sim.elapsed();
        let async_t = simulate_async(&cfg, &trace);
        assert!(async_t <= sync, "async {async_t} must be <= sync {sync}");
        assert!(async_t > 0);
    }

    #[test]
    fn async_single_warp_serialises_on_latency() {
        // One warp, fully coalesced rounds: each round costs l (inject 1 slot,
        // complete l - 1 later, thread may not re-issue until then).
        let cfg = MachineConfig::new(4, 5);
        let p = 4;
        let mut trace = RoundTrace::new();
        for i in 0..10usize {
            let base = i * p;
            trace.push(Round { actions: (0..p).map(|j| ThreadAction::read(base + j)).collect() });
        }
        // Round r injects at time r*l and completes at r*l + l - 1.
        assert_eq!(simulate_async(&cfg, &trace), 10 * 5);
    }

    #[test]
    fn async_many_warps_pipeline_fully() {
        // With at least l warps of coalesced requests the pipeline never
        // starves: total = rounds * warps + (l - 1) ... the throughput bound.
        let cfg = MachineConfig::new(4, 5);
        let p = 4 * 8; // 8 warps >= l
        let rounds = 10usize;
        let mut trace = RoundTrace::new();
        for i in 0..rounds {
            let base = i * p;
            trace.push(Round { actions: (0..p).map(|j| ThreadAction::read(base + j)).collect() });
        }
        let t = simulate_async(&cfg, &trace);
        assert_eq!(t, (rounds * 8 + 5 - 1) as u64);
    }

    #[test]
    fn stats_accumulate() {
        let cfg = MachineConfig::new(4, 5);
        let p = 8;
        let mut sim = UmmSimulator::new(cfg, p);
        let actions: Vec<_> = (0..p).map(ThreadAction::read).collect();
        sim.step(&actions);
        assert_eq!(sim.stats().accesses, 8);
        assert_eq!(sim.stats().rounds, 1);
        assert_eq!(sim.stats().pipeline_stages, 2);
    }
}
