//! The Unified Memory Machine (UMM) timing simulators.
//!
//! The UMM charges a dispatched warp one pipeline stage per **distinct
//! address group** among its requests; a request injected into the pipeline
//! at time `τ` completes at `τ + l - 1`.  The paper's Figure 4 example —
//! warp `W(0)` spanning 3 address groups followed by `W(1)` spanning 1, with
//! latency `l = 5` — therefore finishes in `3 + 1 + 5 - 1 = 8` time units.
//!
//! Two executors are provided:
//!
//! * [`UmmSimulator`] — *round-synchronous*: every lockstep round is charged
//!   `(Σ_warps k_i) + l - 1` and rounds do not overlap in the pipeline.
//!   This is exactly the accounting used in the paper's proofs (Lemma 1,
//!   Theorem 2, Corollary 5) and is cheap enough to stream billions of
//!   rounds.
//! * [`simulate_async`] — a discrete-event simulator in which warps are
//!   dispatched round-robin and constrained only by their own previous
//!   request (one outstanding request per thread).  It can overlap distinct
//!   warps' rounds in the pipeline, so its time never exceeds the
//!   round-synchronous time; both satisfy the paper's Ω(pt/w + lt) lower
//!   bound.

use crate::access::ThreadAction;
use crate::config::MachineConfig;
use crate::profile::{SimProfile, SimTimeline};
use crate::schedule::{WarpSchedule, WarpScratch};
use crate::stats::AccessStats;
use crate::trace::RoundTrace;
use obs::trace::Tracer;

/// Streaming round-synchronous UMM timing simulator.
///
/// Feed one lockstep round at a time with [`UmmSimulator::step`]; the running
/// total in time units is available from [`UmmSimulator::elapsed`].
#[derive(Debug)]
pub struct UmmSimulator {
    cfg: MachineConfig,
    schedule: WarpSchedule,
    scratch: WarpScratch,
    elapsed: u64,
    stats: AccessStats,
    profile: Option<SimProfile>,
    timeline: Option<Box<SimTimeline>>,
}

impl UmmSimulator {
    /// Create a simulator for `p` lockstep threads on machine `cfg`.
    #[must_use]
    pub fn new(cfg: MachineConfig, p: usize) -> Self {
        Self {
            cfg,
            schedule: WarpSchedule::new(p, &cfg),
            scratch: WarpScratch::new(),
            elapsed: 0,
            stats: AccessStats::default(),
            profile: None,
            timeline: None,
        }
    }

    /// Machine configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Thread count `p`.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.schedule.p
    }

    /// Turn on per-warp profiling (histogram of distinct address groups,
    /// stall accounting).  No-op at compile time when `obs` is built
    /// without its `profile` feature.
    pub fn enable_profiling(&mut self) {
        if obs::PROFILING_COMPILED {
            self.profile = Some(SimProfile::new());
        }
    }

    /// The recorded profile, if profiling was enabled.
    #[must_use]
    pub fn profile(&self) -> Option<&SimProfile> {
        self.profile.as_ref()
    }

    /// Turn on event-timeline tracing: one span per dispatched warp (track
    /// = warp id, args = the charge `k`) plus fill/drain and idle markers
    /// on a "pipeline" track.  No-op at compile time when `obs` is built
    /// without its `profile` feature.
    pub fn enable_tracing(&mut self) {
        if obs::PROFILING_COMPILED {
            self.timeline = Some(Box::new(SimTimeline::new("umm", self.schedule.warp_count())));
        }
    }

    /// The recorded timeline events, if tracing was enabled.
    #[must_use]
    pub fn tracer(&self) -> Option<&Tracer> {
        self.timeline.as_ref().map(|tl| tl.tracer())
    }

    /// Take the recorded timeline out of the simulator (tracing stops).
    #[must_use]
    pub fn take_tracer(&mut self) -> Option<Tracer> {
        self.timeline.take().map(|tl| tl.into_tracer())
    }

    /// Charge one lockstep round (`actions.len() == p`) and return its cost.
    ///
    /// The cost is `(Σ_{active warps} k_i) + l - 1` where `k_i` is the number
    /// of distinct address groups requested by warp `i`; a round with no
    /// active warp costs nothing.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `actions.len() != p`.
    pub fn step(&mut self, actions: &[ThreadAction]) -> u64 {
        debug_assert_eq!(actions.len(), self.schedule.p, "round width must equal p");
        let round_start = self.elapsed;
        let mut stages = 0u64;
        let mut active = false;
        for (wi, warp) in self.schedule.warps(actions).enumerate() {
            let k = self.scratch.distinct_address_groups(&self.cfg, &warp) as u64;
            if k > 0 {
                active = true;
                if let Some(tl) = self.timeline.as_mut() {
                    tl.warp(wi, round_start + stages, k);
                }
                stages += k;
                if let Some(pr) = self.profile.as_mut() {
                    pr.record_warp(k);
                }
            }
        }
        let cost = if active { stages + self.cfg.latency as u64 - 1 } else { 0 };
        self.elapsed += cost;
        self.stats.record_round(actions, stages, cost);
        if let Some(pr) = self.profile.as_mut() {
            pr.record_round(active, self.cfg.latency);
        }
        if let Some(tl) = self.timeline.as_mut() {
            if active {
                tl.drain(round_start + stages, self.cfg.latency as u64 - 1);
            } else {
                tl.idle(round_start);
            }
        }
        cost
    }

    /// Charge one *uniform* round from precomputed per-warp charges, and
    /// return its cost.
    ///
    /// A uniform round is one in which every thread performs the same `op`
    /// on its own instance's copy of one logical address — the only round
    /// shape bulk execution of an oblivious program ever produces.  Its
    /// per-warp stage counts depend only on `(layout, p, msize, addr)`, so a
    /// compiled schedule precomputes them once and replays them here,
    /// skipping the per-thread action vector and the address-group scan.
    ///
    /// Accounting (statistics, profile, timeline, clock) is identical to
    /// [`UmmSimulator::step`] on the materialised round: `charges[i]` must
    /// be warp `i`'s distinct-address-group count, which is `>= 1` for every
    /// warp since no lane is idle.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `charges.len()` differs from the warp
    /// count or any charge is zero.
    pub fn step_uniform(&mut self, op: crate::access::Op, charges: &[u64]) -> u64 {
        debug_assert_eq!(charges.len(), self.schedule.warp_count(), "one charge per warp required");
        debug_assert!(charges.iter().all(|&k| k > 0), "uniform rounds have no idle warp");
        let round_start = self.elapsed;
        let mut stages = 0u64;
        for (wi, &k) in charges.iter().enumerate() {
            if let Some(tl) = self.timeline.as_mut() {
                tl.warp(wi, round_start + stages, k);
            }
            stages += k;
            if let Some(pr) = self.profile.as_mut() {
                pr.record_warp(k);
            }
        }
        let cost = stages + self.cfg.latency as u64 - 1;
        self.elapsed += cost;
        self.stats.record_uniform_round(op, self.schedule.p as u64, stages, cost);
        if let Some(pr) = self.profile.as_mut() {
            pr.record_round(true, self.cfg.latency);
        }
        if let Some(tl) = self.timeline.as_mut() {
            tl.drain(round_start + stages, self.cfg.latency as u64 - 1);
        }
        cost
    }

    /// Total time units charged so far.
    #[must_use]
    pub fn elapsed(&self) -> u64 {
        self.elapsed
    }

    /// Access statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &AccessStats {
        &self.stats
    }

    /// Reset the clock, statistics, and any recorded profile or timeline,
    /// keeping configuration (and whether profiling/tracing is enabled).
    pub fn reset(&mut self) {
        self.elapsed = 0;
        self.stats = AccessStats::default();
        if let Some(pr) = self.profile.as_mut() {
            *pr = SimProfile::new();
        }
        if let Some(tl) = self.timeline.as_mut() {
            **tl = SimTimeline::new("umm", self.schedule.warp_count());
        }
    }

    /// Run an entire materialised trace and return the total time.
    pub fn run(&mut self, trace: &RoundTrace) -> u64 {
        for round in trace.rounds() {
            self.step(&round.actions);
        }
        self.elapsed
    }
}

/// Cost of a single round without constructing a simulator.
#[must_use]
pub fn round_cost(cfg: &MachineConfig, actions: &[ThreadAction]) -> u64 {
    let mut sim = UmmSimulator::new(*cfg, actions.len());
    sim.step(actions)
}

/// A recording sink for [`simulate_async`] events.
///
/// The plain entry point uses the no-op implementation, which monomorphizes
/// to nothing — the profiled and unprofiled simulations compile to separate
/// code, so disabled instrumentation costs zero.
trait AsyncSink {
    fn dispatch(&mut self, _warp: usize, _k: u64, _inject: u64) {}
    fn wait(&mut self, _at: u64, _gap: u64) {}
}

/// The zero-cost sink.
struct NoSink;
impl AsyncSink for NoSink {}

impl AsyncSink for SimProfile {
    fn dispatch(&mut self, _warp: usize, k: u64, _inject: u64) {
        self.record_warp(k);
    }
    fn wait(&mut self, _at: u64, gap: u64) {
        self.record_wait(gap);
    }
}

/// Profile + timeline recording for [`simulate_async_traced`].
struct TracedSink {
    profile: SimProfile,
    timeline: SimTimeline,
}

impl AsyncSink for TracedSink {
    fn dispatch(&mut self, warp: usize, k: u64, inject: u64) {
        self.profile.record_warp(k);
        self.timeline.warp(warp, inject, k);
    }
    fn wait(&mut self, at: u64, gap: u64) {
        self.profile.record_wait(gap);
        self.timeline.starved(at, gap);
    }
}

/// Discrete-event UMM simulation of a materialised trace.
///
/// Warps are dispatched in round-robin order among those that are *ready*
/// (their previous round's requests have completed).  The pipeline accepts
/// one address-group injection per time unit; a warp whose round spans `k`
/// groups occupies `k` consecutive injection slots and completes `l - 1`
/// time units after its last injection.  Returns the completion time of the
/// final request (total duration in time units).
#[must_use]
pub fn simulate_async(cfg: &MachineConfig, trace: &RoundTrace) -> u64 {
    simulate_async_sink(cfg, trace, &mut NoSink)
}

/// [`simulate_async`] with profiling: additionally returns the per-warp
/// dispatch histogram and the time units in which the pipeline sat idle
/// because every warp was waiting on its outstanding request.
#[must_use]
pub fn simulate_async_profiled(cfg: &MachineConfig, trace: &RoundTrace) -> (u64, SimProfile) {
    let mut profile = SimProfile::new();
    let t = simulate_async_sink(cfg, trace, &mut profile);
    (t, profile)
}

/// [`simulate_async_profiled`] plus an event timeline: one span per warp
/// dispatch at its actual injection slot (track = warp id, args = `k`) and
/// starvation gaps on the "pipeline" track.  Unlike the round-synchronous
/// tracer, spans of different warps interleave freely on the time axis —
/// that overlap *is* the speedup the async executor models.
#[must_use]
pub fn simulate_async_traced(cfg: &MachineConfig, trace: &RoundTrace) -> (u64, SimProfile, Tracer) {
    let warp_count = WarpSchedule::new(trace.p().max(1), cfg).warp_count();
    let mut sink = TracedSink {
        profile: SimProfile::new(),
        timeline: SimTimeline::new("umm-async", warp_count),
    };
    let t = simulate_async_sink(cfg, trace, &mut sink);
    (t, sink.profile, sink.timeline.into_tracer())
}

fn simulate_async_sink<S: AsyncSink>(cfg: &MachineConfig, trace: &RoundTrace, sink: &mut S) -> u64 {
    if trace.is_empty() {
        return 0;
    }
    let p = trace.p();
    let schedule = WarpSchedule::new(p, cfg);
    let nwarps = schedule.warp_count();
    let rounds = trace.rounds();
    let l = cfg.latency as u64;
    let mut scratch = WarpScratch::new();

    // Per-warp stage counts per round, precomputed; rounds with k = 0 are
    // skipped entirely (the warp is not dispatched).
    let mut queues: Vec<Vec<u64>> = vec![Vec::new(); nwarps];
    for round in rounds {
        for (i, warp) in schedule.warps(&round.actions).enumerate() {
            let k = scratch.distinct_address_groups(cfg, &warp) as u64;
            if k > 0 {
                queues[i].push(k);
            }
        }
    }

    let mut next: Vec<usize> = vec![0; nwarps]; // next round index per warp
    let mut busy: Vec<u64> = vec![0; nwarps]; // earliest re-dispatch time
    let mut inject: u64 = 0; // next free pipeline slot
    let mut finish: u64 = 0; // completion time of last request so far
    let mut rr = 0usize; // round-robin pointer
    let mut pending: usize = queues.iter().filter(|q| !q.is_empty()).count();

    while pending > 0 {
        // Find the next ready warp in round-robin order.
        let mut chosen = None;
        for off in 0..nwarps {
            let i = (rr + off) % nwarps;
            if next[i] < queues[i].len() && busy[i] <= inject {
                chosen = Some(i);
                break;
            }
        }
        let Some(i) = chosen else {
            // Nobody ready: advance the clock to the earliest ready time.
            let earliest = (0..nwarps)
                .filter(|&i| next[i] < queues[i].len())
                .map(|i| busy[i])
                .min()
                .expect("pending > 0 implies a pending warp exists");
            sink.wait(inject, earliest - inject);
            inject = earliest;
            continue;
        };
        let k = queues[i][next[i]];
        sink.dispatch(i, k, inject);
        next[i] += 1;
        if next[i] == queues[i].len() {
            pending -= 1;
        }
        let done = inject + k - 1 + (l - 1);
        busy[i] = done + 1;
        finish = finish.max(done + 1);
        inject += k;
        rr = (i + 1) % nwarps;
    }
    finish
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Round;

    /// The paper's Figure 4 worked example: width 4, latency 5; warp W(0)'s
    /// requests span 3 address groups, W(1)'s span 1 → 3 + 1 + 5 - 1 = 8.
    #[test]
    fn paper_worked_example() {
        let cfg = MachineConfig::paper_figure4();
        // p = 8 threads, 2 warps.  W(0) touches groups {0, 1, 2}; W(1)
        // touches a single group.
        let actions = vec![
            // W(0): addresses 0, 5, 9, 1 → groups 0, 1, 2, 0 → k = 3.
            ThreadAction::read(0),
            ThreadAction::read(5),
            ThreadAction::read(9),
            ThreadAction::read(1),
            // W(1): addresses 12..16 → group 3 → k = 1.
            ThreadAction::read(12),
            ThreadAction::read(13),
            ThreadAction::read(14),
            ThreadAction::read(15),
        ];
        assert_eq!(round_cost(&cfg, &actions), 8);

        // The event-driven simulator agrees on a single round.
        let mut trace = RoundTrace::new();
        trace.push(Round { actions });
        assert_eq!(simulate_async(&cfg, &trace), 8);
    }

    #[test]
    fn fully_coalesced_round_costs_pw_plus_l_minus_1() {
        // p threads reading p consecutive addresses: p/w stages total.
        let cfg = MachineConfig::new(4, 5);
        let p = 16;
        let actions: Vec<_> = (0..p).map(ThreadAction::read).collect();
        assert_eq!(round_cost(&cfg, &actions), (p / 4 + 5 - 1) as u64);
    }

    #[test]
    fn worst_case_round_costs_p_plus_l_minus_1() {
        // Each thread reads stride-w addresses within its own group... the
        // row-wise pattern: thread j reads j*n + c with n >= w, so every
        // thread is in its own address group: p stages.
        let cfg = MachineConfig::new(4, 5);
        let p = 16;
        let n = 8; // n >= w
        let actions: Vec<_> = (0..p).map(|j| ThreadAction::read(j * n)).collect();
        assert_eq!(round_cost(&cfg, &actions), (p + 5 - 1) as u64);
    }

    #[test]
    fn idle_round_is_free() {
        let cfg = MachineConfig::new(4, 5);
        let actions = vec![ThreadAction::Idle; 8];
        assert_eq!(round_cost(&cfg, &actions), 0);
        let mut trace = RoundTrace::new();
        trace.push(Round { actions });
        assert_eq!(simulate_async(&cfg, &trace), 0);
    }

    #[test]
    fn sync_simulator_accumulates_rounds() {
        let cfg = MachineConfig::new(4, 5);
        let p = 8;
        let mut sim = UmmSimulator::new(cfg, p);
        for i in 0..10usize {
            // Column-wise style: all threads read consecutive addresses.
            let base = i * p;
            let actions: Vec<_> = (0..p).map(|j| ThreadAction::read(base + j)).collect();
            sim.step(&actions);
        }
        // Each round: p/w + l - 1 = 2 + 4 = 6; ten rounds = 60.
        assert_eq!(sim.elapsed(), 60);
        sim.reset();
        assert_eq!(sim.elapsed(), 0);
    }

    #[test]
    fn async_never_slower_than_sync() {
        // The async executor can overlap warps in the pipeline, so it is at
        // least as fast as the round-synchronous accounting.
        let cfg = MachineConfig::new(4, 3);
        let p = 12;
        let mut trace = RoundTrace::new();
        let mut sim = UmmSimulator::new(cfg, p);
        for i in 0..20usize {
            let actions: Vec<_> =
                (0..p).map(|j| ThreadAction::read((i * 31 + j * 7) % 64)).collect();
            sim.step(&actions);
            trace.push(Round { actions });
        }
        let sync = sim.elapsed();
        let async_t = simulate_async(&cfg, &trace);
        assert!(async_t <= sync, "async {async_t} must be <= sync {sync}");
        assert!(async_t > 0);
    }

    #[test]
    fn async_single_warp_serialises_on_latency() {
        // One warp, fully coalesced rounds: each round costs l (inject 1 slot,
        // complete l - 1 later, thread may not re-issue until then).
        let cfg = MachineConfig::new(4, 5);
        let p = 4;
        let mut trace = RoundTrace::new();
        for i in 0..10usize {
            let base = i * p;
            trace.push(Round { actions: (0..p).map(|j| ThreadAction::read(base + j)).collect() });
        }
        // Round r injects at time r*l and completes at r*l + l - 1.
        assert_eq!(simulate_async(&cfg, &trace), 10 * 5);
    }

    #[test]
    fn async_many_warps_pipeline_fully() {
        // With at least l warps of coalesced requests the pipeline never
        // starves: total = rounds * warps + (l - 1) ... the throughput bound.
        let cfg = MachineConfig::new(4, 5);
        let p = 4 * 8; // 8 warps >= l
        let rounds = 10usize;
        let mut trace = RoundTrace::new();
        for i in 0..rounds {
            let base = i * p;
            trace.push(Round { actions: (0..p).map(|j| ThreadAction::read(base + j)).collect() });
        }
        let t = simulate_async(&cfg, &trace);
        assert_eq!(t, (rounds * 8 + 5 - 1) as u64);
    }

    #[test]
    fn sync_tracer_reconciles_with_profile_and_elapsed() {
        let cfg = MachineConfig::paper_figure4();
        let mut sim = UmmSimulator::new(cfg, 8);
        sim.enable_profiling();
        sim.enable_tracing();
        // Figure 4 round (k = 3 + 1), an idle round, and a coalesced round.
        let fig4 = vec![
            ThreadAction::read(0),
            ThreadAction::read(5),
            ThreadAction::read(9),
            ThreadAction::read(1),
            ThreadAction::read(12),
            ThreadAction::read(13),
            ThreadAction::read(14),
            ThreadAction::read(15),
        ];
        sim.step(&fig4);
        sim.step(&[ThreadAction::Idle; 8]);
        sim.step(&(0..8).map(ThreadAction::read).collect::<Vec<_>>());
        let profile = sim.profile().unwrap().clone();
        let elapsed = sim.elapsed();
        let stages = sim.stats().pipeline_stages;
        let t = sim.take_tracer().unwrap();
        assert!(sim.tracer().is_none());
        obs::trace::validate(&t).unwrap();
        // Warp spans carry the model category; their total is Σk.
        assert_eq!(t.spanned_ticks_by_cat("umm"), stages);
        assert_eq!(t.spanned_ticks_by_cat("umm"), profile.group_histogram.sum() as u64);
        // Stall spans total the latency fill/drain accounting, and busy +
        // stall covers the whole clock (idle rounds cost nothing).
        assert_eq!(t.spanned_ticks_by_cat("stall"), profile.latency_stall_units);
        assert_eq!(t.spanned_ticks_by_cat("umm") + t.spanned_ticks_by_cat("stall"), elapsed);
        // The second warp's Figure 4 span sits after the first's 3 slots.
        let w1: Vec<_> = t.events().iter().filter(|e| e.tid == 1).collect();
        assert_eq!((w1[0].ts, w1[0].dur), (3, 1));
        // Idle round shows up as an instant on the pipeline track.
        assert!(t.events().iter().any(|e| e.name == "idle_round"));
    }

    #[test]
    fn async_tracer_places_spans_at_injection_slots() {
        let cfg = MachineConfig::new(4, 5);
        let p = 4; // one warp: rounds serialise on latency
        let mut trace = RoundTrace::new();
        for i in 0..3usize {
            let base = i * p;
            trace.push(Round { actions: (0..p).map(|j| ThreadAction::read(base + j)).collect() });
        }
        let (t_total, profile, tracer) = simulate_async_traced(&cfg, &trace);
        assert_eq!(t_total, 3 * 5);
        obs::trace::validate(&tracer).unwrap();
        // Three dispatches of k = 1, injected at 0, 5, 10.
        let spans: Vec<_> = tracer.events().iter().filter(|e| e.cat == "umm-async").collect();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans.iter().map(|e| e.ts).collect::<Vec<_>>(), vec![0, 5, 10]);
        assert_eq!(tracer.spanned_ticks_by_cat("umm-async"), profile.group_histogram.sum() as u64);
        // The 4-unit gaps between injections are starvation stalls.
        assert_eq!(tracer.spanned_ticks_by_cat("stall"), profile.wait_stall_units);
        assert_eq!(profile.wait_stall_units, 2 * 4);
    }

    #[test]
    fn stats_accumulate() {
        let cfg = MachineConfig::new(4, 5);
        let p = 8;
        let mut sim = UmmSimulator::new(cfg, p);
        let actions: Vec<_> = (0..p).map(ThreadAction::read).collect();
        sim.step(&actions);
        assert_eq!(sim.stats().accesses, 8);
        assert_eq!(sim.stats().rounds, 1);
        assert_eq!(sim.stats().pipeline_stages, 2);
    }

    /// `step_uniform` fed per-warp charges must be indistinguishable from
    /// `step` on the materialised round: same cost, clock, statistics,
    /// profile, and timeline events.
    #[test]
    fn step_uniform_matches_step_exactly() {
        use crate::access::{Op, WarpRequest};
        use crate::schedule::WarpScratch;
        let mut scratch = WarpScratch::new();
        for w in [1usize, 3, 4, 8] {
            let cfg = MachineConfig::new(w, 5);
            for p in [1usize, 4, 7, 16, 33] {
                let mut a = UmmSimulator::new(cfg, p);
                let mut b = UmmSimulator::new(cfg, p);
                a.enable_profiling();
                a.enable_tracing();
                b.enable_profiling();
                b.enable_tracing();
                // Uniform rounds with different strides and base offsets.
                for (base, stride, op) in
                    [(0usize, 1usize, Op::Read), (5, 3, Op::Write), (2, 7, Op::Read)]
                {
                    let actions: Vec<_> =
                        (0..p).map(|j| ThreadAction::Access(op, base + j * stride)).collect();
                    let charges: Vec<u64> = actions
                        .chunks(w)
                        .map(|c| scratch.distinct_address_groups(&cfg, &WarpRequest::new(c)) as u64)
                        .collect();
                    assert_eq!(a.step(&actions), b.step_uniform(op, &charges), "w={w} p={p}");
                }
                assert_eq!(a.elapsed(), b.elapsed());
                assert_eq!(a.stats(), b.stats());
                assert_eq!(a.profile(), b.profile());
                let (ta, tb) = (a.take_tracer().unwrap(), b.take_tracer().unwrap());
                assert_eq!(ta.events(), tb.events(), "timelines diverge at w={w} p={p}");
            }
        }
    }
}
