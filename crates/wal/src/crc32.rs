//! CRC-32 (IEEE 802.3: reflected, polynomial `0xEDB88320`), table-driven.
//!
//! Implemented in-crate because the workspace builds without registry
//! access.  The table is computed at compile time; `crc32("123456789")`
//! matches the canonical check value `0xCBF43926`.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Incremental CRC-32 state, for checksumming a record's header fields
/// and payload without concatenating them first.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh checksum state.
    #[must_use]
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Fold `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = (self.state ^ u32::from(b)) & 0xFF;
            self.state = (self.state >> 8) ^ TABLE[idx as usize];
        }
    }

    /// The finished checksum value.
    #[must_use]
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        // 32 zero bytes — exercises the table's high rows.
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), crc32(data), "split at {split}");
        }
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = b"durability";
        let base = crc32(data);
        let mut buf = *data;
        for byte in 0..buf.len() {
            for bit in 0..8 {
                buf[byte] ^= 1 << bit;
                assert_ne!(crc32(&buf), base, "flip byte {byte} bit {bit} went undetected");
                buf[byte] ^= 1 << bit;
            }
        }
    }
}
