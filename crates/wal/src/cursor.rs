//! A tailing cursor: follow a live log across rotations.
//!
//! [`scan`](crate::scan) answers "what survived?" once, at startup.  A
//! replication shipper needs the streaming version of the same question:
//! *give me every record from sequence `s` onward, and keep giving them
//! to me as the writer appends*.  [`Cursor`] is that reader.  It holds a
//! position (segment, byte offset, next expected sequence number) and
//! each [`Cursor::poll`] decodes whatever complete records have appeared
//! past it.
//!
//! Two situations that a one-shot scan reports as damage are *normal*
//! here and must not be treated as corruption:
//!
//! * **Torn tail** — the writer is mid-append; the file ends inside a
//!   record.  `poll` simply stops before the torn bytes and the next
//!   poll re-reads them once the writer finishes.  (If the writer died
//!   mid-append the tear is permanent; the cursor just never advances
//!   past it, which is exactly right — those bytes were never durable.)
//! * **Rotation under the tail** — the writer sealed the segment being
//!   tailed and opened a new one.  The cursor notices because a segment
//!   named with its next expected sequence number has appeared, finishes
//!   the sealed file, and follows.
//!
//! A genuine CRC mismatch in bytes the writer has finished writing *is*
//! corruption and surfaces as an error: an append-only writer never
//! produces a complete-but-invalid record, so a reader that sees one is
//! looking at damaged storage.

use crate::record::{self, DecodeOutcome, Record};
use crate::segment::{self, SEGMENT_MAGIC};
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// A follow-the-tail reader over a segmented log directory.
#[derive(Debug)]
pub struct Cursor {
    dir: PathBuf,
    /// Sequence number of the next record to emit.
    next_seq: u64,
    /// Segment currently being read: `(name_seq, path)`.
    seg: Option<(u64, PathBuf)>,
    /// Byte offset of the next undecoded byte within that segment.
    offset: u64,
}

impl Cursor {
    /// A cursor that will emit every record with `seq >= start_seq`, in
    /// order, as they become durable in `dir`.  The directory may be
    /// empty (or not exist yet) — the cursor waits for the writer.
    #[must_use]
    pub fn tail_from(dir: &Path, start_seq: u64) -> Cursor {
        Cursor { dir: dir.to_path_buf(), next_seq: start_seq.max(1), seg: None, offset: 0 }
    }

    /// The sequence number the next emitted record will carry.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Locate the segment that should contain `next_seq`: the last one
    /// whose name sequence is `<= next_seq`.  Returns `Ok(false)` when
    /// no such segment exists yet (nothing written, or the writer has
    /// not reached our position).
    fn locate(&mut self) -> Result<bool, String> {
        let listed = segment::list(&self.dir)?;
        let any = !listed.is_empty();
        let Some((name_seq, path)) = listed.into_iter().rfind(|(s, _)| *s <= self.next_seq) else {
            // A non-empty directory whose every segment starts beyond
            // next_seq means the records we need were checkpointed away.
            if any {
                return Err(format!(
                    "records before segment horizon are gone: cursor wants seq {}, \
                     the log starts later (checkpoint-truncated)",
                    self.next_seq
                ));
            }
            return Ok(false);
        };
        self.seg = Some((name_seq, path));
        self.offset = 0; // magic not yet verified
        Ok(true)
    }

    /// Read everything past `offset` in the current segment.
    fn read_tail(&self, path: &Path) -> Result<Vec<u8>, String> {
        let mut f = match std::fs::File::open(path) {
            Ok(f) => f,
            // The segment can vanish under us only via checkpoint
            // truncation; the next locate() will report it properly.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(format!("open segment {}: {e}", path.display())),
        };
        f.seek(SeekFrom::Start(self.offset))
            .map_err(|e| format!("seek segment {}: {e}", path.display()))?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf).map_err(|e| format!("read segment {}: {e}", path.display()))?;
        Ok(buf)
    }

    /// Decode up to `max` new records past the cursor position.  An
    /// empty result means the cursor is caught up with the writer (or
    /// the writer is mid-append); poll again later.
    ///
    /// # Errors
    ///
    /// I/O failures, a complete-but-CRC-invalid record (storage
    /// corruption), a sequence gap, or a checkpoint that truncated the
    /// log past the cursor position.
    pub fn poll(&mut self, max: usize) -> Result<Vec<Record>, String> {
        let mut out = Vec::new();
        loop {
            if self.seg.is_none() && !self.locate()? {
                return Ok(out);
            }
            let (name_seq, path) =
                self.seg.as_ref().map(|(s, p)| (*s, p.clone())).expect("segment just located");

            if self.offset == 0 {
                // Verify the magic before trusting any offsets.  A file
                // shorter than the magic is a writer mid-create: wait.
                let head = self.read_tail(&path)?;
                if head.len() < SEGMENT_MAGIC.len() {
                    return Ok(out);
                }
                if &head[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
                    return Err(format!("segment {} has bad magic", path.display()));
                }
                self.offset = SEGMENT_MAGIC.len() as u64;
            }

            let bytes = self.read_tail(&path)?;
            let mut off = 0usize;
            let mut torn = false;
            while off < bytes.len() && out.len() < max {
                match record::decode(&bytes[off..]) {
                    DecodeOutcome::Complete { record, consumed } => {
                        if record.seq > self.next_seq {
                            return Err(format!(
                                "sequence gap in {}: expected {}, found {}",
                                path.display(),
                                self.next_seq,
                                record.seq
                            ));
                        }
                        off += consumed;
                        if record.seq == self.next_seq {
                            self.next_seq += 1;
                            out.push(record);
                        }
                        // seq < next_seq: already emitted (initial
                        // positioning lands mid-segment); skip.
                        self.offset += consumed as u64;
                    }
                    DecodeOutcome::Incomplete => {
                        // The live tail: the writer is mid-append (or
                        // died there).  Not corruption — stop here and
                        // re-read these bytes next poll.
                        torn = true;
                        break;
                    }
                    DecodeOutcome::Corrupt(reason) => {
                        return Err(format!(
                            "corrupt record in {} at byte {}: {reason}",
                            path.display(),
                            self.offset
                        ));
                    }
                }
            }
            if out.len() >= max {
                return Ok(out);
            }
            if torn {
                return Ok(out);
            }
            // Clean end of the current file.  If the writer rotated, a
            // segment named with our next expected sequence number now
            // exists and the file we just drained is sealed — follow it.
            let rotated = segment::list(&self.dir)?
                .into_iter()
                .any(|(s, _)| s == self.next_seq && s != name_seq);
            if rotated {
                self.seg = None;
                continue;
            }
            return Ok(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{FsyncPolicy, Wal, WalConfig};
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_ID: AtomicU64 = AtomicU64::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wal-cursor-{tag}-{}-{}",
            std::process::id(),
            DIR_ID.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn wal(dir: &Path, segment_bytes: u64) -> Wal {
        let cfg = WalConfig { dir: dir.to_path_buf(), segment_bytes, fsync: FsyncPolicy::Always };
        Wal::open(cfg).unwrap().0
    }

    #[test]
    fn empty_directory_polls_empty_then_catches_up() {
        let dir = temp_dir("empty");
        let mut c = Cursor::tail_from(&dir, 1);
        assert!(c.poll(100).unwrap().is_empty());
        let mut w = wal(&dir, 4 << 20);
        w.append(1, b"first").unwrap();
        w.append(2, b"second").unwrap();
        let got = c.poll(100).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!((got[0].seq, got[0].rec_type), (1, 1));
        assert_eq!(got[1].payload, b"second");
        assert!(c.poll(100).unwrap().is_empty(), "caught up");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tail_from_mid_log_skips_earlier_records() {
        let dir = temp_dir("mid");
        let mut w = wal(&dir, 4 << 20);
        for i in 0..6u64 {
            w.append(1, format!("r{i}").as_bytes()).unwrap();
        }
        let mut c = Cursor::tail_from(&dir, 4);
        let got = c.poll(100).unwrap();
        assert_eq!(got.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![4, 5, 6]);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Rotation-under-tail: the cursor drains a segment, the writer
    /// seals it and appends into a fresh one, and the cursor follows
    /// without losing or duplicating a record.
    #[test]
    fn cursor_follows_rotations_under_the_tail() {
        let dir = temp_dir("rotate");
        // Tiny segments: every append rotates once the previous one
        // holds a record.
        let mut w = wal(&dir, 1);
        let mut c = Cursor::tail_from(&dir, 1);
        let mut seen = Vec::new();
        for i in 0..10u64 {
            w.append(1, format!("payload-{i}").as_bytes()).unwrap();
            // Interleave polls with appends so rotations happen both
            // between and across polls.
            if i % 2 == 0 {
                seen.extend(c.poll(100).unwrap());
            }
        }
        seen.extend(c.poll(100).unwrap());
        assert_eq!(seen.iter().map(|r| r.seq).collect::<Vec<_>>(), (1..=10).collect::<Vec<_>>());
        assert!(w.segment_count() > 1, "the writer really did rotate");
        // And the cursor keeps following after yet another rotation.
        w.append(1, b"post").unwrap();
        let got = c.poll(100).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].seq, 11);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Torn-tail-then-continue: a half-written record at the live tail
    /// is "writer mid-append", not corruption.  The poll stops before
    /// it; once the writer finishes the record, the next poll emits it.
    #[test]
    fn torn_live_tail_is_retried_not_fatal() {
        let dir = temp_dir("torn");
        let mut w = wal(&dir, 4 << 20);
        w.append(1, b"whole").unwrap();
        // Simulate the writer mid-append: append the record bytes to
        // the active segment file by hand, cut partway through.
        let full = crate::record::encode(2, 1, b"torn-then-finished");
        let seg_path = segment::list(&dir).unwrap().pop().unwrap().1;
        let cut = full.len() - 5;
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new().append(true).open(&seg_path).unwrap();
            f.write_all(&full[..cut]).unwrap();
        }
        let mut c = Cursor::tail_from(&dir, 1);
        let got = c.poll(100).unwrap();
        assert_eq!(got.len(), 1, "only the whole record before the tear");
        assert_eq!(got[0].seq, 1);
        // Polling again against the still-torn tail: still nothing new,
        // still no error.
        assert!(c.poll(100).unwrap().is_empty());
        // The writer finishes the append.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new().append(true).open(&seg_path).unwrap();
            f.write_all(&full[cut..]).unwrap();
        }
        let got = c.poll(100).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].seq, 2);
        assert_eq!(got[0].payload, b"torn-then-finished");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn max_bounds_each_poll_without_losing_records() {
        let dir = temp_dir("max");
        let mut w = wal(&dir, 1); // rotate constantly to stress the boundary
        for i in 0..7u64 {
            w.append(1, format!("r{i}").as_bytes()).unwrap();
        }
        let mut c = Cursor::tail_from(&dir, 1);
        let mut seen = Vec::new();
        loop {
            let batch = c.poll(3).unwrap();
            if batch.is_empty() {
                break;
            }
            assert!(batch.len() <= 3);
            seen.extend(batch);
        }
        assert_eq!(seen.iter().map(|r| r.seq).collect::<Vec<_>>(), (1..=7).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn complete_but_corrupt_record_is_an_error() {
        let dir = temp_dir("corrupt");
        let mut w = wal(&dir, 4 << 20);
        w.append(1, b"good").unwrap();
        w.append(1, b"about to be flipped").unwrap();
        let seg_path = segment::list(&dir).unwrap().pop().unwrap().1;
        let mut bytes = std::fs::read(&seg_path).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0x20; // flip a payload bit in the last record
        std::fs::write(&seg_path, bytes).unwrap();
        let mut c = Cursor::tail_from(&dir, 1);
        let err = c.poll(100).unwrap_err();
        assert!(err.contains("corrupt"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_truncation_past_the_cursor_is_an_error() {
        let dir = temp_dir("trunc");
        let mut w = wal(&dir, 1);
        for i in 0..4u64 {
            w.append(1, format!("r{i}").as_bytes()).unwrap();
        }
        w.truncate_before(4).unwrap();
        let mut c = Cursor::tail_from(&dir, 1);
        let err = c.poll(100).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
