//! Deterministic crash injection for writer tests.

use std::io::{self, Write};

/// A writer that silently stops persisting after `cut_at` bytes.
///
/// Models what `kill -9` leaves behind: the process *believed* its
/// writes succeeded (every `write` returns `Ok` for the full buffer),
/// but only a byte-exact prefix reached the file.  Wrapping a segment
/// file in this lets a test cut a record stream at every possible
/// offset and assert the reader's torn-tail behaviour.
#[derive(Debug)]
pub struct FailpointWriter<W: Write> {
    inner: W,
    cut_at: u64,
    written: u64,
}

impl<W: Write> FailpointWriter<W> {
    /// Wrap `inner`, persisting only the first `cut_at` bytes.
    pub fn new(inner: W, cut_at: u64) -> Self {
        Self { inner, cut_at, written: 0 }
    }

    /// Bytes offered by callers so far (persisted or not).
    #[must_use]
    pub fn offered(&self) -> u64 {
        self.written
    }

    /// Unwrap the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FailpointWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let room = self.cut_at.saturating_sub(self.written);
        let persist = buf.len().min(usize::try_from(room).unwrap_or(usize::MAX));
        if persist > 0 {
            self.inner.write_all(&buf[..persist])?;
        }
        self.written += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persists_exactly_the_prefix_and_reports_success() {
        for cut in 0..12u64 {
            let mut w = FailpointWriter::new(Vec::new(), cut);
            w.write_all(b"hello").unwrap();
            w.write_all(b" world").unwrap();
            assert_eq!(w.offered(), 11);
            let inner = w.into_inner();
            assert_eq!(inner, b"hello world"[..(cut as usize).min(11)].to_vec(), "cut {cut}");
        }
    }

    #[test]
    fn cut_mid_buffer_persists_partial_write() {
        let mut w = FailpointWriter::new(Vec::new(), 3);
        w.write_all(b"abcdef").unwrap();
        assert_eq!(w.into_inner(), b"abc".to_vec());
    }
}
