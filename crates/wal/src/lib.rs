//! # wal — a minimal, dependency-free write-ahead log
//!
//! Durability substrate for the serving daemon: callers append opaque
//! `(record type, payload)` pairs; the log guarantees that on restart it
//! hands back exactly the prefix of records that survived the crash, in
//! order, and nothing that is half-written or bit-rotted.
//!
//! Layout on disk: a directory of *segment* files named
//! `{first_seq:020}.wal`, each starting with an 8-byte magic
//! (`b"BULKWAL1"`) and followed by back-to-back records.  A record is a
//! fixed 17-byte header — payload length (`u32` LE), CRC-32 (`u32` LE,
//! over sequence number, type byte and payload), monotonic sequence
//! number (`u64` LE), record type (`u8`) — then the payload bytes.  The
//! writer rotates to a fresh segment once the active one crosses the
//! configured size threshold, so space can be reclaimed by deleting
//! whole sealed segments.
//!
//! Crash semantics: the reader walks segments in sequence order and
//! stops at the *first* record that fails its CRC, is cut short, or
//! breaks sequence continuity; everything before that point is
//! surfaced, everything after (including later segments) is reported as
//! a torn tail and physically truncated on the next
//! [`Wal::open`].  Fsync frequency is a throughput/durability dial
//! ([`FsyncPolicy`]): `always` makes every append durable before it
//! returns, `every-n`/`every-ms` batch syncs and accept a bounded
//! recent-write loss window.
//!
//! Everything here is `std`-only — the CRC-32 lives in
//! [`crc32`], serialization is raw little-endian byte twiddling — and
//! [`FailpointWriter`] gives tests a deterministic way to cut a record
//! stream at an exact byte offset, simulating what `kill -9` leaves on
//! disk.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc32;
pub mod cursor;
pub mod failpoint;
pub mod reader;
pub mod record;
pub mod segment;
pub mod writer;

pub use cursor::Cursor;
pub use failpoint::FailpointWriter;
pub use reader::{scan, Scan, SegmentInfo, Truncation};
pub use record::{Record, MAX_PAYLOAD_BYTES, RECORD_HEADER_BYTES};
pub use writer::{FsyncPolicy, Wal, WalConfig, WalMetrics};
