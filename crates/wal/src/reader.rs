//! Log recovery: walk every segment, surface the valid record prefix,
//! report (never panic on) a torn or corrupted tail.

use crate::record::{self, DecodeOutcome, Record};
use crate::segment::{self, SEGMENT_MAGIC};
use std::path::{Path, PathBuf};

/// What one segment contributed to a scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentInfo {
    /// The segment file.
    pub path: PathBuf,
    /// `first_seq` from the file name.
    pub name_seq: u64,
    /// Sequence range of the valid records read (`None` when empty).
    pub seq_range: Option<(u64, u64)>,
    /// Valid records read from this segment.
    pub records: usize,
    /// Bytes of the segment that parsed cleanly (magic included).
    pub valid_bytes: u64,
}

/// Where and why the scan stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Truncation {
    /// Segment holding the first bad byte.
    pub path: PathBuf,
    /// Clean prefix length of that segment; everything past it is torn.
    pub valid_bytes: u64,
    /// Human-readable reason (torn record, CRC mismatch, sequence gap…).
    pub reason: String,
    /// Bytes dropped: the bad segment's tail plus all later segments.
    pub dropped_bytes: u64,
    /// Later segments that become unreachable (must be deleted on
    /// repair: their records would break sequence continuity).
    pub dropped_segments: Vec<PathBuf>,
}

/// Result of scanning a log directory.
#[derive(Debug, Default)]
pub struct Scan {
    /// Every valid record, in sequence order.
    pub records: Vec<Record>,
    /// Per-segment accounting, in sequence order (segments after a
    /// truncation are not included — see [`Truncation::dropped_segments`]).
    pub segments: Vec<SegmentInfo>,
    /// Set when the log ends in a torn or corrupt tail.
    pub truncation: Option<Truncation>,
}

impl Scan {
    /// The sequence number the next append should carry.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.records.last().map_or(1, |r| r.seq + 1)
    }

    /// Where a tailing reader resumes: `(segment name_seq, byte offset)`
    /// of the first byte the scan could not vouch for.  With a
    /// truncation that is the exact offset of the first invalid record
    /// (magic included); on a clean log it is the end of the last
    /// segment's valid prefix.  `None` when the directory held no
    /// segments at all.
    #[must_use]
    pub fn resume_point(&self) -> Option<(u64, u64)> {
        let last = self.segments.last()?;
        Some((last.name_seq, last.valid_bytes))
    }
}

/// Scan `dir` for segments and decode them front to back.
///
/// Corruption is data, not an error: it lands in [`Scan::truncation`].
/// Only environment problems (unreadable directory or file) error.
///
/// # Errors
///
/// I/O failures reading the directory or a segment file.
pub fn scan(dir: &Path) -> Result<Scan, String> {
    let mut out = Scan::default();
    let listed = segment::list(dir)?;
    let mut prev_seq: Option<u64> = None;
    for (idx, (name_seq, path)) in listed.iter().enumerate() {
        let bytes =
            std::fs::read(path).map_err(|e| format!("read segment {}: {e}", path.display()))?;
        let mut info = SegmentInfo {
            path: path.clone(),
            name_seq: *name_seq,
            seq_range: None,
            records: 0,
            valid_bytes: 0,
        };
        let mut stop_reason: Option<String> = None;
        if bytes.len() < SEGMENT_MAGIC.len() || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
            stop_reason = Some("segment magic missing or torn".into());
        } else {
            info.valid_bytes = SEGMENT_MAGIC.len() as u64;
            let mut off = SEGMENT_MAGIC.len();
            while off < bytes.len() {
                match record::decode(&bytes[off..]) {
                    DecodeOutcome::Complete { record, consumed } => {
                        let expected = prev_seq.map(|p| p + 1);
                        if expected.is_some_and(|e| e != record.seq) {
                            stop_reason = Some(format!(
                                "sequence gap: expected {}, found {}",
                                expected.unwrap_or(0),
                                record.seq
                            ));
                            break;
                        }
                        prev_seq = Some(record.seq);
                        info.seq_range = Some(match info.seq_range {
                            None => (record.seq, record.seq),
                            Some((first, _)) => (first, record.seq),
                        });
                        info.records += 1;
                        off += consumed;
                        info.valid_bytes = off as u64;
                        out.records.push(record);
                    }
                    DecodeOutcome::Incomplete => {
                        stop_reason = Some(format!("torn record at byte {off}"));
                        break;
                    }
                    DecodeOutcome::Corrupt(reason) => {
                        stop_reason = Some(format!("corrupt record at byte {off}: {reason}"));
                        break;
                    }
                }
            }
        }
        match stop_reason {
            None => out.segments.push(info),
            Some(reason) => {
                let mut dropped_bytes = bytes.len() as u64 - info.valid_bytes;
                let mut dropped_segments = Vec::new();
                for (_, later) in &listed[idx + 1..] {
                    dropped_bytes += std::fs::metadata(later).map(|m| m.len()).unwrap_or(0);
                    dropped_segments.push(later.clone());
                }
                let valid_bytes = info.valid_bytes;
                out.segments.push(info);
                out.truncation = Some(Truncation {
                    path: path.clone(),
                    valid_bytes,
                    reason,
                    dropped_bytes,
                    dropped_segments,
                });
                break;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failpoint::FailpointWriter;
    use crate::record::encode;
    use std::io::Write;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_ID: AtomicU64 = AtomicU64::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wal-reader-{tag}-{}-{}",
            std::process::id(),
            DIR_ID.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_segment(dir: &Path, first_seq: u64, body: &[u8]) -> PathBuf {
        let path = dir.join(segment::file_name(first_seq));
        let mut bytes = SEGMENT_MAGIC.to_vec();
        bytes.extend_from_slice(body);
        std::fs::write(&path, bytes).unwrap();
        path
    }

    fn records(n: u64, start_seq: u64) -> (Vec<Record>, Vec<u8>) {
        let mut recs = Vec::new();
        let mut bytes = Vec::new();
        for i in 0..n {
            let seq = start_seq + i;
            let payload = format!("payload-{seq}").into_bytes();
            bytes.extend_from_slice(&encode(seq, (seq % 5) as u8, &payload));
            recs.push(Record { seq, rec_type: (seq % 5) as u8, payload });
        }
        (recs, bytes)
    }

    #[test]
    fn empty_directory_scans_empty() {
        let dir = temp_dir("empty");
        let s = scan(&dir).unwrap();
        assert!(s.records.is_empty() && s.segments.is_empty() && s.truncation.is_none());
        assert_eq!(s.next_seq(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn multi_segment_log_reads_in_order() {
        let dir = temp_dir("multi");
        let (r1, b1) = records(3, 1);
        let (r2, b2) = records(2, 4);
        write_segment(&dir, 1, &b1);
        write_segment(&dir, 4, &b2);
        let s = scan(&dir).unwrap();
        assert!(s.truncation.is_none());
        let expect: Vec<Record> = r1.into_iter().chain(r2).collect();
        assert_eq!(s.records, expect);
        assert_eq!(s.next_seq(), 6);
        assert_eq!(s.segments.len(), 2);
        assert_eq!(s.segments[0].seq_range, Some((1, 3)));
        assert_eq!(s.segments[1].seq_range, Some((4, 5)));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The headline torn-tail property: for EVERY byte offset a crash
    /// could cut the stream at, the scan surfaces exactly the records
    /// fully written before the cut and reports the tear — no panics, no
    /// partial records, no lost complete records.
    #[test]
    fn every_cut_offset_surfaces_exactly_the_complete_prefix() {
        let (recs, body) = records(4, 1);
        // Record boundaries within the segment (after the magic).
        let mut boundaries = vec![0usize];
        for r in &recs {
            boundaries.push(boundaries.last().unwrap() + 17 + r.payload.len());
        }
        for cut in 0..=body.len() {
            let dir = temp_dir("cut");
            let path = dir.join(segment::file_name(1));
            let file = std::fs::File::create(&path).unwrap();
            let mut w = FailpointWriter::new(file, (SEGMENT_MAGIC.len() + cut) as u64);
            w.write_all(SEGMENT_MAGIC).unwrap();
            w.write_all(&body).unwrap();
            w.flush().unwrap();
            drop(w);

            let s = scan(&dir).unwrap();
            let complete = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            assert_eq!(s.records.len(), complete, "cut at {cut}");
            assert_eq!(s.records, recs[..complete], "cut at {cut}");
            if cut == boundaries[complete] {
                // The cut fell exactly on a record boundary: the file is
                // indistinguishable from a clean, shorter log.
                assert!(s.truncation.is_none(), "cut at {cut} leaves no tear");
            } else {
                let t = s.truncation.as_ref().expect("tear reported");
                assert_eq!(
                    t.valid_bytes,
                    (SEGMENT_MAGIC.len() + boundaries[complete]) as u64,
                    "cut at {cut}"
                );
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn bit_flip_truncates_from_the_flipped_record() {
        let dir = temp_dir("flip");
        let (recs, mut body) = records(5, 1);
        // Flip one bit inside the third record's payload.
        let off: usize = recs[..2].iter().map(|r| 17 + r.payload.len()).sum::<usize>() + 17 + 2;
        body[off] ^= 0x10;
        write_segment(&dir, 1, &body);
        let s = scan(&dir).unwrap();
        assert_eq!(s.records, recs[..2], "records before the flip survive");
        let t = s.truncation.unwrap();
        assert!(t.reason.contains("CRC"), "{}", t.reason);
        assert!(t.dropped_bytes > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_in_an_early_segment_drops_later_segments() {
        let dir = temp_dir("early");
        let (_, b1) = records(2, 1);
        let (_, b2) = records(2, 3);
        // Tear the FIRST segment mid-record.
        write_segment(&dir, 1, &b1[..b1.len() - 3]);
        let later = write_segment(&dir, 3, &b2);
        let s = scan(&dir).unwrap();
        assert_eq!(s.records.len(), 1);
        let t = s.truncation.unwrap();
        assert_eq!(t.dropped_segments, vec![later]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sequence_gap_is_a_truncation_not_a_panic() {
        let dir = temp_dir("gap");
        let (_, b1) = records(2, 1);
        let (_, b_gap) = records(1, 7); // seq jumps 2 -> 7
        let mut body = b1;
        body.extend_from_slice(&b_gap);
        write_segment(&dir, 1, &body);
        let s = scan(&dir).unwrap();
        assert_eq!(s.records.len(), 2);
        assert!(s.truncation.unwrap().reason.contains("sequence gap"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_point_names_the_first_invalid_byte() {
        // Empty directory: nowhere to resume.
        let dir = temp_dir("resume-empty");
        assert_eq!(scan(&dir).unwrap().resume_point(), None);
        std::fs::remove_dir_all(&dir).ok();

        // Clean log: resume at the end of the last segment's prefix.
        let dir = temp_dir("resume-clean");
        let (_, b1) = records(2, 1);
        let (_, b2) = records(3, 3);
        write_segment(&dir, 1, &b1);
        write_segment(&dir, 3, &b2);
        let s = scan(&dir).unwrap();
        assert_eq!(s.resume_point(), Some((3, (SEGMENT_MAGIC.len() + b2.len()) as u64)));

        // Torn tail: resume exactly at the first invalid record, in the
        // segment that holds it.
        let (_, b3) = records(2, 6);
        write_segment(&dir, 6, &b3[..b3.len() - 4]);
        let s = scan(&dir).unwrap();
        let t = s.truncation.as_ref().unwrap();
        let (seg, off) = s.resume_point().unwrap();
        assert_eq!(seg, 6);
        assert_eq!(off, t.valid_bytes, "resume offset == clean prefix of the bad segment");
        let one_record = 17 + b"payload-6".len();
        assert_eq!(off, (SEGMENT_MAGIC.len() + one_record) as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_magic_is_a_truncation_at_zero() {
        let dir = temp_dir("magic");
        std::fs::write(dir.join(segment::file_name(1)), b"BOGUS").unwrap();
        let s = scan(&dir).unwrap();
        assert!(s.records.is_empty());
        let t = s.truncation.unwrap();
        assert_eq!(t.valid_bytes, 0);
        assert!(t.reason.contains("magic"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
