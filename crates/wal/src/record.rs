//! The on-disk record format: fixed header, checksummed body.
//!
//! ```text
//! offset  size  field
//!      0     4  payload length, u32 LE
//!      4     4  CRC-32 over bytes 8..(17+len)  (seq | type | payload)
//!      8     8  sequence number, u64 LE (monotonic, +1 per append)
//!     16     1  record type (caller-defined)
//!     17   len  payload
//! ```
//!
//! The CRC covers the sequence number and type byte as well as the
//! payload, so corruption anywhere but the length field is caught
//! directly; a corrupted length lands the CRC check on garbage bytes and
//! fails with probability `1 - 2^-32`.

use crate::crc32::crc32;

/// Fixed bytes before each record's payload.
pub const RECORD_HEADER_BYTES: usize = 17;

/// Sanity bound on a single record's payload (64 MiB).  A corrupted
/// length field larger than this is rejected immediately instead of
/// attempting a giant read.
pub const MAX_PAYLOAD_BYTES: usize = 1 << 26;

/// One decoded log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Monotonic sequence number (unique across the whole log).
    pub seq: u64,
    /// Caller-defined record type.
    pub rec_type: u8,
    /// Opaque payload bytes.
    pub payload: Vec<u8>,
}

/// Encode one record to its wire bytes.
#[must_use]
pub fn encode(seq: u64, rec_type: u8, payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_PAYLOAD_BYTES, "payload exceeds MAX_PAYLOAD_BYTES");
    let mut buf = Vec::with_capacity(RECORD_HEADER_BYTES + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&[0u8; 4]); // CRC placeholder
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.push(rec_type);
    buf.extend_from_slice(payload);
    let crc = crc32(&buf[8..]);
    buf[4..8].copy_from_slice(&crc.to_le_bytes());
    buf
}

/// What [`decode`] found at the head of a buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeOutcome {
    /// A whole valid record; `consumed` bytes were used.
    Complete {
        /// The decoded record.
        record: Record,
        /// Bytes the record occupied (header + payload).
        consumed: usize,
    },
    /// The buffer ends mid-record — a torn tail.
    Incomplete,
    /// The bytes at the head are not a valid record.
    Corrupt(String),
}

/// Decode the record starting at `buf[0]`.  The caller guarantees the
/// offset is a record boundary (segment start or the end of the previous
/// record).
#[must_use]
pub fn decode(buf: &[u8]) -> DecodeOutcome {
    if buf.len() < RECORD_HEADER_BYTES {
        return DecodeOutcome::Incomplete;
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_PAYLOAD_BYTES {
        return DecodeOutcome::Corrupt(format!(
            "payload length {len} exceeds the {MAX_PAYLOAD_BYTES}-byte bound"
        ));
    }
    let total = RECORD_HEADER_BYTES + len;
    if buf.len() < total {
        return DecodeOutcome::Incomplete;
    }
    let stored = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    let actual = crc32(&buf[8..total]);
    if stored != actual {
        return DecodeOutcome::Corrupt(format!(
            "CRC mismatch (stored {stored:#010x}, computed {actual:#010x})"
        ));
    }
    let seq =
        u64::from_le_bytes([buf[8], buf[9], buf[10], buf[11], buf[12], buf[13], buf[14], buf[15]]);
    let rec_type = buf[16];
    DecodeOutcome::Complete {
        record: Record { seq, rec_type, payload: buf[RECORD_HEADER_BYTES..total].to_vec() },
        consumed: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        for (seq, ty, payload) in
            [(1u64, 1u8, &b"hello"[..]), (u64::MAX, 255, &[]), (42, 0, &[0u8; 300])]
        {
            let bytes = encode(seq, ty, payload);
            assert_eq!(bytes.len(), RECORD_HEADER_BYTES + payload.len());
            match decode(&bytes) {
                DecodeOutcome::Complete { record, consumed } => {
                    assert_eq!(consumed, bytes.len());
                    assert_eq!(record, Record { seq, rec_type: ty, payload: payload.to_vec() });
                }
                other => panic!("expected Complete, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_truncation_point_reads_as_incomplete() {
        let bytes = encode(7, 3, b"torn tail payload");
        for cut in 0..bytes.len() {
            assert_eq!(decode(&bytes[..cut]), DecodeOutcome::Incomplete, "cut at {cut}");
        }
    }

    #[test]
    fn every_single_byte_corruption_is_caught() {
        let bytes = encode(9, 2, b"checksummed");
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            match decode(&bad) {
                DecodeOutcome::Corrupt(_) | DecodeOutcome::Incomplete => {}
                DecodeOutcome::Complete { record, .. } => {
                    // A flipped *seq or type* byte is covered by the CRC, a
                    // flipped payload byte too — nothing may slip through.
                    panic!("byte {i} corruption decoded as {record:?}");
                }
            }
        }
    }

    #[test]
    fn absurd_length_is_corrupt_not_a_giant_read() {
        let mut bytes = encode(1, 1, b"x");
        bytes[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode(&bytes), DecodeOutcome::Corrupt(_)));
    }
}
