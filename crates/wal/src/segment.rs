//! Segment file naming and discovery.
//!
//! A segment is named `{first_seq:020}.wal` — the sequence number its
//! first record will carry, zero-padded so lexicographic and numeric
//! order agree.  Every segment starts with an 8-byte magic so a stray
//! file (or a segment torn before its first byte landed) is recognized
//! instead of misparsed.

use std::path::{Path, PathBuf};

/// Magic bytes at the start of every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"BULKWAL1";

/// The file name a segment whose first record carries `first_seq` gets.
#[must_use]
pub fn file_name(first_seq: u64) -> String {
    format!("{first_seq:020}.wal")
}

/// Parse a segment file name back to its `first_seq`; `None` for files
/// that are not segments.
#[must_use]
pub fn parse_file_name(name: &str) -> Option<u64> {
    let digits = name.strip_suffix(".wal")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// All segment files under `dir`, sorted by their `first_seq`.  Non-
/// segment files are ignored.
///
/// # Errors
///
/// Directory read failures (a missing directory reads as empty).
pub fn list(dir: &Path) -> Result<Vec<(u64, PathBuf)>, String> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(format!("read_dir {}: {e}", dir.display())),
    };
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let name = entry.file_name();
        if let Some(seq) = name.to_str().and_then(parse_file_name) {
            out.push((seq, entry.path()));
        }
    }
    out.sort_by_key(|(seq, _)| *seq);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_and_sort() {
        assert_eq!(file_name(1), "00000000000000000001.wal");
        assert_eq!(parse_file_name(&file_name(u64::MAX)), Some(u64::MAX));
        assert_eq!(parse_file_name("00000000000000000007.wal"), Some(7));
        assert_eq!(parse_file_name("7.wal"), None, "unpadded");
        assert_eq!(parse_file_name("0000000000000000000x.wal"), None);
        assert_eq!(parse_file_name("00000000000000000001.log"), None);
        assert!(file_name(9) < file_name(10), "lexicographic == numeric");
    }

    #[test]
    fn listing_ignores_strangers_and_sorts() {
        let dir = std::env::temp_dir().join(format!("wal-seg-list-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for name in [file_name(12), file_name(3), "notes.txt".into(), "12.wal".into()] {
            std::fs::write(dir.join(name), b"x").unwrap();
        }
        let seqs: Vec<u64> = list(&dir).unwrap().into_iter().map(|(s, _)| s).collect();
        assert_eq!(seqs, vec![3, 12]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_lists_empty() {
        assert!(list(Path::new("/nonexistent/wal-dir-xyz")).unwrap().is_empty());
    }
}
