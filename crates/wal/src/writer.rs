//! The append side: segment rotation, fsync policy, torn-tail repair.

use crate::reader::{scan, Scan};
use crate::record::encode;
use crate::segment::{self, SEGMENT_MAGIC};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// When appends are made durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every record: an acknowledged append survives any
    /// crash.  Slowest.
    Always,
    /// Fsync once per `n` records: crash loses at most the last `n-1`
    /// acknowledged appends.
    EveryN(u64),
    /// Fsync when at least `ms` milliseconds passed since the last one:
    /// crash loses at most the last `ms` of acknowledged appends.
    EveryMs(u64),
}

impl FsyncPolicy {
    /// Parse the CLI spelling: `always`, `every-n=N`, or `every-ms=MS`.
    ///
    /// # Errors
    ///
    /// Unrecognized spelling or a zero/unparsable count.
    pub fn parse(s: &str) -> Result<Self, String> {
        if s == "always" {
            return Ok(Self::Always);
        }
        let parse_count = |v: &str, what: &str| -> Result<u64, String> {
            let n: u64 =
                v.parse().map_err(|_| format!("invalid fsync {what} {v:?} (want an integer)"))?;
            if n == 0 {
                return Err(format!("fsync {what} must be positive"));
            }
            Ok(n)
        };
        if let Some(v) = s.strip_prefix("every-n=") {
            return Ok(Self::EveryN(parse_count(v, "record count")?));
        }
        if let Some(v) = s.strip_prefix("every-ms=") {
            return Ok(Self::EveryMs(parse_count(v, "interval")?));
        }
        Err(format!("unknown fsync policy {s:?} (want always, every-n=N, or every-ms=MS)"))
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Always => write!(f, "always"),
            Self::EveryN(n) => write!(f, "every-n={n}"),
            Self::EveryMs(ms) => write!(f, "every-ms={ms}"),
        }
    }
}

/// Writer configuration.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding the segment files (created if absent).
    pub dir: PathBuf,
    /// Rotate to a fresh segment once the active one reaches this size.
    pub segment_bytes: u64,
    /// Durability dial.
    pub fsync: FsyncPolicy,
}

impl WalConfig {
    /// A config with the default 4 MiB segments and `always` fsync.
    #[must_use]
    pub fn new(dir: PathBuf) -> Self {
        Self { dir, segment_bytes: 4 << 20, fsync: FsyncPolicy::Always }
    }
}

/// Counters the log keeps about itself.
#[derive(Debug, Default, Clone, Copy)]
pub struct WalMetrics {
    /// Records appended this run.
    pub records_appended: u64,
    /// Record bytes appended this run (headers included).
    pub bytes_appended: u64,
    /// `fsync` calls issued.
    pub fsyncs: u64,
    /// Segments created (rotations plus the initial segment).
    pub segments_created: u64,
    /// Sealed segments deleted by checkpoint truncation.
    pub segments_deleted: u64,
    /// 1 when opening found (and repaired) a torn tail.
    pub torn_tail_truncations: u64,
}

struct Sealed {
    path: PathBuf,
    /// Highest sequence number stored in this segment (for an empty
    /// segment, the highest seq of any earlier segment).
    last_seq: u64,
}

/// An open, append-only log.
pub struct Wal {
    cfg: WalConfig,
    active: File,
    active_path: PathBuf,
    active_bytes: u64,
    active_records: u64,
    sealed: Vec<Sealed>,
    next_seq: u64,
    pending_sync: u64,
    last_sync: Instant,
    metrics: WalMetrics,
    /// Fsync attempts made (successful or not) — the failpoint's clock.
    sync_attempts: u64,
    /// Failpoint: every fsync attempt from the Nth on reports failure.
    /// The failure is sticky by construction (`sync_attempts` only
    /// grows), modelling a device that has gone bad — the fail-stop
    /// regime journals must handle.
    fail_sync_at: Option<u64>,
}

fn sync_dir(dir: &Path) -> Result<(), String> {
    // Make file creation/deletion durable.  Directories can be opened
    // read-only and fsynced on the platforms we target; if the platform
    // refuses, the data files themselves are still synced.
    if let Ok(d) = File::open(dir) {
        d.sync_all().ok();
    }
    Ok(())
}

impl Wal {
    /// Open (or create) the log in `cfg.dir`.
    ///
    /// Scans existing segments, physically truncates a torn tail
    /// (removing any segments past it), and positions the writer after
    /// the last valid record.  Returns the scan so the caller can
    /// replay its records.
    ///
    /// # Errors
    ///
    /// I/O failures creating the directory, scanning, repairing, or
    /// opening the active segment.
    pub fn open(cfg: WalConfig) -> Result<(Self, Scan), String> {
        std::fs::create_dir_all(&cfg.dir)
            .map_err(|e| format!("create wal dir {}: {e}", cfg.dir.display()))?;
        let mut found = scan(&cfg.dir)?;
        let mut metrics = WalMetrics::default();
        if let Some(t) = &found.truncation {
            metrics.torn_tail_truncations = 1;
            for dropped in &t.dropped_segments {
                std::fs::remove_file(dropped)
                    .map_err(|e| format!("remove dropped segment {}: {e}", dropped.display()))?;
            }
            if t.valid_bytes < SEGMENT_MAGIC.len() as u64 {
                // Not even the magic survived — the file carries nothing.
                std::fs::remove_file(&t.path)
                    .map_err(|e| format!("remove torn segment {}: {e}", t.path.display()))?;
                found.segments.pop();
            } else {
                let f = OpenOptions::new()
                    .write(true)
                    .open(&t.path)
                    .map_err(|e| format!("open torn segment {}: {e}", t.path.display()))?;
                f.set_len(t.valid_bytes)
                    .map_err(|e| format!("truncate {}: {e}", t.path.display()))?;
                f.sync_all().map_err(|e| format!("sync {}: {e}", t.path.display()))?;
            }
            sync_dir(&cfg.dir)?;
        }
        let next_seq = found.next_seq();
        let mut sealed = Vec::new();
        let mut last_seen = 0u64;
        for info in &found.segments {
            if let Some((_, last)) = info.seq_range {
                last_seen = last;
            }
            sealed.push(Sealed { path: info.path.clone(), last_seq: last_seen });
        }
        // The newest surviving segment stays active; everything earlier
        // is sealed.
        let (active, active_path, active_bytes, active_records) = match sealed.pop() {
            Some(last) => {
                let info = found.segments.last().expect("segment info for active");
                let f = OpenOptions::new()
                    .append(true)
                    .open(&last.path)
                    .map_err(|e| format!("open active segment {}: {e}", last.path.display()))?;
                (f, last.path, info.valid_bytes, info.records as u64)
            }
            None => {
                let (f, path) = create_segment(&cfg.dir, next_seq, &mut metrics)?;
                (f, path, SEGMENT_MAGIC.len() as u64, 0)
            }
        };
        let wal = Self {
            cfg,
            active,
            active_path,
            active_bytes,
            active_records,
            sealed,
            next_seq,
            pending_sync: 0,
            last_sync: Instant::now(),
            metrics,
            sync_attempts: 0,
            fail_sync_at: None,
        };
        Ok((wal, found))
    }

    /// Append one record; returns its sequence number.
    ///
    /// Durability depends on the fsync policy: under
    /// [`FsyncPolicy::Always`] the record is on disk when this returns.
    ///
    /// # Errors
    ///
    /// I/O failures writing or syncing.
    pub fn append(&mut self, rec_type: u8, payload: &[u8]) -> Result<u64, String> {
        let seq = self.append_unsynced(rec_type, payload)?;
        match self.cfg.fsync {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                if self.pending_sync >= n {
                    self.sync()?;
                }
            }
            FsyncPolicy::EveryMs(ms) => {
                if self.last_sync.elapsed() >= Duration::from_millis(ms) {
                    self.sync()?;
                }
            }
        }
        Ok(seq)
    }

    /// Append one record *without* applying the fsync policy; returns its
    /// sequence number.  The record is in the OS page cache, not durable,
    /// until a later [`Wal::sync`] (or policy-triggered sync) covers it.
    ///
    /// This is the group-commit primitive: several writers append
    /// unsynced, then one leader issues a single [`Wal::sync`] that makes
    /// all of them durable at once.
    ///
    /// # Errors
    ///
    /// I/O failures writing (rotation included).
    pub fn append_unsynced(&mut self, rec_type: u8, payload: &[u8]) -> Result<u64, String> {
        if self.active_bytes >= self.cfg.segment_bytes && self.active_records > 0 {
            self.rotate()?;
        }
        let seq = self.next_seq;
        let bytes = encode(seq, rec_type, payload);
        self.active
            .write_all(&bytes)
            .map_err(|e| format!("append to {}: {e}", self.active_path.display()))?;
        self.next_seq += 1;
        self.active_bytes += bytes.len() as u64;
        self.active_records += 1;
        self.pending_sync += 1;
        self.metrics.records_appended += 1;
        self.metrics.bytes_appended += bytes.len() as u64;
        Ok(seq)
    }

    /// Force unsynced appends to disk now, regardless of policy.
    ///
    /// # Errors
    ///
    /// The underlying `fsync` failing.
    pub fn sync(&mut self) -> Result<(), String> {
        if self.pending_sync > 0 {
            self.sync_attempts += 1;
            if self.fail_sync_at.is_some_and(|n| self.sync_attempts >= n) {
                // `pending_sync` stays set: the unsynced records remain
                // non-durable and every later attempt fails again.
                return Err(format!(
                    "fsync {}: injected failure (attempt {})",
                    self.active_path.display(),
                    self.sync_attempts
                ));
            }
            self.active
                .sync_data()
                .map_err(|e| format!("fsync {}: {e}", self.active_path.display()))?;
            self.metrics.fsyncs += 1;
            self.pending_sync = 0;
        }
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Arm the fsync failpoint: the `nth` fsync attempt (1-based, counted
    /// across the log's lifetime) and every one after it fail with an
    /// injected error, leaving unsynced records non-durable.  Test-only
    /// fault injection for exercising journal fail-stop paths.
    pub fn inject_fsync_error(&mut self, nth: u64) {
        self.fail_sync_at = Some(nth.max(1));
    }

    /// Seal the active segment and start a fresh one.
    ///
    /// # Errors
    ///
    /// I/O failures syncing the old segment or creating the new one.
    pub fn rotate(&mut self) -> Result<(), String> {
        self.sync()?;
        self.sealed.push(Sealed {
            path: std::mem::take(&mut self.active_path),
            last_seq: self.next_seq - 1,
        });
        let (f, path) = create_segment(&self.cfg.dir, self.next_seq, &mut self.metrics)?;
        self.active = f;
        self.active_path = path;
        self.active_bytes = SEGMENT_MAGIC.len() as u64;
        self.active_records = 0;
        Ok(())
    }

    /// Delete sealed segments whose every record has sequence number
    /// below `seq`.  The active segment is never deleted.
    ///
    /// # Errors
    ///
    /// I/O failures deleting files.
    pub fn truncate_before(&mut self, seq: u64) -> Result<usize, String> {
        let mut deleted = 0;
        while let Some(first) = self.sealed.first() {
            if first.last_seq >= seq {
                break;
            }
            let s = self.sealed.remove(0);
            std::fs::remove_file(&s.path)
                .map_err(|e| format!("remove sealed segment {}: {e}", s.path.display()))?;
            deleted += 1;
        }
        if deleted > 0 {
            self.metrics.segments_deleted += deleted as u64;
            sync_dir(&self.cfg.dir)?;
        }
        Ok(deleted)
    }

    /// Sequence number the next append will carry.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Counters about this log instance.
    #[must_use]
    pub fn metrics(&self) -> WalMetrics {
        self.metrics
    }

    /// Number of live segment files (sealed + active).
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.sealed.len() + 1
    }

    /// The directory this log lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.cfg.dir
    }
}

fn create_segment(
    dir: &Path,
    first_seq: u64,
    metrics: &mut WalMetrics,
) -> Result<(File, PathBuf), String> {
    let path = dir.join(segment::file_name(first_seq));
    let mut f = OpenOptions::new()
        .create_new(true)
        .append(true)
        .open(&path)
        .map_err(|e| format!("create segment {}: {e}", path.display()))?;
    f.write_all(SEGMENT_MAGIC).map_err(|e| format!("write magic {}: {e}", path.display()))?;
    f.sync_all().map_err(|e| format!("sync new segment {}: {e}", path.display()))?;
    sync_dir(dir)?;
    metrics.segments_created += 1;
    Ok((f, path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_ID: AtomicU64 = AtomicU64::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "wal-writer-{tag}-{}-{}",
            std::process::id(),
            DIR_ID.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn cfg(dir: &Path) -> WalConfig {
        WalConfig { dir: dir.to_path_buf(), segment_bytes: 4 << 20, fsync: FsyncPolicy::Always }
    }

    #[test]
    fn append_reopen_round_trip() {
        let dir = temp_dir("roundtrip");
        {
            let (mut wal, scan) = Wal::open(cfg(&dir)).unwrap();
            assert!(scan.records.is_empty());
            assert_eq!(wal.append(1, b"first").unwrap(), 1);
            assert_eq!(wal.append(2, b"second").unwrap(), 2);
        }
        let (wal, scan) = Wal::open(cfg(&dir)).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[0].payload, b"first");
        assert_eq!(scan.records[1].rec_type, 2);
        assert_eq!(wal.next_seq(), 3);
        assert_eq!(wal.metrics().torn_tail_truncations, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_splits_segments_and_reopen_reads_across_them() {
        let dir = temp_dir("rotate");
        let mut c = cfg(&dir);
        c.segment_bytes = 64; // tiny: force frequent rotation
        {
            let (mut wal, _) = Wal::open(c.clone()).unwrap();
            for i in 0..10u64 {
                wal.append(1, format!("record-{i}").as_bytes()).unwrap();
            }
            assert!(wal.segment_count() > 1, "tiny threshold must rotate");
            assert_eq!(wal.metrics().segments_created as usize, wal.segment_count());
        }
        let (wal, scan) = Wal::open(c).unwrap();
        assert_eq!(scan.records.len(), 10);
        assert_eq!(wal.next_seq(), 11);
        // Segment names carry the first seq they hold.
        for info in &scan.segments {
            if let Some((first, _)) = info.seq_range {
                assert_eq!(info.name_seq, first);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_repaired_on_open() {
        let dir = temp_dir("repair");
        let full_len;
        {
            let (mut wal, _) = Wal::open(cfg(&dir)).unwrap();
            wal.append(1, b"kept").unwrap();
            wal.append(1, b"also kept").unwrap();
            full_len = std::fs::metadata(dir.join(segment::file_name(1))).unwrap().len();
        }
        // Simulate a crash mid-append: garbage half-record at the tail.
        let path = dir.join(segment::file_name(1));
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xAB; 9]).unwrap();
        drop(f);
        let (mut wal, scan) = Wal::open(cfg(&dir)).unwrap();
        assert_eq!(scan.records.len(), 2, "records before the tear survive");
        assert!(scan.truncation.is_some());
        assert_eq!(wal.metrics().torn_tail_truncations, 1);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), full_len, "tail chopped off");
        // The log is immediately appendable and the new record lands
        // exactly after the repaired prefix.
        assert_eq!(wal.append(1, b"after repair").unwrap(), 3);
        drop(wal);
        let (_, scan) = Wal::open(cfg(&dir)).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert!(scan.truncation.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fully_torn_segment_is_deleted_on_open() {
        let dir = temp_dir("deltorn");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(segment::file_name(1)), b"BUL").unwrap(); // torn magic
        let (mut wal, scan) = Wal::open(cfg(&dir)).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(wal.metrics().torn_tail_truncations, 1);
        assert_eq!(wal.append(1, b"fresh start").unwrap(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_before_deletes_only_fully_old_sealed_segments() {
        let dir = temp_dir("trunc");
        let mut c = cfg(&dir);
        c.segment_bytes = 1; // rotate after every record
        let (mut wal, _) = Wal::open(c.clone()).unwrap();
        for i in 1..=5u64 {
            assert_eq!(wal.append(1, b"r").unwrap(), i);
        }
        let before = wal.segment_count();
        assert!(before >= 4);
        // Seq 1 and 2 live in fully-old segments; 3 must survive.
        let deleted = wal.truncate_before(3).unwrap();
        assert_eq!(deleted, 2);
        assert_eq!(wal.segment_count(), before - 2);
        assert_eq!(wal.metrics().segments_deleted, 2);
        drop(wal);
        let (_, scan) = Wal::open(c).unwrap();
        let seqs: Vec<u64> = scan.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_policy_controls_sync_count() {
        let dir = temp_dir("policy");
        let mut c = cfg(&dir);
        c.fsync = FsyncPolicy::Always;
        {
            let (mut wal, _) = Wal::open(c.clone()).unwrap();
            for _ in 0..6 {
                wal.append(1, b"x").unwrap();
            }
            assert_eq!(wal.metrics().fsyncs, 6, "always => one fsync per append");
        }
        std::fs::remove_dir_all(&dir).ok();
        c.fsync = FsyncPolicy::EveryN(3);
        {
            let (mut wal, _) = Wal::open(c.clone()).unwrap();
            for _ in 0..6 {
                wal.append(1, b"x").unwrap();
            }
            assert_eq!(wal.metrics().fsyncs, 2, "every-n=3 => 6 appends, 2 fsyncs");
            wal.sync().unwrap();
            assert_eq!(wal.metrics().fsyncs, 2, "nothing pending => no extra fsync");
        }
        std::fs::remove_dir_all(&dir).ok();
        c.fsync = FsyncPolicy::EveryMs(3_600_000);
        {
            let (mut wal, _) = Wal::open(c).unwrap();
            for _ in 0..6 {
                wal.append(1, b"x").unwrap();
            }
            assert_eq!(wal.metrics().fsyncs, 0, "hour-long interval never fires in-test");
            wal.sync().unwrap();
            assert_eq!(wal.metrics().fsyncs, 1, "explicit sync flushes the pending batch");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_unsynced_defers_durability_to_one_sync() {
        let dir = temp_dir("unsynced");
        let (mut wal, _) = Wal::open(cfg(&dir)).unwrap();
        for i in 1..=5u64 {
            assert_eq!(wal.append_unsynced(1, b"batched").unwrap(), i);
        }
        assert_eq!(wal.metrics().fsyncs, 0, "no policy sync despite Always");
        wal.sync().unwrap();
        assert_eq!(wal.metrics().fsyncs, 1, "one group fsync covers all five");
        wal.sync().unwrap();
        assert_eq!(wal.metrics().fsyncs, 1, "nothing pending => no extra fsync");
        drop(wal);
        let (_, scan) = Wal::open(cfg(&dir)).unwrap();
        assert_eq!(scan.records.len(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_fsync_errors_are_sticky_and_leave_records_pending() {
        let dir = temp_dir("failpoint");
        let (mut wal, _) = Wal::open(cfg(&dir)).unwrap();
        wal.inject_fsync_error(2);
        wal.append(1, b"survives").unwrap(); // attempt 1 succeeds
        let e = wal.append(1, b"doomed").unwrap_err(); // attempt 2 fails
        assert!(e.contains("injected failure"), "{e}");
        // Sticky: explicit syncs keep failing, fsync count stays at 1.
        assert!(wal.sync().unwrap_err().contains("injected failure"));
        assert_eq!(wal.metrics().fsyncs, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_policy_parses_and_displays() {
        for (s, want) in [
            ("always", FsyncPolicy::Always),
            ("every-n=128", FsyncPolicy::EveryN(128)),
            ("every-ms=50", FsyncPolicy::EveryMs(50)),
        ] {
            let p = FsyncPolicy::parse(s).unwrap();
            assert_eq!(p, want);
            assert_eq!(p.to_string(), s, "Display round-trips the CLI spelling");
        }
        for bad in ["sometimes", "every-n=0", "every-ms=", "every-n=abc", ""] {
            assert!(FsyncPolicy::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }
}
