//! Bulk encryption: the paper's "encryption/decryption" class at work.
//!
//! ```sh
//! cargo run --release --example bulk_crypto
//! ```
//!
//! Many independent messages (each with its own 128-bit key) are XTEA-
//! encrypted in one bulk launch — ECB over 64-bit blocks, one bulk instance
//! per (key, message) pair — then bulk-decrypted and verified.  Because
//! XTEA's schedule is oblivious, the access trace is identical for every
//! key and message: the bulk execution leaks nothing about the data through
//! its memory addresses, and coalesces perfectly in the column-wise
//! arrangement.

use algorithms::xtea::encipher_reference;
use bulk_oblivious::prelude::*;

const MESSAGES: usize = 2048;
const BLOCKS_PER_MESSAGE: usize = 4; // 32 bytes each

fn main() {
    // Synthesise (key, message) pairs.
    let mut state = 0xDEAD_BEEF_CAFE_1234u64;
    let mut word = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 32) as u32
    };
    let instances: Vec<Vec<u32>> =
        (0..MESSAGES).map(|_| (0..4 + 2 * BLOCKS_PER_MESSAGE).map(|_| word()).collect()).collect();
    let refs: Vec<&[u32]> = instances.iter().map(|v| v.as_slice()).collect();

    // The encryption program is oblivious: its trace is data-independent.
    let enc = Xtea::encrypt(BLOCKS_PER_MESSAGE);
    let t = time_steps::<u32, _>(&enc);
    println!(
        "xtea: {} messages x {} blocks, t = {t} memory steps per instance",
        MESSAGES, BLOCKS_PER_MESSAGE
    );

    // Bulk-encrypt, column-wise.
    let ciphertexts = bulk_execute(&enc, &refs, Layout::ColumnWise);

    // Spot-check against the scalar reference cipher.
    for idx in [0usize, 7, MESSAGES - 1] {
        let inst = &instances[idx];
        let key = [inst[0], inst[1], inst[2], inst[3]];
        for b in 0..BLOCKS_PER_MESSAGE {
            let plain = [inst[4 + 2 * b], inst[5 + 2 * b]];
            let want = encipher_reference(32, plain, key);
            assert_eq!(&ciphertexts[idx][2 * b..2 * b + 2], &want, "message {idx} block {b}");
        }
    }
    println!("ciphertexts match the reference cipher");

    // Bulk-decrypt: rebuild instances with the same keys and the
    // ciphertext payload, then run the inverse program.
    let dec = Xtea::decrypt(BLOCKS_PER_MESSAGE);
    let dec_inputs: Vec<Vec<u32>> = instances
        .iter()
        .zip(&ciphertexts)
        .map(|(inst, ct)| {
            let mut v = inst[0..4].to_vec();
            v.extend_from_slice(ct);
            v
        })
        .collect();
    let dec_refs: Vec<&[u32]> = dec_inputs.iter().map(|v| v.as_slice()).collect();
    let recovered = bulk_execute(&dec, &dec_refs, Layout::ColumnWise);
    for (inst, rec) in instances.iter().zip(&recovered) {
        assert_eq!(&inst[4..], rec.as_slice(), "decryption must invert encryption");
    }
    println!("all {MESSAGES} messages decrypt back to their plaintext");

    // Model cost of the bulk launch in both arrangements.
    let cfg = MachineConfig::new(32, 100);
    let row = bulk_model_time(&enc, cfg, Model::Umm, Layout::RowWise, MESSAGES);
    let col = bulk_model_time(&enc, cfg, Model::Umm, Layout::ColumnWise, MESSAGES);
    println!(
        "UMM model (w=32, l=100): row-wise {row} vs column-wise {col} time units ({:.1}x)",
        row as f64 / col as f64
    );
}
