//! Model explorer: how machine parameters shape the bulk-execution story.
//!
//! ```sh
//! cargo run --release --example model_explorer
//! ```
//!
//! Prints three views of the UMM model for bulk OPT:
//! 1. the `p` sweep (the latency floor and the throughput asymptote that
//!    give the paper's Figure-12 curves their shape),
//! 2. the width sweep (the layout gap *is* `w`),
//! 3. the trace anatomy of the DP (where the time actually goes).

use bulk_oblivious::prelude::*;
use umm_core::{address_group_histogram, summarize};

fn main() {
    let n = 16;
    let prog = OptTriangulation::new(n);
    let t = time_steps::<f32, _>(&prog) as u64;
    println!("program: OPT on {n}-gons — t = {t} memory steps per instance\n");

    // View 1: the p sweep on a GPU-like machine.
    let cfg = MachineConfig::new(32, 200);
    println!("UMM(w=32, l=200) bulk times (time units):");
    println!(
        "{:>10} {:>14} {:>14} {:>8} {:>12}",
        "p", "row-wise", "column-wise", "gap", "vs bound"
    );
    for exp in [6u32, 8, 10, 12, 14, 16, 18] {
        let p = 1usize << exp;
        let row = bulk_model_time::<f32, _>(&prog, cfg, Model::Umm, Layout::RowWise, p);
        let col = bulk_model_time::<f32, _>(&prog, cfg, Model::Umm, Layout::ColumnWise, p);
        let lb = oblivious::theorems::lower_bound(t, p as u64, 32, 200);
        println!(
            "{:>10} {:>14} {:>14} {:>7.1}x {:>11.2}x",
            analytic::format_p(p as u64),
            row,
            col,
            row as f64 / col as f64,
            col as f64 / lb as f64
        );
    }
    println!("(the gap climbs toward w = 32 as throughput overtakes latency)\n");

    // View 2: the width sweep at fixed p.
    println!("layout gap vs machine width (p = 64K, l = 4):");
    print!("  ");
    for w in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let c = MachineConfig::new(w, 4);
        print!("w={w}: {:.1}x  ", analytic::layout_gap(&c, t, 64 << 10));
    }
    println!("\n");

    // View 3: trace anatomy.
    let trace = trace_of::<f32, _>(&prog);
    let s = summarize(&trace);
    println!("trace anatomy of one instance:");
    println!("  memory steps      : {} ({} reads, {} writes)", s.steps, s.reads, s.writes);
    let msize = ObliviousProgram::<f32>::memory_words(&prog);
    println!("  working set       : {} of {} words", s.working_set, msize);
    println!("  mean |stride|     : {:.1} words", s.mean_abs_stride);
    println!("  sequential pairs  : {:.0}%", s.sequential_fraction * 100.0);
    println!("  mean reuse dist.  : {:.1} steps", s.mean_reuse_distance);
    let groups = address_group_histogram(&trace, &cfg);
    let hottest = groups.iter().max_by_key(|(_, c)| *c).expect("non-empty");
    println!(
        "  hottest row       : address group {} with {} touches (of {} groups used)",
        hottest.0,
        hottest.1,
        groups.len()
    );
    println!();

    // Epilogue: the same numbers drive the HMM staging verdict.
    let hmm = umm_core::HmmConfig::titan_like();
    let p = 14 * 64;
    let c = oblivious::hmm_bulk_cost::<f32, _>(&prog, &hmm, p);
    println!(
        "HMM staging verdict at p = {p}: {} ({:.1}x) — reuse distance this short begs for shared memory",
        if c.staging_wins() { "stage" } else { "stay global" },
        c.advantage(),
    );
}
