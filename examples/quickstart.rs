//! Quickstart: write one oblivious program, run it four ways.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! A single `ObliviousProgram` implementation is (1) executed sequentially,
//! (2) traced to recover the paper's address function `a(t)`, (3) priced on
//! the UMM model in both arrangements, and (4) bulk-executed on the
//! software-SIMT device — with no algorithm-specific parallel code.

use bulk_oblivious::prelude::*;

/// Squares every element, then prefix-sums the squares — a tiny custom
/// pipeline written directly against the machine interface.
struct SumOfSquares {
    n: usize,
}

impl ObliviousProgram<f32> for SumOfSquares {
    fn name(&self) -> String {
        format!("sum-of-squares(n={})", self.n)
    }
    fn memory_words(&self) -> usize {
        self.n
    }
    fn input_range(&self) -> std::ops::Range<usize> {
        0..self.n
    }
    fn output_range(&self) -> std::ops::Range<usize> {
        0..self.n
    }
    fn run<M: ObliviousMachine<f32>>(&self, m: &mut M) {
        // Square in place …
        for i in 0..self.n {
            let x = m.read(i);
            let sq = m.mul(x, x);
            m.write(i, sq);
            m.free(x);
            m.free(sq);
        }
        // … then the paper's Algorithm Prefix-sums.
        let mut r = m.zero();
        for i in 0..self.n {
            let x = m.read(i);
            let r2 = m.add(r, x);
            m.free(x);
            m.free(r);
            m.write(i, r2);
            r = r2;
        }
        m.free(r);
    }
}

fn main() {
    let n = 8;
    let prog = SumOfSquares { n };

    // (1) Sequential execution, one input.
    let input: Vec<f32> = (1..=n as i32).map(|x| x as f32).collect();
    let out = run_on_input(&prog, &input);
    println!("sequential: {input:?} -> {out:?}");
    assert_eq!(out[n - 1], (1..=n as i32).map(|x| (x * x) as f32).sum());

    // (2) The address function a(t): identical for every input, by
    // construction.
    let trace = trace_of::<f32, _>(&prog);
    println!(
        "oblivious trace: t = {} memory steps (first four: {:?})",
        trace.len(),
        &trace.steps()[..4]
    );

    // (3) Model pricing on a GPU-like UMM (w = 32, l = 100).
    let cfg = MachineConfig::new(32, 100);
    let p = 4096;
    let row = bulk_model_time(&prog, cfg, Model::Umm, Layout::RowWise, p);
    let col = bulk_model_time(&prog, cfg, Model::Umm, Layout::ColumnWise, p);
    println!(
        "UMM model, p = {p}: row-wise {row} units, column-wise {col} units ({:.1}x)",
        row as f64 / col as f64
    );

    // (4) Bulk execution on the virtual device, column-wise.
    let inputs: Vec<Vec<f32>> =
        (0..p).map(|j| (0..n).map(|i| (i + j % 3) as f32).collect()).collect();
    let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
    let outputs = bulk_execute(&prog, &refs, Layout::ColumnWise);
    println!("bulk: executed {} instances; instance 7 -> {:?}", outputs.len(), outputs[7]);

    // Cross-check against the sequential baseline.
    let expected = bulk_execute_cpu_reference(&prog, &refs);
    assert_eq!(outputs, expected);
    println!("bulk output matches the sequential baseline for all {p} inputs");
}
