//! Signal pipeline: the paper's motivating bulk-FFT scenario.
//!
//! ```sh
//! cargo run --release --example signal_pipeline
//! ```
//!
//! "In practical signal processing, an input stream is equally partitioned
//! into many blocks, and the FFT algorithm is executed for each block in
//! turn or in parallel.  This is exactly the bulk execution of the FFT
//! algorithm."  (paper, §I.C)
//!
//! This example synthesises a long stream carrying two tones plus noise,
//! FIR-denoises it, chops it into 64-sample blocks, bulk-FFTs all blocks on
//! the virtual device, and locates the tones in the averaged spectrum.

use bulk_oblivious::prelude::*;
use oblivious::layout::extract;
use oblivious::program::arrange_inputs;

const BLOCK_LOG2: u32 = 6; // 64-point FFT blocks
const BLOCKS: usize = 512;

fn synthesise_stream() -> Vec<f32> {
    let n = BLOCKS * (1 << BLOCK_LOG2);
    let mut rng_state = 0x1234_5678_u64;
    let mut noise = move || {
        // xorshift noise in [-0.5, 0.5)
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        (rng_state >> 40) as f32 / (1u64 << 24) as f32 - 0.5
    };
    (0..n)
        .map(|k| {
            let t = k as f64;
            // Tones at bins 5 and 19 of each 64-sample block.
            let s = (2.0 * std::f64::consts::PI * 5.0 * t / 64.0).sin()
                + 0.5 * (2.0 * std::f64::consts::PI * 19.0 * t / 64.0).sin();
            s as f32 + 0.2 * noise()
        })
        .collect()
}

fn main() {
    let stream = synthesise_stream();
    println!("stream: {} samples ({} blocks of {})", stream.len(), BLOCKS, 1 << BLOCK_LOG2);

    // Stage 1: bulk FIR smoothing — treat each block as an instance.
    let fir = FirFilter::moving_average(1 << BLOCK_LOG2, 2);
    let blocks: Vec<&[f32]> = stream.chunks_exact(1 << BLOCK_LOG2).collect();
    let smoothed = bulk_execute(&fir, &blocks, Layout::ColumnWise);
    println!("stage 1: FIR denoise, {} instances (column-wise bulk)", smoothed.len());

    // Stage 2: bulk FFT of all blocks on the virtual device via the
    // generic engine (complex-interleaved inputs).
    let fft = Fft::new(BLOCK_LOG2);
    let packed: Vec<Vec<f32>> =
        smoothed.iter().map(|b| b.iter().flat_map(|&re| [re, 0.0f32]).collect()).collect();
    let refs: Vec<&[f32]> = packed.iter().map(|v| v.as_slice()).collect();

    let device = Device::titan_like();
    let msize = 2 * (1usize << BLOCK_LOG2);
    let mut buf = arrange_inputs(&fft, &refs, Layout::ColumnWise);
    launch(&device, &GenericKernel::new(fft, Layout::ColumnWise), &mut buf, BLOCKS);
    let spectra = extract(&buf, BLOCKS, msize, Layout::ColumnWise, 0..msize);
    println!("stage 2: bulk FFT on {} ({} workers)", device.name, device.worker_threads);

    // Stage 3: average magnitude spectrum across blocks.
    let nbins = 1usize << BLOCK_LOG2;
    let mut avg = vec![0.0f64; nbins / 2];
    for s in &spectra {
        for (bin, a) in avg.iter_mut().enumerate() {
            let (re, im) = (s[2 * bin] as f64, s[2 * bin + 1] as f64);
            *a += (re * re + im * im).sqrt();
        }
    }
    for a in &mut avg {
        *a /= BLOCKS as f64;
    }

    // Report the two strongest bins (skipping DC).
    let mut bins: Vec<(usize, f64)> = avg.iter().copied().enumerate().skip(1).collect();
    bins.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!(
        "strongest bins: {} ({:.1}) and {} ({:.1})",
        bins[0].0, bins[0].1, bins[1].0, bins[1].1
    );
    let mut top = [bins[0].0, bins[1].0];
    top.sort_unstable();
    assert_eq!(top, [5, 19], "the injected tones must dominate the spectrum");
    println!("tones recovered at bins 5 and 19 — pipeline verified");

    // Model view: what would this FFT pass cost on the UMM?
    let cfg = MachineConfig::new(32, 100);
    let fft = Fft::new(BLOCK_LOG2);
    let row = bulk_model_time::<f32, _>(&fft, cfg, Model::Umm, Layout::RowWise, BLOCKS);
    let col = bulk_model_time::<f32, _>(&fft, cfg, Model::Umm, Layout::ColumnWise, BLOCKS);
    println!("UMM model (w=32, l=100): row-wise {row} vs column-wise {col} time units");
}
