//! Optimal polygon triangulation with chord recovery — the paper's §IV
//! worked end-to-end, including the "few extra bookkeeping steps" that turn
//! the DP value into an actual triangulation.
//!
//! ```sh
//! cargo run --release --example triangulation
//! ```
//!
//! A batch of convex polygons with random chord weights is triangulated in
//! bulk; one of them is rendered as ASCII art with its chosen chords.

use algorithms::opt::{brute_force, recover_chords, triangulation_count};
use bulk_oblivious::prelude::*;

fn main() {
    let n = 8; // the paper's Figure 3 example size
    let p = 256;
    println!(
        "triangulating {p} convex {n}-gons in bulk ({} possible triangulations each)",
        triangulation_count(n)
    );

    // Random chord weights per polygon (edges weight 0 by convention).
    let weights: Vec<ChordWeights> = (0..p)
        .map(|s| ChordWeights::from_fn(n, |i, j| (((i * 31 + j * 17 + s * 101) % 90) + 10) as f64))
        .collect();
    let inputs: Vec<Vec<f64>> = weights.iter().map(|c| c.as_words()).collect();
    let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();

    // Bulk DP with the argmin table recorded, column-wise.
    let prog = OptTriangulation::with_argmin(n);
    let outputs = bulk_execute(&prog, &refs, Layout::ColumnWise);

    // Recover and verify every polygon's triangulation.
    let mut total_weight = 0.0;
    for (c, out) in weights.iter().zip(&outputs) {
        let value = out[prog.answer_offset()];
        let chords = recover_chords(&prog, out);
        assert_eq!(chords.len(), n - 3, "a triangulation has n - 3 chords");
        let sum: f64 = chords.iter().map(|&(a, b)| c.get(a, b)).sum();
        assert_eq!(sum, value, "chord weights must sum to the DP optimum");
        assert_eq!(value, brute_force(c), "DP must match exhaustive search");
        total_weight += value;
    }
    println!("all {p} triangulations verified against brute force (Catalan search)");
    println!("mean optimal weight: {:.2}", total_weight / p as f64);

    // Show one polygon in detail.
    let show = 3;
    let chords = recover_chords(&prog, &outputs[show]);
    println!(
        "\npolygon #{show}: optimal weight {}, chords {:?}",
        outputs[show][prog.answer_offset()],
        chords
    );
    render_octagon(&chords);

    // And the model's verdict on the bulk run.
    let cfg = MachineConfig::new(32, 100);
    let base = OptTriangulation::new(n);
    let row = bulk_model_time::<f64, _>(&base, cfg, Model::Umm, Layout::RowWise, p);
    let col = bulk_model_time::<f64, _>(&base, cfg, Model::Umm, Layout::ColumnWise, p);
    println!(
        "\nUMM model (w=32, l=100), p = {p}: row {row} vs col {col} time units ({:.1}x)",
        row as f64 / col as f64
    );
}

/// Tiny ASCII rendering of an octagon with its chords (vertex layout
/// mirrors the paper's Figure 3).
fn render_octagon(chords: &[(usize, usize)]) {
    // Vertex positions on a 17x9 character canvas.
    let pos: [(usize, usize); 8] =
        [(5, 0), (11, 0), (15, 3), (15, 6), (11, 8), (5, 8), (1, 6), (1, 3)];
    let mut canvas = vec![vec![' '; 18]; 9];
    for (v, &(x, y)) in pos.iter().enumerate() {
        canvas[y][x] = char::from_digit(v as u32, 10).unwrap();
    }
    for &(a, b) in chords {
        let (x0, y0) = (pos[a].0 as f64, pos[a].1 as f64);
        let (x1, y1) = (pos[b].0 as f64, pos[b].1 as f64);
        let steps = 12;
        for s in 1..steps {
            let t = s as f64 / steps as f64;
            let x = (x0 + (x1 - x0) * t).round() as usize;
            let y = (y0 + (y1 - y0) * t).round() as usize;
            if canvas[y][x] == ' ' {
                canvas[y][x] = '.';
            }
        }
    }
    for row in canvas {
        println!("  {}", row.into_iter().collect::<String>());
    }
}
