//! # bulk-oblivious
//!
//! A Rust reproduction of *"Bulk Execution of Oblivious Algorithms on the
//! Unified Memory Machine, with GPU Implementation"* (Tani, Takafuji,
//! Nakano, Ito; 2014): the UMM/DMM memory-machine models, oblivious
//! programs that are oblivious *by construction*, their time-optimal
//! column-wise bulk execution, and a software-SIMT device that reproduces
//! the paper's coalescing experiments on a CPU.
//!
//! This facade crate re-exports the workspace members; see each crate's
//! documentation for depth:
//!
//! * [`umm`] (`umm-core`) — the UMM/DMM timing simulators.
//! * [`core`] (`oblivious`) — machine interface, bulk engine, theorems.
//! * [`algs`] (`algorithms`) — the oblivious algorithm library.
//! * [`gpu`] (`gpu-sim`) — the virtual GPU device and kernels.
//! * [`perf`] (`analytic`) — cost models, fits, speedups.
//!
//! ## Quickstart
//!
//! ```
//! use bulk_oblivious::prelude::*;
//!
//! // 1. Pick an oblivious algorithm — bulk prefix-sums over 1024 inputs.
//! let prog = PrefixSums::new(64);
//! let inputs: Vec<Vec<f32>> = (0..1024).map(|j| vec![j as f32 % 7.0; 64]).collect();
//! let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
//!
//! // 2. Bulk-execute column-wise — the arrangement Theorem 3 proves optimal.
//! let outputs = bulk_execute(&prog, &refs, Layout::ColumnWise);
//! assert_eq!(outputs.len(), 1024);
//!
//! // 3. Price the same execution on the UMM model.
//! let cfg = MachineConfig::new(32, 100);
//! let t_col = bulk_model_time::<f32, _>(&prog, cfg, Model::Umm, Layout::ColumnWise, 1024);
//! let t_row = bulk_model_time::<f32, _>(&prog, cfg, Model::Umm, Layout::RowWise, 1024);
//! assert!(t_col * 8 < t_row, "column-wise is far cheaper on the UMM");
//! ```

pub use algorithms as algs;
pub use analytic as perf;
pub use gpu_sim as gpu;
pub use oblivious as core;
pub use umm_core as umm;

/// The names most programs need.
pub mod prelude {
    pub use algorithms::{
        BitonicSort, ChordWeights, EditDistance, Fft, FirFilter, FloydWarshall, Horner, LcsLength,
        MatMul, MatVec, OddEvenMergeSort, OfflinePermute, OptTriangulation, PrefixSums, SummedArea,
        Transpose, Xtea,
    };
    pub use gpu_sim::{launch, BulkKernel, Device, GenericKernel, OptKernel, PrefixSumsKernel};
    pub use oblivious::program::{
        bulk_execute, bulk_execute_cpu_reference, bulk_model_time, run_on_input, time_steps,
        trace_of,
    };
    pub use oblivious::{
        check_oblivious, Chain, Layout, Model, ObliviousMachine, ObliviousProgram, Repeat, Shifted,
        Tape, Word,
    };
    pub use umm_core::{DmmSimulator, HmmConfig, HmmSimulator, MachineConfig, UmmSimulator};
}
