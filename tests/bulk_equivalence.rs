//! Integration: every execution path computes the same thing.
//!
//! For each algorithm in the library the five implementations must agree:
//! sequential scalar, generic bulk (row- and column-wise), the device's
//! generic kernel, and (where one exists) the hand-written kernel.

use bulk_oblivious::prelude::*;
use oblivious::layout::extract;
use oblivious::program::{arrange_inputs, bulk_execute, bulk_execute_cpu_reference};

/// Run all paths for a program and assert equality of outputs.
fn assert_all_paths_agree<W, P>(prog: P, inputs: &[Vec<W>])
where
    W: Word + std::fmt::Debug + PartialEq,
    P: ObliviousProgram<W> + Sync + Copy,
{
    let refs: Vec<&[W]> = inputs.iter().map(|v| v.as_slice()).collect();
    let p = refs.len();
    let baseline = bulk_execute_cpu_reference(&prog, &refs);
    for layout in Layout::all() {
        let bulk = bulk_execute(&prog, &refs, layout);
        assert_eq!(bulk, baseline, "generic bulk, {layout}");

        let mut buf = arrange_inputs(&prog, &refs, layout);
        let device = Device::titan_like();
        launch(&device, &GenericKernel::new(prog, layout), &mut buf, p);
        let got = extract(&buf, p, prog.memory_words(), layout, prog.output_range());
        assert_eq!(got, baseline, "device generic kernel, {layout}");
    }
}

#[test]
fn prefix_sums_all_paths() {
    let inputs: Vec<Vec<f32>> =
        (0..97).map(|j| (0..33).map(|i| ((i * 7 + j * 13) % 19) as f32 - 9.0).collect()).collect();
    assert_all_paths_agree(PrefixSums::new(33), &inputs);
}

#[test]
fn opt_all_paths_including_hand_written_kernel() {
    let n = 7usize;
    let weights: Vec<ChordWeights> = (0..41)
        .map(|s| ChordWeights::from_fn(n, |i, j| ((i * 11 + j * 29 + s * 43) % 100) as f64))
        .collect();
    let inputs: Vec<Vec<f64>> = weights.iter().map(|c| c.as_words()).collect();
    let prog = OptTriangulation::new(n);
    assert_all_paths_agree(prog, &inputs);

    // The hand-written kernel agrees too, and with the reference DP.
    let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
    let p = refs.len();
    for layout in Layout::all() {
        let mut buf = arrange_inputs(&prog, &refs, layout);
        launch(&Device::titan_like(), &OptKernel::new(n, layout), &mut buf, p);
        let nn = n * n;
        let outs = extract(&buf, p, 2 * nn, layout, nn..2 * nn);
        for (c, out) in weights.iter().zip(&outs) {
            let (want, _) = algorithms::opt::reference(c);
            assert_eq!(out[prog.answer_offset()], want, "{layout}");
        }
    }
}

#[test]
fn matmul_all_paths() {
    let n = 4usize;
    let inputs: Vec<Vec<f32>> = (0..13)
        .map(|s| (0..2 * n * n).map(|i| ((i * 5 + s * 3) % 7) as f32 - 3.0).collect())
        .collect();
    assert_all_paths_agree(MatMul::new(n), &inputs);
}

#[test]
fn bitonic_all_paths() {
    let inputs: Vec<Vec<f32>> = (0..29)
        .map(|s| (0..16).map(|i| (((i * 37 + s * 101) % 53) as f32) - 26.0).collect())
        .collect();
    assert_all_paths_agree(BitonicSort::new(4), &inputs);
}

#[test]
fn fft_all_paths() {
    // f32 FFT is exact across paths because every path performs the same
    // operations in the same order — bit-for-bit equality is required.
    let inputs: Vec<Vec<f32>> =
        (0..17).map(|s| (0..32).map(|i| ((i + s) % 9) as f32 * 0.25 - 1.0).collect()).collect();
    assert_all_paths_agree(Fft::new(4), &inputs);
}

#[test]
fn lcs_all_paths() {
    let inputs: Vec<Vec<f32>> =
        (0..11).map(|s| (0..12).map(|i| ((i * 3 + s) % 4) as f32).collect()).collect();
    assert_all_paths_agree(LcsLength::new(6, 6), &inputs);
}

#[test]
fn floyd_warshall_all_paths() {
    let n = 5usize;
    let inputs: Vec<Vec<f64>> = (0..9)
        .map(|s| {
            let edges: Vec<_> =
                (0..n).map(|i| (i, (i + 1 + s % 3) % n, 1.0 + ((i + s) % 5) as f64)).collect();
            algorithms::floyd_warshall::matrix_from_edges(n, &edges, true)
        })
        .collect();
    assert_all_paths_agree(FloydWarshall::new(n), &inputs);
}

#[test]
fn xtea_all_paths() {
    let inputs: Vec<Vec<u32>> = (0..23u32)
        .map(|s| (0..8).map(|i| s.wrapping_mul(2654435761).wrapping_add(i * 97)).collect())
        .collect();
    assert_all_paths_agree(Xtea::encrypt(2), &inputs);
}

#[test]
fn horner_all_paths() {
    let inputs: Vec<Vec<f64>> =
        (0..31).map(|s| (0..6).map(|i| ((i * 7 + s) % 5) as f64 - 2.0).collect()).collect();
    assert_all_paths_agree(Horner::new(4), &inputs);
}

#[test]
fn fir_all_paths() {
    // FirFilter is not Copy (owns taps); run the generic paths directly.
    let f = FirFilter::new(10, vec![0.5, 0.25, -0.25]);
    let inputs: Vec<Vec<f32>> =
        (0..19).map(|s| (0..10).map(|i| ((i + s) % 7) as f32).collect()).collect();
    let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
    let baseline = bulk_execute_cpu_reference(&f, &refs);
    for layout in Layout::all() {
        assert_eq!(bulk_execute(&f, &refs, layout), baseline, "{layout}");
    }
}
