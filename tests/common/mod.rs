//! Shared random-program generator for the differential fuzz batteries.
//!
//! A random instruction sequence over a small memory is, by construction,
//! a valid oblivious program: operands are opaque value handles, so no
//! address can depend on data.  `fuzz_random_programs.rs` drives it
//! through every backend; `compiled_determinism.rs` locks down the
//! schedule compiler and sharded replay on the same corpus.

use oblivious::{BinOp, CmpOp, ObliviousMachine, ObliviousProgram, UnOp};
use obs::Rng;

/// One step of a random program.  Value operands are indices into the
/// stack of previously produced values (taken modulo its length at run
/// time, so any index is valid).
#[derive(Debug, Clone)]
pub enum ROp {
    /// Read a memory word onto the stack.
    Read(usize),
    /// Write a stack value to memory.
    Write(usize, usize),
    /// Push a constant.
    Const(i32),
    /// Negate a stack value.
    Neg(usize),
    /// Apply one of the binary ops to two stack values.
    Bin(u8, usize, usize),
    /// Lane-wise select between two stack values.
    Select(u8, usize, usize, usize, usize),
}

/// A randomly generated oblivious program.
#[derive(Debug, Clone)]
pub struct RandomProgram {
    /// Instance memory size in words.
    pub msize: usize,
    /// The instruction sequence.
    pub ops: Vec<ROp>,
}

impl ObliviousProgram<f64> for RandomProgram {
    fn name(&self) -> String {
        format!("random({} ops over {} words)", self.ops.len(), self.msize)
    }
    fn memory_words(&self) -> usize {
        self.msize
    }
    fn input_range(&self) -> std::ops::Range<usize> {
        0..self.msize
    }
    fn output_range(&self) -> std::ops::Range<usize> {
        0..self.msize
    }
    fn run<M: ObliviousMachine<f64>>(&self, m: &mut M) {
        let mut stack: Vec<M::Value> = vec![m.constant(1.0)];
        let pick = |stack: &Vec<M::Value>, i: usize| stack[i % stack.len()];
        for op in &self.ops {
            match *op {
                ROp::Read(addr) => {
                    let v = m.read(addr % self.msize);
                    stack.push(v);
                }
                ROp::Write(addr, src) => {
                    let v = pick(&stack, src);
                    m.write(addr % self.msize, v);
                }
                ROp::Const(c) => {
                    let v = m.constant(f64::from(c));
                    stack.push(v);
                }
                ROp::Neg(a) => {
                    let av = pick(&stack, a);
                    let v = m.unop(UnOp::Neg, av);
                    stack.push(v);
                }
                ROp::Bin(which, a, b) => {
                    let ops = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Min, BinOp::Max];
                    let (av, bv) = (pick(&stack, a), pick(&stack, b));
                    let v = m.binop(ops[which as usize % ops.len()], av, bv);
                    stack.push(v);
                }
                ROp::Select(which, a, b, t, e) => {
                    let cmps = [CmpOp::Lt, CmpOp::Le, CmpOp::Eq];
                    let v = m.select(
                        cmps[which as usize % cmps.len()],
                        pick(&stack, a),
                        pick(&stack, b),
                        pick(&stack, t),
                        pick(&stack, e),
                    );
                    stack.push(v);
                }
            }
        }
    }
}

fn random_op(rng: &mut Rng) -> ROp {
    match rng.below(6) {
        0 => ROp::Read(rng.range_usize(0, 64)),
        1 => ROp::Write(rng.range_usize(0, 64), rng.range_usize(0, 32)),
        2 => ROp::Const(rng.range_u64(0, 16) as i32 - 8),
        3 => ROp::Neg(rng.range_usize(0, 32)),
        4 => ROp::Bin(rng.next_u32() as u8, rng.range_usize(0, 32), rng.range_usize(0, 32)),
        _ => ROp::Select(
            rng.next_u32() as u8,
            rng.range_usize(0, 32),
            rng.range_usize(0, 32),
            rng.range_usize(0, 32),
            rng.range_usize(0, 32),
        ),
    }
}

/// Draw one random program from the corpus `rng` points at.
pub fn random_program(rng: &mut Rng) -> RandomProgram {
    let msize = rng.range_usize(2, 24);
    let nops = rng.range_usize(1, 60);
    let ops = (0..nops).map(|_| random_op(rng)).collect();
    RandomProgram { msize, ops }
}

/// Bitwise view of an output (NaN-safe equality).
pub fn bits(v: &[Vec<f64>]) -> Vec<Vec<u64>> {
    v.iter().map(|row| row.iter().map(|x| x.to_bits()).collect()).collect()
}
