//! Determinism of compiled-schedule replay, property-tested on the random
//! oblivious-program corpus shared with `fuzz_random_programs.rs`.
//!
//! Two properties per case:
//!
//! 1. **Shard-count independence.** `run_sharded` must produce bitwise
//!    identical outputs for every shard count — including counts that do
//!    not divide `p` (ragged last shard) and counts exceeding `p`
//!    (clamped) — and those outputs must equal the interpreter's.  The
//!    merge is deterministic by construction (shards are joined in spawn
//!    order), so any divergence is a real replay bug.
//!
//! 2. **JSON round-trip.** A `CompiledSchedule` serialized through
//!    `obs::Json` and parsed back must be step-for-step identical,
//!    including register ids, metrics counters and recomputed fusion.
//!    Comparison is on the serialized form, so NaN-valued constants
//!    (possible under random arithmetic) still compare bit-exactly.

use common::{bits, random_program};
use oblivious::program::bulk_execute;
use oblivious::{run_sharded, CompiledSchedule, Layout, ObliviousProgram};
use obs::Rng;

mod common;

#[test]
fn sharded_replay_is_shard_count_independent() {
    let mut rng = Rng::new(0x5EED_5A4D);
    for case in 0..48 {
        let prog = random_program(&mut rng);
        let p = 9usize;
        let inputs: Vec<Vec<f64>> = (0..p)
            .map(|k| {
                (0..prog.msize)
                    .map(|i| f64::from(rng.range_u64(0, 40) as i32 - 20) + (k + i) as f64 * 0.25)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();

        let schedule = CompiledSchedule::compile(&prog);
        assert_eq!(schedule.metrics().memory_rounds() as usize, {
            use oblivious::program::time_steps;
            time_steps::<f64, _>(&prog)
        });

        for layout in Layout::all() {
            let interp = bulk_execute(&prog, &refs, layout);
            // 1 = inline path, 2/3 = even-ish splits, 7 = ragged split,
            // 9 = one instance per shard, 13 = clamped to p.
            for shards in [1usize, 2, 3, 7, 9, 13] {
                let sharded = run_sharded(&schedule, &refs, layout, shards);
                assert_eq!(
                    bits(&sharded),
                    bits(&interp),
                    "case {case}: {layout} shards={shards} diverges from the interpreter"
                );
            }
        }
    }
}

#[test]
fn compiled_schedules_round_trip_through_json_unchanged() {
    let mut rng = Rng::new(0x0DD_1505);
    for case in 0..48 {
        let prog = random_program(&mut rng);
        let schedule = CompiledSchedule::compile(&prog);
        let j = schedule.to_json();
        let back = CompiledSchedule::<f64>::from_json(&j)
            .unwrap_or_else(|e| panic!("case {case}: round trip failed: {e}"));
        assert_eq!(back.to_json(), j, "case {case}: serialized forms differ");
        assert_eq!(back.name(), prog.name(), "case {case}");
        assert_eq!(back.memory_words(), prog.memory_words(), "case {case}");
        assert_eq!(back.metrics(), schedule.metrics(), "case {case}");
    }
}
