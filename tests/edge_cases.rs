//! Integration: boundary configurations that exercise the corners of the
//! layout arithmetic and the executors.

use bulk_oblivious::prelude::*;
use oblivious::program::{bulk_execute, bulk_model_time, run_on_input};

#[test]
fn single_instance_bulk_equals_sequential() {
    let prog = OptTriangulation::new(6);
    let c = ChordWeights::from_fn(6, |i, j| ((i * 5 + j) % 17) as f64);
    let input = c.as_words::<f64>();
    let seq = run_on_input(&prog, &input);
    for layout in Layout::all() {
        let bulk = bulk_execute(&prog, &[&input], layout);
        assert_eq!(bulk[0], seq, "{layout}");
    }
}

#[test]
fn one_word_instances_make_the_layouts_coincide() {
    // With msize = 1, row-wise (lane·1 + 0) and column-wise (0·p + lane)
    // are the *same* physical arrangement — the model must agree.
    struct OneWord;
    impl ObliviousProgram<f32> for OneWord {
        fn name(&self) -> String {
            "one-word".into()
        }
        fn memory_words(&self) -> usize {
            1
        }
        fn input_range(&self) -> std::ops::Range<usize> {
            0..1
        }
        fn output_range(&self) -> std::ops::Range<usize> {
            0..1
        }
        fn run<M: ObliviousMachine<f32>>(&self, m: &mut M) {
            let x = m.read(0);
            let y = m.add(x, x);
            m.write(0, y);
            m.free(x);
            m.free(y);
        }
    }
    let cfg = MachineConfig::new(8, 3);
    for p in [1usize, 7, 8, 100] {
        let row = bulk_model_time::<f32, _>(&OneWord, cfg, Model::Umm, Layout::RowWise, p);
        let col = bulk_model_time::<f32, _>(&OneWord, cfg, Model::Umm, Layout::ColumnWise, p);
        assert_eq!(row, col, "p={p}: identical physical layouts must cost alike");
    }
}

#[test]
fn width_one_machine_is_a_plain_ram() {
    // w = 1: every access is its own address group AND its own bank; both
    // layouts and both machines collapse to the same serial cost.
    let cfg = MachineConfig::new(1, 2);
    let prog = PrefixSums::new(8);
    let p = 5usize;
    let mut times = Vec::new();
    for model in [Model::Umm, Model::Dmm] {
        for layout in Layout::all() {
            times.push(bulk_model_time::<f32, _>(&prog, cfg, model, layout, p));
        }
    }
    assert!(times.windows(2).all(|w| w[0] == w[1]), "{times:?}");
    // t rounds of p serial accesses each: (p + l - 1) * t.
    assert_eq!(times[0], (5 + 1) * 16);
}

#[test]
fn latency_one_machine_has_no_pipeline_fill() {
    let cfg = MachineConfig::new(4, 1);
    let prog = PrefixSums::new(8);
    let col = bulk_model_time::<f32, _>(&prog, cfg, Model::Umm, Layout::ColumnWise, 16);
    // Each round: p/w stages + 0 fill.
    assert_eq!(col, 16 / 4 * 16);
}

#[test]
fn p_less_than_warp_size_still_works_everywhere() {
    let prog = BitonicSort::new(3);
    let inputs: Vec<Vec<f32>> =
        (0..3).map(|s| (0..8).map(|i| ((i * 7 + s * 3) % 11) as f32).collect()).collect();
    let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
    let seq = oblivious::program::bulk_execute_cpu_reference(&prog, &refs);
    for layout in Layout::all() {
        assert_eq!(bulk_execute(&prog, &refs, layout), seq);
    }
    // Model: a partial warp costs like a full one latency-wise.
    let cfg = MachineConfig::new(32, 10);
    let col = bulk_model_time::<f32, _>(&prog, cfg, Model::Umm, Layout::ColumnWise, 3);
    let t = oblivious::program::time_steps::<f32, _>(&prog) as u64;
    assert_eq!(col, t * (1 + 10 - 1), "3 lanes fit one warp, one group per round");
}

#[test]
fn giant_latency_dominates_everything() {
    // l >> p: both layouts cost ~l·t and the gap vanishes — the flat
    // left-hand region of the paper's Figure 11.
    let cfg = MachineConfig::new(32, 1 << 20);
    let prog = PrefixSums::new(4);
    let p = 64usize;
    let row = bulk_model_time::<f32, _>(&prog, cfg, Model::Umm, Layout::RowWise, p);
    let col = bulk_model_time::<f32, _>(&prog, cfg, Model::Umm, Layout::ColumnWise, p);
    let gap = row as f64 / col as f64;
    assert!(gap < 1.001, "latency hides the layout entirely: {gap}");
}

#[test]
fn device_launch_with_exactly_one_lane() {
    let mut buf = vec![1.0f32, 2.0, 3.0, 4.0];
    launch(&Device::titan_like(), &PrefixSumsKernel::new(4, Layout::ColumnWise), &mut buf, 1);
    assert_eq!(buf, vec![1.0, 3.0, 6.0, 10.0]);
}
