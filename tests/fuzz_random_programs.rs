//! Differential fuzzing: random oblivious programs through every backend.
//!
//! A random instruction sequence over a small memory is, by construction, a
//! valid oblivious program — so every backend must agree on it *bitwise*:
//! scalar execution per instance, lockstep bulk execution in both layouts,
//! the device's generic kernel, and tape replay (before and after dead-code
//! elimination).  The cost machine must charge exactly one round per memory
//! instruction.  This is the strongest guard the engine has against subtle
//! lane-indexing or register-recycling bugs.

use bulk_oblivious::prelude::*;
use oblivious::program::{bulk_execute, bulk_model_time, run_on_input, time_steps};
use oblivious::{BinOp, CmpOp, Tape, UnOp};
use proptest::prelude::*;

/// One step of a random program.  Value operands are indices into the
/// stack of previously produced values (taken modulo its length at run
/// time, so any index is valid).
#[derive(Debug, Clone)]
enum ROp {
    Read(usize),
    Write(usize, usize),
    Const(i32),
    Neg(usize),
    Bin(u8, usize, usize),
    Select(u8, usize, usize, usize, usize),
}

#[derive(Debug, Clone)]
struct RandomProgram {
    msize: usize,
    ops: Vec<ROp>,
}

impl ObliviousProgram<f64> for RandomProgram {
    fn name(&self) -> String {
        format!("random({} ops over {} words)", self.ops.len(), self.msize)
    }
    fn memory_words(&self) -> usize {
        self.msize
    }
    fn input_range(&self) -> std::ops::Range<usize> {
        0..self.msize
    }
    fn output_range(&self) -> std::ops::Range<usize> {
        0..self.msize
    }
    fn run<M: ObliviousMachine<f64>>(&self, m: &mut M) {
        let mut stack: Vec<M::Value> = vec![m.constant(1.0)];
        let pick = |stack: &Vec<M::Value>, i: usize| stack[i % stack.len()];
        for op in &self.ops {
            match *op {
                ROp::Read(addr) => {
                    let v = m.read(addr % self.msize);
                    stack.push(v);
                }
                ROp::Write(addr, src) => {
                    let v = pick(&stack, src);
                    m.write(addr % self.msize, v);
                }
                ROp::Const(c) => {
                    let v = m.constant(f64::from(c));
                    stack.push(v);
                }
                ROp::Neg(a) => {
                    let av = pick(&stack, a);
                    let v = m.unop(UnOp::Neg, av);
                    stack.push(v);
                }
                ROp::Bin(which, a, b) => {
                    let ops = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Min, BinOp::Max];
                    let (av, bv) = (pick(&stack, a), pick(&stack, b));
                    let v = m.binop(ops[which as usize % ops.len()], av, bv);
                    stack.push(v);
                }
                ROp::Select(which, a, b, t, e) => {
                    let cmps = [CmpOp::Lt, CmpOp::Le, CmpOp::Eq];
                    let v = m.select(
                        cmps[which as usize % cmps.len()],
                        pick(&stack, a),
                        pick(&stack, b),
                        pick(&stack, t),
                        pick(&stack, e),
                    );
                    stack.push(v);
                }
            }
        }
    }
}

fn rop_strategy() -> impl Strategy<Value = ROp> {
    prop_oneof![
        (0usize..64).prop_map(ROp::Read),
        (0usize..64, 0usize..32).prop_map(|(a, s)| ROp::Write(a, s)),
        (-8i32..8).prop_map(ROp::Const),
        (0usize..32).prop_map(ROp::Neg),
        (any::<u8>(), 0usize..32, 0usize..32).prop_map(|(w, a, b)| ROp::Bin(w, a, b)),
        (any::<u8>(), 0usize..32, 0usize..32, 0usize..32, 0usize..32)
            .prop_map(|(w, a, b, t, e)| ROp::Select(w, a, b, t, e)),
    ]
}

fn program_strategy() -> impl Strategy<Value = RandomProgram> {
    (2usize..24, proptest::collection::vec(rop_strategy(), 1..60))
        .prop_map(|(msize, ops)| RandomProgram { msize, ops })
}

/// Bitwise view of an output (NaN-safe equality).
fn bits(v: &[Vec<f64>]) -> Vec<Vec<u64>> {
    v.iter().map(|row| row.iter().map(|x| x.to_bits()).collect()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn all_backends_agree_bitwise(prog in program_strategy(),
                                  seeds in proptest::collection::vec(-50i32..50, 5)) {
        // Per-instance inputs derived from the seeds.
        let p = seeds.len();
        let inputs: Vec<Vec<f64>> = seeds
            .iter()
            .map(|&s| (0..prog.msize).map(|i| f64::from(s) + i as f64 * 0.5).collect())
            .collect();
        let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();

        // Oracle: scalar execution per instance.
        let scalar: Vec<Vec<f64>> =
            inputs.iter().map(|inp| run_on_input(&prog, inp)).collect();

        // Generic bulk, both layouts.
        for layout in Layout::all() {
            let bulk = bulk_execute(&prog, &refs, layout);
            prop_assert_eq!(bits(&bulk), bits(&scalar), "bulk {}", layout);
        }

        // Device generic kernel (block-partitioned engine).
        {
            use oblivious::layout::extract;
            use oblivious::program::arrange_inputs;
            let mut buf = arrange_inputs(&prog, &refs, Layout::ColumnWise);
            launch(
                &Device::titan_like(),
                &GenericKernel::new(prog.clone(), Layout::ColumnWise),
                &mut buf,
                p,
            );
            let dev = extract(&buf, p, prog.msize, Layout::ColumnWise, 0..prog.msize);
            prop_assert_eq!(bits(&dev), bits(&scalar), "device kernel");
        }

        // Tape replay, with and without DCE.
        let mut tape = Tape::record(&prog);
        let taped: Vec<Vec<f64>> = inputs.iter().map(|inp| run_on_input(&tape, inp)).collect();
        prop_assert_eq!(bits(&taped), bits(&scalar), "tape replay");
        let _removed = tape.eliminate_dead_code();
        let dced: Vec<Vec<f64>> = inputs.iter().map(|inp| run_on_input(&tape, inp)).collect();
        prop_assert_eq!(bits(&dced), bits(&scalar), "tape after DCE");

        // Cost machine: exactly one round per memory instruction.
        let t = time_steps::<f64, _>(&prog) as u64;
        let cfg = MachineConfig::new(4, 7);
        let col = bulk_model_time::<f64, _>(&prog, cfg, Model::Umm, Layout::ColumnWise, 8);
        // Each round costs at least l and at most 2*ceil(p/w)+l-1... just
        // bound it: t rounds, each in [l, p + l - 1].
        prop_assert!(col >= t * 7);
        prop_assert!(col <= t * (8 + 7 - 1));
    }
}
