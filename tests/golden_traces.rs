//! Golden-trace regression tests.
//!
//! Oblivious programs have input-independent access traces, so the full
//! `RoundTrace` of a canonical small bulk run — and the `AccessStats` the
//! UMM/DMM simulators accumulate over it — is a pure function of
//! (program, layout, p, machine).  Each case serializes that function to
//! JSON and diffs it against a checked-in golden under `tests/goldens/`.
//! Any change to tracing, layout arithmetic, or simulator accounting shows
//! up as a readable JSON diff instead of a silent behaviour shift.
//!
//! To regenerate the goldens after an *intentional* change:
//!
//! ```text
//! BLESS_GOLDENS=1 cargo test --test golden_traces
//! ```
//!
//! then inspect the diff of `tests/goldens/` before committing.

use algorithms::{OptTriangulation, PrefixSums};
use oblivious::program::{bulk_round_trace, bulk_traced_dmm, bulk_traced_umm};
use oblivious::{Layout, ObliviousProgram, Word};
use obs::Json;
use umm_core::{simulate_async, DmmSimulator, MachineConfig, UmmSimulator};

/// Canonical machine for the goldens: w = 4, l = 2 — small enough that the
/// address-group and conflict structure of each round is legible by eye.
fn golden_config() -> MachineConfig {
    MachineConfig::new(4, 2)
}

/// Serialize one canonical case: the materialised round trace plus the
/// UMM and DMM accounting over it.
fn case_json<W: Word, P: ObliviousProgram<W>>(program: &P, layout: Layout, p: usize) -> Json {
    let cfg = golden_config();
    let trace = bulk_round_trace(program, layout, p);

    let mut umm = UmmSimulator::new(cfg, p);
    umm.run(&trace);
    let mut dmm = DmmSimulator::new(cfg, p);
    dmm.run(&trace);

    let mut root = Json::obj();
    root.set("program", program.name());
    root.set("layout", layout.to_string());
    root.set("p", p);
    root.set("machine", cfg.to_json());
    root.set("round_trace", trace.to_json());
    let mut u = Json::obj();
    u.set("elapsed", umm.elapsed());
    u.set("stats", umm.stats().to_json());
    root.set("umm", u);
    let mut d = Json::obj();
    d.set("elapsed", dmm.elapsed());
    d.set("stats", dmm.stats().to_json());
    root.set("dmm", d);
    root.set("async_elapsed", simulate_async(&cfg, &trace));
    root
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens").join(name)
}

fn check_golden(name: &str, live: &Json) {
    let path = golden_path(name);
    let rendered = format!("{}\n", live.to_pretty());
    if std::env::var_os("BLESS_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {} ({e}); run with BLESS_GOLDENS=1 to create it", path.display())
    });
    assert_eq!(
        rendered,
        want,
        "live trace diverges from {}; if the change is intentional, \
         regenerate with BLESS_GOLDENS=1 and review the diff",
        path.display()
    );
}

/// Goldens must themselves parse as JSON and round-trip through the
/// serializer — guards the golden files against hand-edit corruption.
#[test]
fn goldens_are_valid_json() {
    for name in [
        "prefix_sums_n8_row_wise.json",
        "prefix_sums_n8_column_wise.json",
        "opt_n4_row_wise.json",
        "opt_n4_column_wise.json",
        "chrome_trace_prefix_sums_n8.json",
    ] {
        let path = golden_path(name);
        if std::env::var_os("BLESS_GOLDENS").is_some() && !path.exists() {
            continue; // created by the case tests in the same run
        }
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden {} ({e})", path.display()));
        let parsed = Json::parse(&text)
            .unwrap_or_else(|e| panic!("golden {} is not valid JSON: {e}", path.display()));
        assert_eq!(format!("{}\n", parsed.to_pretty()), text, "{name} not canonical");
    }
}

#[test]
fn prefix_sums_n8_row_wise() {
    check_golden(
        "prefix_sums_n8_row_wise.json",
        &case_json::<f32, _>(&PrefixSums::new(8), Layout::RowWise, 4),
    );
}

#[test]
fn prefix_sums_n8_column_wise() {
    check_golden(
        "prefix_sums_n8_column_wise.json",
        &case_json::<f32, _>(&PrefixSums::new(8), Layout::ColumnWise, 4),
    );
}

/// The Chrome-trace export of the traced UMM/DMM model simulations is
/// itself a pure function of (program, layout, p, machine): model ticks are
/// deterministic and export as integer microseconds.  Golden the whole
/// document so any drift in event placement, ordering, metadata, or JSON
/// shape is a reviewable diff.
#[test]
fn chrome_trace_prefix_sums_n8() {
    if !obs::PROFILING_COMPILED {
        return; // tracing compiled out; nothing to compare
    }
    let cfg = golden_config();
    let pr = PrefixSums::new(8);
    let umm = bulk_traced_umm::<f32, _>(&pr, cfg, Layout::ColumnWise, 8)
        .take_tracer()
        .expect("tracing enabled");
    let dmm = bulk_traced_dmm::<f32, _>(&pr, cfg, Layout::ColumnWise, 8)
        .take_tracer()
        .expect("tracing enabled");
    let chrome = obs::trace::chrome_trace(&[("model.umm", &umm), ("model.dmm", &dmm)]);
    check_golden("chrome_trace_prefix_sums_n8.json", &chrome);
}

#[test]
fn opt_n4_row_wise() {
    check_golden(
        "opt_n4_row_wise.json",
        &case_json::<f32, _>(&OptTriangulation::new(4), Layout::RowWise, 4),
    );
}

#[test]
fn opt_n4_column_wise() {
    check_golden(
        "opt_n4_column_wise.json",
        &case_json::<f32, _>(&OptTriangulation::new(4), Layout::ColumnWise, 4),
    );
}
