//! Integration: the virtual device under stress.
//!
//! Parallel block scheduling must be deterministic in its *results*
//! (instances are independent), ragged configurations must be handled, and
//! the measured layouts must produce identical numerics.

use bulk_oblivious::prelude::*;
use oblivious::layout::{arrange, extract};
use oblivious::program::arrange_inputs;

#[test]
fn parallel_and_single_worker_results_are_identical() {
    let (p, n) = (1337usize, 65usize);
    let inputs: Vec<Vec<f32>> = (0..p)
        .map(|j| (0..n).map(|i| (((j * 31 + i * 7) % 101) as f32) / 3.0 - 16.0).collect())
        .collect();
    let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
    for layout in Layout::all() {
        let kernel = PrefixSumsKernel::new(n, layout);
        let mut buf1 = arrange(&refs, n, layout);
        launch(&Device::single_worker(), &kernel, &mut buf1, p);
        let mut dev = Device::titan_like();
        dev.worker_threads = 4; // force real contention even on 1 core
        let mut buf2 = arrange(&refs, n, layout);
        launch(&dev, &kernel, &mut buf2, p);
        assert_eq!(buf1, buf2, "{layout}: scheduling must not change results");
    }
}

#[test]
fn many_block_sizes_cover_all_instances() {
    let (p, n) = (300usize, 8usize);
    let inputs: Vec<Vec<f32>> = (0..p).map(|j| vec![j as f32; n]).collect();
    let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
    for block in [32usize, 64, 128, 256] {
        let device = Device::single_worker().with_block_size(block);
        let mut buf = arrange(&refs, n, Layout::ColumnWise);
        launch(&device, &PrefixSumsKernel::new(n, Layout::ColumnWise), &mut buf, p);
        let out = extract(&buf, p, n, Layout::ColumnWise, 0..n);
        for (j, o) in out.iter().enumerate() {
            assert_eq!(o[n - 1], (j * n) as f32, "block={block} lane={j}");
        }
    }
}

#[test]
fn p_smaller_than_one_block() {
    let (p, n) = (3usize, 4usize);
    let inputs: Vec<Vec<f32>> = (0..p).map(|j| vec![1.0 + j as f32; n]).collect();
    let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
    let mut buf = arrange(&refs, n, Layout::ColumnWise);
    launch(&Device::titan_like(), &PrefixSumsKernel::new(n, Layout::ColumnWise), &mut buf, p);
    let out = extract(&buf, p, n, Layout::ColumnWise, 0..n);
    assert_eq!(out[2], vec![3.0, 6.0, 9.0, 12.0]);
}

#[test]
fn generic_kernel_parallel_equals_reference_on_dp_workload() {
    // The generic engine's block decomposition must preserve DP semantics.
    let n = 6usize;
    let p = 500usize;
    let weights: Vec<ChordWeights> = (0..p)
        .map(|s| ChordWeights::from_fn(n, |i, j| ((i * 3 + j * 5 + s) % 40) as f64))
        .collect();
    let inputs: Vec<Vec<f64>> = weights.iter().map(|c| c.as_words()).collect();
    let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
    let prog = OptTriangulation::new(n);
    let mut dev = Device::titan_like();
    dev.worker_threads = 3;
    let mut buf = arrange_inputs(&prog, &refs, Layout::ColumnWise);
    launch(&dev, &GenericKernel::new(prog, Layout::ColumnWise), &mut buf, p);
    let nn = n * n;
    let outs = extract(&buf, p, 2 * nn, Layout::ColumnWise, nn..2 * nn);
    for (c, out) in weights.iter().zip(&outs) {
        let (want, _) = algorithms::opt::reference(c);
        assert_eq!(out[prog.answer_offset()], want);
    }
}

#[test]
fn row_and_column_kernels_agree_bitwise_on_floats() {
    // Both layouts perform identical per-lane arithmetic, so even float
    // results must agree bit-for-bit — a strong guard against accidental
    // reassociation in one of the kernels.
    let (p, n) = (257usize, 33usize);
    let inputs: Vec<Vec<f32>> =
        (0..p).map(|j| (0..n).map(|i| ((j * 131 + i * 17) % 997) as f32 * 0.1).collect()).collect();
    let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
    let mut row_buf = arrange(&refs, n, Layout::RowWise);
    launch(&Device::titan_like(), &PrefixSumsKernel::new(n, Layout::RowWise), &mut row_buf, p);
    let row_out = extract(&row_buf, p, n, Layout::RowWise, 0..n);
    let mut col_buf = arrange(&refs, n, Layout::ColumnWise);
    launch(&Device::titan_like(), &PrefixSumsKernel::new(n, Layout::ColumnWise), &mut col_buf, p);
    let col_out = extract(&col_buf, p, n, Layout::ColumnWise, 0..n);
    assert_eq!(row_out, col_out);
}
