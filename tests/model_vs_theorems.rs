//! Integration: the paper's theory holds on the executable models.
//!
//! Every theorem is checked three ways where possible: the closed form
//! (`oblivious::theorems`), the cost machine's closed-form pricing, and the
//! materialised round-synchronous UMM simulator; the event-driven simulator
//! must never be slower-bounded incorrectly (async ≤ sync) and never beat
//! the Theorem-3 lower bound.

use bulk_oblivious::prelude::*;
use oblivious::program::{bulk_model_time, bulk_round_trace, time_steps};
use oblivious::theorems;
use umm_core::simulate_async;

const PROGRAM_SIZES: &[usize] = &[33, 64, 128];

fn machines() -> Vec<MachineConfig> {
    vec![
        MachineConfig::new(4, 5),    // the paper's Figure 4 machine
        MachineConfig::new(32, 100), // GPU-like
        MachineConfig::new(1, 1),    // degenerate RAM
        MachineConfig::new(8, 1),    // zero extra latency
    ]
}

#[test]
fn lemma1_exact_for_aligned_parameters() {
    for cfg in machines() {
        let w = cfg.width as u64;
        let l = cfg.latency as u64;
        for &n in PROGRAM_SIZES {
            // Alignment assumptions of the lemma: p multiple of w, n >= w.
            if n < cfg.width {
                continue;
            }
            let p = (4 * cfg.width) as u64;
            let prog = PrefixSums::new(n);
            let t = theorems::prefix_sums_steps(n as u64);
            let row =
                bulk_model_time::<f32, _>(&prog, cfg, Model::Umm, Layout::RowWise, p as usize);
            let col =
                bulk_model_time::<f32, _>(&prog, cfg, Model::Umm, Layout::ColumnWise, p as usize);
            assert_eq!(row, theorems::row_wise_time(t, p, l), "row n={n} cfg={cfg:?}");
            assert_eq!(col, theorems::column_wise_time(t, p, w, l), "col n={n} cfg={cfg:?}");
        }
    }
}

#[test]
fn theorem2_holds_for_every_library_program() {
    let cfg = MachineConfig::new(32, 64);
    let p = 128usize;
    // (name, msize, t, row, col) per program, over heterogeneous types.
    let mut rows: Vec<(String, usize, u64, u64, u64)> = Vec::new();
    macro_rules! push {
        ($prog:expr, $w:ty) => {{
            let prog = $prog;
            let t = time_steps::<$w, _>(&prog) as u64;
            let row = bulk_model_time::<$w, _>(&prog, cfg, Model::Umm, Layout::RowWise, p);
            let col = bulk_model_time::<$w, _>(&prog, cfg, Model::Umm, Layout::ColumnWise, p);
            rows.push((
                ObliviousProgram::<$w>::name(&prog),
                ObliviousProgram::<$w>::memory_words(&prog),
                t,
                row,
                col,
            ));
        }};
    }
    push!(PrefixSums::new(64), f32);
    push!(OptTriangulation::new(10), f32);
    push!(MatMul::new(6), f32);
    push!(BitonicSort::new(5), f32);
    push!(Fft::new(5), f32);
    push!(LcsLength::new(8, 8), f32);
    push!(FloydWarshall::new(6), f64);
    push!(Xtea::encrypt(4), u32);
    push!(Horner::new(12), f64);

    for (name, msize, t, row, col) in rows {
        let (w, l) = (cfg.width as u64, cfg.latency as u64);
        // Theorem 2 upper bounds.  The row-wise formula is exact only
        // under the theorem's assumption that an instance spans at least
        // one address group (msize >= w) — a smaller instance (e.g. XTEA's
        // 12 words) lets neighbouring lanes share groups, which can only
        // help.  Column-wise is exact under alignment and within one extra
        // stage per warp round otherwise.
        if msize >= cfg.width {
            assert_eq!(row, theorems::row_wise_time(t, p as u64, l), "{name}: row-wise exact");
        } else {
            assert!(
                row <= theorems::row_wise_time(t, p as u64, l),
                "{name}: small instances can only coalesce better"
            );
        }
        assert!(
            col <= 2 * theorems::column_wise_time(t, p as u64, w, l),
            "{name}: column-wise within the unalignment factor"
        );
        assert!(
            col >= theorems::column_wise_time(t, p as u64, w, l),
            "{name}: column-wise can't beat the aligned ideal"
        );
        // Theorem 3 lower bound.
        let lb = theorems::lower_bound(t, p as u64, w, l);
        assert!(col >= lb, "{name}: col >= lower bound");
        assert!(row >= lb, "{name}: row >= lower bound");
        // Column-wise is near-optimal; row-wise is far from it.
        assert!(
            theorems::optimality_ratio(col, t, p as u64, w, l) <= 4.0,
            "{name}: column-wise near-optimal"
        );
        assert!(col < row, "{name}: the paper's headline inequality");
    }
}

#[test]
fn async_simulator_is_bounded_by_sync_and_lower_bound() {
    let cfg = MachineConfig::new(8, 16);
    let p = 32usize;
    let prog = PrefixSums::new(16);
    let t = time_steps::<f32, _>(&prog) as u64;
    for layout in Layout::all() {
        let trace = bulk_round_trace::<f32, _>(&prog, layout, p);
        let sync = {
            let mut sim = UmmSimulator::new(cfg, p);
            sim.run(&trace)
        };
        let async_t = simulate_async(&cfg, &trace);
        assert!(async_t <= sync, "{layout}: async can only pipeline better");
        let lb = theorems::lower_bound(t, p as u64, cfg.width as u64, cfg.latency as u64);
        // The async simulator relaxes round synchronisation but keeps the
        // bandwidth constraint, so the bandwidth half of the bound holds.
        let bandwidth_lb = (p as u64 * t).div_ceil(cfg.width as u64);
        assert!(async_t >= bandwidth_lb, "{layout}: async >= bandwidth bound");
        assert!(sync >= lb, "{layout}: sync >= full lower bound");
    }
}

#[test]
fn corollary5_scaling_in_n() {
    // Corollary 5: bulk OPT is O(pn³/w + ln³).  Check the n³ scaling of
    // the exact model time between successive n.
    let cfg = MachineConfig::new(32, 16);
    let p = 256usize;
    let t8 = bulk_model_time::<f32, _>(
        &OptTriangulation::new(8),
        cfg,
        Model::Umm,
        Layout::ColumnWise,
        p,
    );
    let t16 = bulk_model_time::<f32, _>(
        &OptTriangulation::new(16),
        cfg,
        Model::Umm,
        Layout::ColumnWise,
        p,
    );
    let t32 = bulk_model_time::<f32, _>(
        &OptTriangulation::new(32),
        cfg,
        Model::Umm,
        Layout::ColumnWise,
        p,
    );
    let r1 = t16 as f64 / t8 as f64;
    let r2 = t32 as f64 / t16 as f64;
    assert!((6.0..10.5).contains(&r1), "doubling n scales ~8x, got {r1}");
    assert!((6.0..10.5).contains(&r2), "doubling n scales ~8x, got {r2}");
}

#[test]
fn dmm_and_umm_price_the_padding_trick_oppositely() {
    // The duality that motivates having both machine models: padding the
    // row-wise instance from 64 to 65 words removes all DMM bank conflicts
    // but leaves the UMM cost essentially unchanged.
    let cfg = MachineConfig::new(32, 8);
    let p = 256usize;
    let aligned = PrefixSums::new(64);
    let padded = PrefixSums::new(65);
    let dmm_aligned =
        bulk_model_time::<f32, _>(&aligned, cfg, Model::Dmm, Layout::RowWise, p) as f64 / 64.0;
    let dmm_padded =
        bulk_model_time::<f32, _>(&padded, cfg, Model::Dmm, Layout::RowWise, p) as f64 / 65.0;
    assert!(
        dmm_aligned / dmm_padded > 4.0,
        "padding must relieve DMM bank conflicts: {dmm_aligned:.0} vs {dmm_padded:.0} per element"
    );
    let umm_aligned =
        bulk_model_time::<f32, _>(&aligned, cfg, Model::Umm, Layout::RowWise, p) as f64 / 64.0;
    let umm_padded =
        bulk_model_time::<f32, _>(&padded, cfg, Model::Umm, Layout::RowWise, p) as f64 / 65.0;
    assert!(
        (umm_padded / umm_aligned - 1.0).abs() < 0.05,
        "padding must not change UMM row-wise cost materially"
    );
}
