//! Integration: obliviousness, demonstrated rather than assumed.
//!
//! A `TracingScalar` machine executes programs on *real data* while
//! recording addresses, so the checker can compare traces across genuinely
//! different inputs — a stronger demonstration than `trace_of` (which never
//! sees data at all).  The non-oblivious foils must be rejected by the same
//! checker.

use bulk_oblivious::prelude::*;
use oblivious::{BinOp, CmpOp, UnOp};
use umm_core::ThreadTrace;

/// Scalar execution that also records the address trace.
struct TracingScalar<'a, W> {
    mem: &'a mut [W],
    trace: ThreadTrace,
}

impl<'a, W: Word> TracingScalar<'a, W> {
    fn new(mem: &'a mut [W]) -> Self {
        Self { mem, trace: ThreadTrace::new() }
    }
}

impl<'a, W: Word> ObliviousMachine<W> for TracingScalar<'a, W> {
    type Value = W;
    fn read(&mut self, addr: usize) -> W {
        self.trace.read(addr);
        self.mem[addr]
    }
    fn write(&mut self, addr: usize, v: W) {
        self.trace.write(addr);
        self.mem[addr] = v;
    }
    fn constant(&mut self, c: W) -> W {
        c
    }
    fn unop(&mut self, op: UnOp, a: W) -> W {
        W::apply_un(op, a)
    }
    fn binop(&mut self, op: BinOp, a: W, b: W) -> W {
        W::apply_bin(op, a, b)
    }
    fn select(&mut self, cmp: CmpOp, a: W, b: W, t: W, e: W) -> W {
        if W::compare(cmp, a, b) {
            t
        } else {
            e
        }
    }
}

/// Trace a program's execution on a concrete input.
fn traced_run<W: Word, P: ObliviousProgram<W>>(prog: &P, input: &[W]) -> ThreadTrace {
    let mut mem = vec![W::ZERO; prog.memory_words()];
    mem[prog.input_range()].copy_from_slice(input);
    let mut m = TracingScalar::new(&mut mem);
    prog.run(&mut m);
    m.trace
}

#[test]
fn library_programs_trace_identically_on_real_data() {
    // Several adversarially different inputs per program.
    let f32_inputs = |len: usize| -> Vec<Vec<f32>> {
        vec![
            vec![0.0; len],
            (0..len).map(|i| i as f32).collect(),
            (0..len).rev().map(|i| -(i as f32)).collect(),
            (0..len).map(|i| if i % 2 == 0 { 1e30 } else { -1e30 }).collect(),
        ]
    };

    let ps = PrefixSums::new(24);
    check_oblivious(|inp: &Vec<f32>| traced_run(&ps, inp), &f32_inputs(24)).expect("prefix-sums");

    let bs = BitonicSort::new(4);
    check_oblivious(|inp: &Vec<f32>| traced_run(&bs, inp), &f32_inputs(16)).expect("bitonic");

    let fft = Fft::new(4);
    check_oblivious(|inp: &Vec<f32>| traced_run(&fft, inp), &f32_inputs(32)).expect("fft");

    let opt = OptTriangulation::with_argmin(7);
    let polys: Vec<Vec<f32>> = (0..4)
        .map(|s| {
            ChordWeights::from_fn(7, |i, j| ((i * 13 + j * 7 + s * 31) % 50) as f64)
                .as_words::<f32>()
        })
        .collect();
    check_oblivious(|inp: &Vec<f32>| traced_run(&opt, inp), &polys).expect("opt");

    let lcs = LcsLength::new(5, 7);
    check_oblivious(|inp: &Vec<f32>| traced_run(&lcs, inp), &f32_inputs(12)).expect("lcs");

    let xtea = Xtea::encrypt(3);
    let keys: Vec<Vec<u32>> = (0..4u32)
        .map(|s| (0..10).map(|i| s.wrapping_mul(0x9E3779B9).wrapping_add(i)).collect())
        .collect();
    check_oblivious(|inp: &Vec<u32>| traced_run(&xtea, inp), &keys).expect("xtea");
}

#[test]
fn traced_run_matches_the_declared_address_function() {
    // The data-carrying trace must equal the data-free trace: the program
    // cannot leak data into addresses even if it tried.
    let prog = OptTriangulation::new(8);
    let declared = trace_of::<f32, _>(&prog);
    let input = ChordWeights::from_fn(8, |i, j| ((i * j * 7) % 23) as f64).as_words::<f32>();
    let actual = traced_run(&prog, &input);
    assert_eq!(actual, declared);
}

#[test]
fn non_oblivious_foils_are_rejected() {
    use algorithms::nonoblivious::{binary_search_trace, partition_trace};

    let sorted: Vec<f64> = (0..128).map(|i| i as f64 * 2.0).collect();
    let targets = vec![1.0, 200.0, 17.0, 255.0];
    assert!(
        check_oblivious(|t| binary_search_trace(&sorted, *t), &targets).is_err(),
        "binary search must fail the checker"
    );

    let perms = vec![
        vec![3.0, 1.0, 4.0, 1.5, 9.0, 2.0],
        vec![9.0, 4.0, 3.0, 2.0, 1.5, 1.0],
        vec![1.0, 1.5, 2.0, 3.0, 4.0, 9.0],
    ];
    assert!(
        check_oblivious(|d| partition_trace(d), &perms).is_err(),
        "quicksort partition must fail the checker"
    );
}

#[test]
fn oblivious_padding_idiom_costs_what_the_paper_says() {
    // The paper inserts `else s ← s` so both branches take equal time.  In
    // our machine the select is a register operation: it must contribute
    // zero memory steps regardless of outcome.
    let n = 10;
    let prog = OptTriangulation::new(n);
    let t = time_steps::<f32, _>(&prog) as u64;
    assert_eq!(t, oblivious::theorems::opt_steps(n as u64));
}
