//! Property-style tests on the core invariants, driven by a seeded
//! SplitMix64 RNG (`obs::Rng`) over a fixed number of random cases per
//! property — dependency-free stand-in for the previous proptest suite.
//! Known past counterexamples are pinned as explicit cases.

use bulk_oblivious::prelude::*;
use oblivious::program::{bulk_execute, bulk_model_time, time_steps};
use oblivious::theorems;
use obs::Rng;

const CASES: usize = 64;

/// Bulk prefix-sums equals the scalar reference for arbitrary inputs,
/// both layouts, arbitrary p.
#[test]
fn prefix_sums_bulk_matches_reference() {
    let mut rng = Rng::new(0x5eed_0001);
    for _ in 0..CASES {
        let p = rng.range_usize(1, 20);
        let n = rng.range_usize(1, 24);
        let inputs: Vec<Vec<f64>> = (0..p)
            .map(|_| (0..n).map(|_| rng.range_u64(0, 200) as f64 - 100.0).collect())
            .collect();
        let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
        let prog = PrefixSums::new(n);
        let want: Vec<Vec<f64>> =
            inputs.iter().map(|v| algorithms::prefix_sums::reference(v)).collect();
        for layout in Layout::all() {
            assert_eq!(bulk_execute(&prog, &refs, layout), want, "{layout} p={p} n={n}");
        }
    }
}

/// The bitonic network sorts any input of any power-of-two size.
#[test]
fn bitonic_sorts_anything() {
    let mut rng = Rng::new(0x5eed_0002);
    for _ in 0..CASES {
        let log2n = rng.range_u64(0, 6) as u32;
        let n = 1usize << log2n;
        let input: Vec<f64> = (0..n).map(|_| rng.range_u64(0, 2000) as f64 - 1000.0).collect();
        let out = run_on_input(&BitonicSort::new(log2n), &input);
        let mut want = input.clone();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(out, want);
    }
}

/// XTEA decryption inverts encryption for arbitrary keys and blocks.
#[test]
fn xtea_roundtrip() {
    let mut rng = Rng::new(0x5eed_0003);
    for _ in 0..CASES {
        let key: Vec<u32> = (0..4).map(|_| rng.next_u32()).collect();
        let nblocks = rng.range_usize(1, 5);
        let data: Vec<u32> = (0..2 * nblocks).map(|_| rng.next_u32()).collect();
        let mut input = key.clone();
        input.extend_from_slice(&data);
        let enc = run_on_input(&Xtea::encrypt(nblocks), &input);
        let mut dec_input = key.clone();
        dec_input.extend_from_slice(&enc);
        let dec = run_on_input(&Xtea::decrypt(nblocks), &dec_input);
        assert_eq!(dec, data);
    }
}

/// The OPT DP value never exceeds the weight of any specific (greedy fan)
/// triangulation and equals the brute-force optimum on small n.
#[test]
fn opt_is_a_true_minimum() {
    let mut rng = Rng::new(0x5eed_0004);
    for _ in 0..CASES {
        let n = rng.range_usize(4, 8);
        let seed = rng.next_u64();
        let c = ChordWeights::from_fn(n, |i, j| {
            let h = (i as u64 ^ seed.rotate_left(j as u32)).wrapping_mul(0x9E3779B97F4A7C15);
            ((h >> 40) % 1000) as f64
        });
        let (dp, chords) = algorithms::opt::reference(&c);
        // Fan triangulation from vertex 0: chords (0, k) for 2 <= k <= n-2.
        let fan: f64 = (2..n - 1).map(|k| c.get(0, k)).sum();
        assert!(dp <= fan, "DP {dp} must not exceed the fan {fan}");
        assert_eq!(dp, algorithms::opt::brute_force(&c));
        assert_eq!(chords.len(), n - 3);
    }
}

/// FFT then inverse FFT reproduces the input within tolerance.
#[test]
fn fft_roundtrip() {
    let mut rng = Rng::new(0x5eed_0005);
    for _ in 0..CASES {
        let log2n = rng.range_u64(1, 6) as u32;
        let n = 1usize << log2n;
        let input: Vec<f64> =
            (0..2 * n).map(|_| (rng.range_u64(0, 200) as f64 - 100.0) / 16.0).collect();
        let fwd = run_on_input(&Fft::new(log2n), &input);
        let back = run_on_input(&Fft::inverse(log2n), &fwd);
        for (a, b) in input.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }
}

/// Model ordering and (aligned) monotonicity for one parameter set.
///
/// Note the alignment condition: for p NOT a multiple of w the column-wise
/// cost is not monotone in p — the base address `addr·p` of each step
/// shifts alignment with p, and an unaligned base charges 2 stages per
/// warp where an aligned one charges 1.  (proptest found the
/// counterexample n=2, p=41 -> 48, w=2, l=1; the paper avoids it by
/// assuming p is a multiple of w.)
fn check_model_ordering(n: usize, q1: usize, dq: usize, w_exp: u32, l: usize) {
    let w = 1usize << w_exp;
    let cfg = MachineConfig::new(w, l);
    let prog = PrefixSums::new(n);
    // Aligned thread counts, as the paper assumes.
    let (p1, p2) = (q1 * w, (q1 + dq) * w);
    let c1 = bulk_model_time::<f32, _>(&prog, cfg, Model::Umm, Layout::ColumnWise, p1);
    let c2 = bulk_model_time::<f32, _>(&prog, cfg, Model::Umm, Layout::ColumnWise, p2);
    assert!(c1 <= c2, "column-wise monotone in aligned p (n={n} q1={q1} dq={dq} w={w} l={l})");
    let r1 = bulk_model_time::<f32, _>(&prog, cfg, Model::Umm, Layout::RowWise, p1);
    assert!(c1 <= r1, "column-wise never loses (n={n} q1={q1} w={w} l={l})");
    // Theorem 3 lower bound.
    let t = time_steps::<f32, _>(&prog) as u64;
    let lb = theorems::lower_bound(t, p1 as u64, w as u64, cfg.latency as u64);
    assert!(c1 >= lb);
}

#[test]
fn model_is_monotone_and_ordered() {
    // The historical proptest shrink: n=2, p1=41, dp=7, w_exp=1, l=1.
    check_model_ordering(2, 41, 7, 1, 1);
    let mut rng = Rng::new(0x5eed_0006);
    for _ in 0..CASES {
        check_model_ordering(
            rng.range_usize(1, 32),
            rng.range_usize(1, 64),
            rng.range_usize(0, 64),
            rng.range_u64(0, 6) as u32,
            rng.range_usize(1, 64),
        );
    }
}

/// Column-wise never loses to row-wise even at arbitrary unaligned p.
#[test]
fn column_wise_never_loses_any_p() {
    let mut rng = Rng::new(0x5eed_0007);
    for _ in 0..CASES {
        let n = rng.range_usize(1, 24);
        let p = rng.range_usize(1, 300);
        let cfg = MachineConfig::new(1 << rng.range_u64(0, 6), rng.range_usize(1, 32));
        let prog = PrefixSums::new(n);
        let col = bulk_model_time::<f32, _>(&prog, cfg, Model::Umm, Layout::ColumnWise, p);
        let row = bulk_model_time::<f32, _>(&prog, cfg, Model::Umm, Layout::RowWise, p);
        assert!(col <= row, "col {col} vs row {row} (n={n} p={p})");
    }
}

/// Layout physical addressing is a bijection lane×addr -> buffer.
#[test]
fn layout_physical_is_bijective() {
    let mut rng = Rng::new(0x5eed_0008);
    for _ in 0..CASES {
        let p = rng.range_usize(1, 64);
        let msize = rng.range_usize(1, 64);
        for layout in Layout::all() {
            let mut seen = vec![false; p * msize];
            for lane in 0..p {
                for addr in 0..msize {
                    let phys = layout.physical(addr, lane, p, msize);
                    assert!(phys < p * msize);
                    assert!(!seen[phys], "collision at {phys}");
                    seen[phys] = true;
                }
            }
        }
    }
}
