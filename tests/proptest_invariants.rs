//! Property-based tests (proptest) on the core invariants.

use bulk_oblivious::prelude::*;
use oblivious::program::{bulk_execute, bulk_model_time, time_steps};
use oblivious::theorems;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bulk prefix-sums equals the scalar reference for arbitrary inputs,
    /// both layouts, arbitrary p.
    #[test]
    fn prefix_sums_bulk_matches_reference(
        inputs in proptest::collection::vec(
            proptest::collection::vec(-100i32..100, 1..24), 1..20)
    ) {
        let n = inputs.iter().map(|v| v.len()).min().unwrap();
        let inputs: Vec<Vec<f64>> = inputs
            .into_iter()
            .map(|v| v.into_iter().take(n).map(f64::from).collect())
            .collect();
        let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
        let prog = PrefixSums::new(n);
        let want: Vec<Vec<f64>> =
            inputs.iter().map(|v| algorithms::prefix_sums::reference(v)).collect();
        for layout in Layout::all() {
            prop_assert_eq!(&bulk_execute(&prog, &refs, layout), &want);
        }
    }

    /// The bitonic network sorts any input of any power-of-two size.
    #[test]
    fn bitonic_sorts_anything(
        log2n in 0u32..6,
        seed in proptest::collection::vec(-1000i64..1000, 64)
    ) {
        let n = 1usize << log2n;
        let input: Vec<f64> = seed.iter().take(n).map(|&x| x as f64).collect();
        let out = run_on_input(&BitonicSort::new(log2n), &input);
        let mut want = input.clone();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(out, want);
    }

    /// XTEA decryption inverts encryption for arbitrary keys and blocks.
    #[test]
    fn xtea_roundtrip(key in proptest::array::uniform4(any::<u32>()),
                      blocks in proptest::collection::vec(any::<u32>(), 2..9)) {
        let nblocks = blocks.len() / 2;
        let data = &blocks[..2 * nblocks];
        let mut input = key.to_vec();
        input.extend_from_slice(data);
        let enc = run_on_input(&Xtea::encrypt(nblocks), &input);
        let mut dec_input = key.to_vec();
        dec_input.extend_from_slice(&enc);
        let dec = run_on_input(&Xtea::decrypt(nblocks), &dec_input);
        prop_assert_eq!(dec.as_slice(), data);
    }

    /// The OPT DP value never exceeds the weight of any specific (greedy
    /// fan) triangulation and equals the brute-force optimum on small n.
    #[test]
    fn opt_is_a_true_minimum(n in 4usize..8, seed in any::<u64>()) {
        let c = ChordWeights::from_fn(n, |i, j| {
            let h = (i as u64 ^ seed.rotate_left(j as u32)).wrapping_mul(0x9E3779B97F4A7C15);
            ((h >> 40) % 1000) as f64
        });
        let (dp, chords) = algorithms::opt::reference(&c);
        // Fan triangulation from vertex 0: chords (0, k) for 2 <= k <= n-2.
        let fan: f64 = (2..n - 1).map(|k| c.get(0, k)).sum();
        prop_assert!(dp <= fan, "DP {dp} must not exceed the fan {fan}");
        prop_assert_eq!(dp, algorithms::opt::brute_force(&c));
        prop_assert_eq!(chords.len(), n - 3);
    }

    /// FFT then inverse FFT reproduces the input within tolerance.
    #[test]
    fn fft_roundtrip(log2n in 1u32..6,
                     vals in proptest::collection::vec(-100i32..100, 64)) {
        let n = 1usize << log2n;
        let input: Vec<f64> =
            vals.iter().cycle().take(2 * n).map(|&x| f64::from(x) / 16.0).collect();
        let fwd = run_on_input(&Fft::new(log2n), &input);
        let back = run_on_input(&Fft::inverse(log2n), &fwd);
        for (a, b) in input.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    /// Model ordering and (aligned) monotonicity.
    ///
    /// Note the alignment condition: for p NOT a multiple of w the
    /// column-wise cost is not monotone in p — the base address `addr·p`
    /// of each step shifts alignment with p, and an unaligned base charges
    /// 2 stages per warp where an aligned one charges 1.  (proptest found
    /// the counterexample n=2, p=41 -> 48, w=2, l=1; the paper avoids it by
    /// assuming p is a multiple of w.)
    #[test]
    fn model_is_monotone_and_ordered(n in 1usize..32, q1 in 1usize..64, dq in 0usize..64,
                                     w_exp in 0u32..6, l in 1usize..64) {
        let w = 1usize << w_exp;
        let cfg = MachineConfig::new(w, l);
        let prog = PrefixSums::new(n);
        // Aligned thread counts, as the paper assumes.
        let (p1, p2) = (q1 * w, (q1 + dq) * w);
        let c1 = bulk_model_time::<f32, _>(&prog, cfg, Model::Umm, Layout::ColumnWise, p1);
        let c2 = bulk_model_time::<f32, _>(&prog, cfg, Model::Umm, Layout::ColumnWise, p2);
        prop_assert!(c1 <= c2, "column-wise monotone in aligned p");
        let r1 = bulk_model_time::<f32, _>(&prog, cfg, Model::Umm, Layout::RowWise, p1);
        prop_assert!(c1 <= r1, "column-wise never loses");
        // Theorem 3 lower bound.
        let t = time_steps::<f32, _>(&prog) as u64;
        let lb = theorems::lower_bound(t, p1 as u64, w as u64, cfg.latency as u64);
        prop_assert!(c1 >= lb);
    }

    /// Column-wise never loses to row-wise even at arbitrary unaligned p.
    #[test]
    fn column_wise_never_loses_any_p(n in 1usize..24, p in 1usize..300,
                                     w_exp in 0u32..6, l in 1usize..32) {
        let cfg = MachineConfig::new(1 << w_exp, l);
        let prog = PrefixSums::new(n);
        let col = bulk_model_time::<f32, _>(&prog, cfg, Model::Umm, Layout::ColumnWise, p);
        let row = bulk_model_time::<f32, _>(&prog, cfg, Model::Umm, Layout::RowWise, p);
        prop_assert!(col <= row, "col {col} vs row {row}");
    }

    /// Layout physical addressing is a bijection lane×addr -> buffer.
    #[test]
    fn layout_physical_is_bijective(p in 1usize..64, msize in 1usize..64) {
        for layout in Layout::all() {
            let mut seen = vec![false; p * msize];
            for lane in 0..p {
                for addr in 0..msize {
                    let phys = layout.physical(addr, lane, p, msize);
                    prop_assert!(phys < p * msize);
                    prop_assert!(!seen[phys], "collision at {phys}");
                    seen[phys] = true;
                }
            }
        }
    }
}
