//! Concurrency battery for [`oblivious::ScheduleCache`].
//!
//! The cache is the daemon's hot shared state: every worker thread of the
//! batch server funnels through `get_or_compile`, and the whole economy of
//! coalescing rests on one invariant — a key is compiled **exactly once**
//! no matter how many threads race on it, and every racer gets the same
//! schedule back.
//!
//! The compile count is probed two independent ways: the cache's own
//! [`CacheStats`] ledger, and an [`ObliviousProgram`] wrapper that counts
//! how many times the compiler's recording dry-run actually invokes
//! `run`.  Both must agree with the number of distinct keys.

use common::{bits, random_program, RandomProgram};
use oblivious::{
    run_sharded, CacheStats, Layout, ObliviousMachine, ObliviousProgram, ScheduleCache,
};
use obs::Rng;
use std::sync::atomic::{AtomicUsize, Ordering};

mod common;

/// Delegates to an inner random program under a unique name, counting how
/// many times the schedule compiler's dry run executes the program body.
struct Probe<'a> {
    name: String,
    inner: &'a RandomProgram,
    runs: &'a AtomicUsize,
}

impl ObliviousProgram<f64> for Probe<'_> {
    fn name(&self) -> String {
        self.name.clone()
    }
    fn memory_words(&self) -> usize {
        self.inner.memory_words()
    }
    fn input_range(&self) -> std::ops::Range<usize> {
        self.inner.input_range()
    }
    fn output_range(&self) -> std::ops::Range<usize> {
        self.inner.output_range()
    }
    fn run<M: ObliviousMachine<f64>>(&self, m: &mut M) {
        self.runs.fetch_add(1, Ordering::SeqCst);
        self.inner.run(m);
    }
}

#[test]
fn racing_threads_compile_each_key_exactly_once() {
    const THREADS: usize = 16;
    const ROUNDS: usize = 8;
    const PROGRAMS: usize = 3;

    let mut rng = Rng::new(0x00CA_C4ED);
    let programs: Vec<RandomProgram> = (0..PROGRAMS).map(|_| random_program(&mut rng)).collect();
    let layouts = [Layout::ColumnWise, Layout::RowWise];
    let distinct_keys = PROGRAMS * layouts.len();

    // A shared per-instance input set; every thread replays the same bulk.
    let p = 7usize;
    let inputs_per: Vec<Vec<Vec<f64>>> = programs
        .iter()
        .map(|prog| {
            (0..p)
                .map(|k| (0..prog.msize).map(|i| (k * 31 + i) as f64 * 0.5 - 3.0).collect())
                .collect()
        })
        .collect();

    let cache: ScheduleCache<f64> = ScheduleCache::new();
    let dry_runs = AtomicUsize::new(0);
    let probes: Vec<Probe<'_>> = programs
        .iter()
        .enumerate()
        .map(|(i, prog)| Probe { name: format!("probe-{i}"), inner: prog, runs: &dry_runs })
        .collect();

    // Reference outputs from fresh, uncached compiles (cache hits must be
    // bit-identical to these — Arc sharing must never change results).
    let reference: Vec<Vec<Vec<Vec<f64>>>> = probes
        .iter()
        .zip(&inputs_per)
        .map(|(probe, inputs)| {
            let schedule = oblivious::CompiledSchedule::compile(probe);
            let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
            layouts.iter().map(|&l| run_sharded(&schedule, &refs, l, 2)).collect()
        })
        .collect();
    let reference_runs = dry_runs.swap(0, Ordering::SeqCst);
    assert_eq!(reference_runs, PROGRAMS, "one dry run per direct compile");

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = &cache;
            let probes = &probes;
            let inputs_per = &inputs_per;
            let reference = &reference;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    // Offset the walk order per thread so first touches of
                    // each key race from different directions.
                    for j in 0..distinct_keys {
                        let k = (t + round + j) % distinct_keys;
                        let (pi, li) = (k / layouts.len(), k % layouts.len());
                        let schedule = cache.get_or_compile(&probes[pi], layouts[li]);
                        let refs: Vec<&[f64]> =
                            inputs_per[pi].iter().map(|v| v.as_slice()).collect();
                        let out = run_sharded(&schedule, &refs, layouts[li], 1 + t % 3);
                        assert_eq!(
                            bits(&out),
                            bits(&reference[pi][li]),
                            "cached replay diverged from fresh compile (key {k}, thread {t})"
                        );
                    }
                }
            });
        }
    });

    let total_calls = (THREADS * ROUNDS * distinct_keys) as u64;
    let expected =
        CacheStats { compiles: distinct_keys as u64, hits: total_calls - distinct_keys as u64 };
    assert_eq!(cache.stats(), expected, "every call past the first per key must hit");
    assert_eq!(cache.len(), distinct_keys);
    assert_eq!(
        dry_runs.load(Ordering::SeqCst),
        distinct_keys,
        "the compiler's dry run executed more than once for some key"
    );
    let rate = cache.stats().hit_rate();
    assert!((rate - expected.hits as f64 / total_calls as f64).abs() < 1e-12);
}
