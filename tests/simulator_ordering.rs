//! Property test: the three time accountings on a common trace are totally
//! ordered.
//!
//! For any materialised round trace,
//!
//! ```text
//! theorems::lower_bound  <=  simulate_async  <=  UmmSimulator (round-sync)
//! ```
//!
//! The event-driven simulator overlaps independent warps inside the memory
//! pipeline, so it can never be *slower* than round-synchronous accounting,
//! which serialises every round behind a full pipeline drain; and neither
//! can beat Theorem 3's Ω(pt/w + lt) bound, which only assumes `p` threads
//! each make `t` accesses through a width-`w`, latency-`l` pipeline.
//!
//! Traces are random: coalesced, strided, scattered, and all-same-address
//! rounds are mixed, with `p` deliberately allowed to be warp-unaligned.

use oblivious::theorems;
use obs::Rng;
use umm_core::{simulate_async, MachineConfig, Round, RoundTrace, ThreadAction, UmmSimulator};

/// One random *full* round — every thread accesses (no idle lanes), so the
/// trace satisfies the "t accesses per thread" premise of Theorem 3.
fn random_full_round(rng: &mut Rng, p: usize, mem: usize) -> Round {
    let shape = rng.below(4);
    let base = rng.range_usize(0, mem);
    let stride = rng.range_usize(1, 9);
    let addrs: Vec<usize> = (0..p)
        .map(|lane| match shape {
            0 => (base + lane) % mem,          // coalesced
            1 => (base + lane * stride) % mem, // strided
            2 => base,                         // broadcast (all same address)
            _ => rng.range_usize(0, mem),      // scattered
        })
        .collect();
    let write = rng.chance(0.5);
    Round::from_fn(p, |lane| {
        if write {
            ThreadAction::write(addrs[lane])
        } else {
            ThreadAction::read(addrs[lane])
        }
    })
}

fn random_case(rng: &mut Rng) -> (MachineConfig, RoundTrace, u64) {
    let w = 1usize << rng.range_u64(0, 6); // 1..=32
    let l = rng.range_usize(1, 13);
    let p = rng.range_usize(1, 97); // warp-unaligned p on purpose
    let t = rng.range_usize(1, 33);
    let mem = rng.range_usize(1, 512);
    let cfg = MachineConfig::new(w, l);
    let mut trace = RoundTrace::new();
    for _ in 0..t {
        trace.push(random_full_round(rng, p, mem));
    }
    (cfg, trace, t as u64)
}

#[test]
fn async_sync_and_lower_bound_are_ordered() {
    let mut rng = Rng::new(0x012D_E2ED);
    for case in 0..200 {
        let (cfg, trace, t) = random_case(&mut rng);
        let p = trace.p() as u64;

        let mut sim = UmmSimulator::new(cfg, trace.p());
        let sync = sim.run(&trace);
        let async_t = simulate_async(&cfg, &trace);
        let lb = theorems::lower_bound(t, p, cfg.width as u64, cfg.latency as u64);

        assert!(
            async_t <= sync,
            "case {case}: event-driven ({async_t}) slower than round-sync ({sync}) \
             [p={p} t={t} w={} l={}]",
            cfg.width,
            cfg.latency
        );
        assert!(
            async_t >= lb,
            "case {case}: event-driven ({async_t}) beat the Theorem 3 bound ({lb}) \
             [p={p} t={t} w={} l={}]",
            cfg.width,
            cfg.latency
        );
        // sync >= async >= lb follows, but assert it directly for clarity.
        assert!(sync >= lb, "case {case}: round-sync ({sync}) beat the bound ({lb})");
    }
}

/// The ordering `async <= sync` holds even for ragged traces (idle lanes,
/// fully idle rounds) that fall outside Theorem 3's premises.
#[test]
fn async_never_slower_than_sync_on_ragged_traces() {
    let mut rng = Rng::new(0x0A5F_0ADE_D5A5_A001);
    for case in 0..200 {
        let w = 1usize << rng.range_u64(0, 6);
        let l = rng.range_usize(1, 13);
        let p = rng.range_usize(1, 97);
        let t = rng.range_usize(1, 33);
        let mem = rng.range_usize(1, 512);
        let cfg = MachineConfig::new(w, l);
        let mut trace = RoundTrace::new();
        for _ in 0..t {
            if rng.chance(0.15) {
                trace.push(Round::from_fn(p, |_| ThreadAction::Idle));
            } else {
                let mut round = random_full_round(&mut rng, p, mem);
                // Punch random idle holes into the round.
                for a in &mut round.actions {
                    if rng.chance(0.3) {
                        *a = ThreadAction::Idle;
                    }
                }
                trace.push(round);
            }
        }
        let mut sim = UmmSimulator::new(cfg, p);
        let sync = sim.run(&trace);
        let async_t = simulate_async(&cfg, &trace);
        assert!(
            async_t <= sync,
            "case {case}: event-driven ({async_t}) slower than round-sync ({sync})"
        );
    }
}
