//! Integration: recorded tapes and HMM pricing across the whole library.

use bulk_oblivious::prelude::*;
use oblivious::program::{bulk_execute, run_on_input, time_steps, trace_of};
use oblivious::Tape;
use umm_core::HmmConfig;

#[test]
fn tapes_replay_identically_for_every_library_program() {
    macro_rules! check {
        ($prog:expr, $w:ty, $input:expr) => {{
            let prog = $prog;
            let input: Vec<$w> = $input;
            let tape = Tape::record(&prog);
            assert_eq!(
                run_on_input(&tape, &input),
                run_on_input(&prog, &input),
                "tape of {} must replay identically",
                ObliviousProgram::<$w>::name(&prog)
            );
            // A tape is itself an oblivious program with the same trace.
            assert_eq!(trace_of::<$w, _>(&tape), trace_of::<$w, _>(&prog));
        }};
    }

    check!(PrefixSums::new(16), f32, (0..16).map(|i| i as f32).collect());
    check!(BitonicSort::new(4), f32, (0..16).rev().map(|i| i as f32).collect());
    check!(Fft::new(3), f64, (0..16).map(|i| (i % 5) as f64).collect());
    check!(MatMul::new(3), f64, (0..18).map(|i| (i % 4) as f64).collect());
    check!(LcsLength::new(4, 4), f32, (0..8).map(|i| (i % 3) as f32).collect());
    check!(Xtea::encrypt(2), u32, (0..8u32).map(|i| i * 0x0123_4567 / 16).collect());
    check!(
        OptTriangulation::new(6),
        f64,
        ChordWeights::from_fn(6, |i, j| ((i * 7 + j) % 13) as f64).as_words::<f64>()
    );
    check!(algorithms::OfflinePermute::perfect_shuffle(8), f32, (0..8).map(|i| i as f32).collect());
}

#[test]
fn dce_is_a_noop_on_well_freed_programs_semantics() {
    // DCE may or may not remove instructions (our library frees its
    // temporaries, but argmin-free OPT still computes selects whose
    // results feed writes) — semantics must be preserved either way.
    let prog = OptTriangulation::new(7);
    let input = ChordWeights::from_fn(7, |i, j| ((i * 3 + j * 11) % 40) as f64).as_words::<f64>();
    let mut tape = Tape::record(&prog);
    let before = run_on_input(&tape, &input);
    let removed = tape.eliminate_dead_code();
    let after = run_on_input(&tape, &input);
    assert_eq!(before, after, "DCE removed {removed} instructions but changed nothing");
    assert_eq!(tape.memory_steps(), time_steps::<f64, _>(&prog), "memory steps survive DCE");
}

#[test]
fn tape_bulk_execution_matches_program_bulk_execution() {
    let prog = SummedArea::new(4, 4);
    let tape = Tape::record(&prog);
    let inputs: Vec<Vec<f32>> =
        (0..20).map(|s| (0..16).map(|i| ((i + s * 3) % 7) as f32).collect()).collect();
    let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
    for layout in Layout::all() {
        assert_eq!(
            bulk_execute(&tape, &refs, layout),
            bulk_execute(&prog, &refs, layout),
            "{layout}"
        );
    }
}

#[test]
fn hmm_staging_verdicts_match_reuse_structure() {
    let hmm = HmmConfig::new(
        8,
        umm_core::MachineConfig::new(32, 2),
        umm_core::MachineConfig::new(32, 400),
    );
    let p = 8 * 32;
    // Streaming programs: stay global.
    let ps = oblivious::hmm_bulk_cost::<f32, _>(&PrefixSums::new(1024), &hmm, p);
    assert!(!ps.staging_wins(), "{ps:?}");
    let pm =
        oblivious::hmm_bulk_cost::<f32, _>(&algorithms::OfflinePermute::reversal(512), &hmm, p);
    assert!(!pm.staging_wins(), "permutation has zero reuse: {pm:?}");
    // Reuse-heavy programs: stage.
    let opt = oblivious::hmm_bulk_cost::<f32, _>(&OptTriangulation::new(24), &hmm, p);
    assert!(opt.staging_wins(), "{opt:?}");
    let mm = oblivious::hmm_bulk_cost::<f32, _>(&MatMul::new(24), &hmm, p);
    assert!(mm.staging_wins(), "matmul reads each word n times: {mm:?}");
    // Sanity: breakdown adds up and capacity is reported.
    assert_eq!(opt.staged, opt.load + opt.compute + opt.store);
    assert_eq!(
        oblivious::capacity_needed_per_dmm::<f32, _>(&OptTriangulation::new(24), &hmm, p),
        2 * 24 * 24 * 32
    );
}

#[test]
fn hmm_simulator_agrees_with_coalesced_round_arithmetic() {
    // One coalesced global round through the HmmSimulator equals the
    // closed form used by hmm_bulk_cost's load/store phases.
    let hmm =
        HmmConfig::new(2, umm_core::MachineConfig::new(4, 2), umm_core::MachineConfig::new(4, 10));
    let p = 16usize;
    let mut sim = umm_core::HmmSimulator::new(hmm, p);
    let actions: Vec<_> = (0..p).map(umm_core::HmmAction::global_read).collect();
    let cost = sim.step(&actions);
    assert_eq!(cost, (p as u64).div_ceil(4) + 10 - 1);
}
