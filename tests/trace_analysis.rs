//! Integration: trace analysis characterises the library's algorithms the
//! way their complexity analysis says it should.

use bulk_oblivious::prelude::*;
use oblivious::program::trace_of;
use umm_core::{address_group_histogram, stride_histogram, summarize};

#[test]
fn prefix_sums_is_a_sequential_streaming_walk() {
    let s = summarize(&trace_of::<f32, _>(&PrefixSums::new(256)));
    assert_eq!(s.reads, 256);
    assert_eq!(s.writes, 256);
    assert_eq!(s.working_set, 256);
    assert!(s.sequential_fraction > 0.99, "strides are 0 and +1: {}", s.sequential_fraction);
    assert!(s.mean_reuse_distance <= 1.5, "write immediately follows read");
}

#[test]
fn opt_dp_has_short_reuse_and_wild_strides() {
    let s = summarize(&trace_of::<f32, _>(&OptTriangulation::new(24)));
    // The DP re-reads M cells many times: working set much smaller than
    // the access count.
    assert!(s.reads + s.writes > 4 * s.working_set, "heavy reuse");
    // Interval DP jumps between table rows: mostly non-sequential.
    assert!(s.sequential_fraction < 0.2, "{}", s.sequential_fraction);
    assert!(s.mean_abs_stride > 5.0);
}

#[test]
fn transpose_bounces_between_triangles() {
    let n = 16usize;
    let trace = trace_of::<f32, _>(&Transpose::new(n));
    let h = stride_histogram(&trace, 1024);
    // Every swap hops between (i,j) and (j,i): both stride signs occur and
    // no two consecutive accesses share an address.
    assert!(h.keys().any(|&d| d > 0) && h.keys().any(|&d| d < 0));
    assert_eq!(h.get(&0), None, "transpose never repeats an address back-to-back");
    // Each off-diagonal cell is touched exactly twice (read + write).
    let s = summarize(&trace);
    assert_eq!(s.working_set, n * n - n);
    assert_eq!(s.reads, s.writes);
    assert!(s.mean_reuse_distance <= 3.0, "write follows its read within the swap");
}

#[test]
fn fft_touches_every_group_evenly() {
    let cfg = MachineConfig::new(8, 1);
    let groups = address_group_histogram(&trace_of::<f32, _>(&Fft::new(5)), &cfg);
    // 64 words over 8-word groups: all 8 groups used.
    assert_eq!(groups.len(), 8);
    let counts: Vec<usize> = groups.iter().map(|&(_, c)| c).collect();
    let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
    assert!(*max <= 2 * *min, "butterflies spread accesses near-evenly, got {counts:?}");
}

#[test]
fn xtea_working_set_is_the_whole_instance() {
    let prog = Xtea::encrypt(8);
    let s = summarize(&trace_of::<u32, _>(&prog));
    assert_eq!(s.working_set, 4 + 16, "key + every data word");
    assert_eq!(s.reads, 4 + 16);
    assert_eq!(s.writes, 16);
}

#[test]
fn permutation_analysis_reflects_its_shuffle() {
    let prog = OfflinePermute::perfect_shuffle(64);
    let s = summarize(&trace_of::<f32, _>(&prog));
    assert_eq!(s.working_set, 128, "src and dst");
    assert_eq!(s.mean_reuse_distance, 0.0, "no address is touched twice");
    // The shuffle's writes alternate between halves: low sequentiality.
    assert!(s.sequential_fraction < 0.1);
}

#[test]
fn summaries_of_row_vs_column_friendly_traces_differ() {
    // Same working set, same step count, opposite strides: the analyses
    // must tell them apart even though the cost model sees both as "one
    // address per step".
    let seq = trace_of::<f32, _>(&PrefixSums::new(64));
    let fw = trace_of::<f64, _>(&FloydWarshall::new(8));
    let s1 = summarize(&seq);
    let s2 = summarize(&fw);
    assert_eq!(s1.working_set, s2.working_set, "both touch 64 words");
    assert!(s1.sequential_fraction > s2.sequential_fraction);
    assert!(s2.mean_reuse_distance > s1.mean_reuse_distance);
}
