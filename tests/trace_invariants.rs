//! Event-timeline invariants across every instrumented layer.
//!
//! The tracer is a second, independent account of the same execution the
//! profilers summarize, so the two must reconcile *exactly*:
//!
//! * every timeline is well-formed — begins matched by ends, spans on one
//!   track never overlapping (`obs::trace::validate`);
//! * on the round-synchronous UMM/DMM simulators, the total duration of
//!   warp-dispatch spans equals `AccessStats::pipeline_stages` and the
//!   `SimProfile` address-group histogram mass, the stall track equals
//!   `latency_stall_units`, and busy + stall equals elapsed time;
//! * on the asynchronous simulator, stall spans equal `wait_stall_units`;
//! * on the `BulkMachine` engine, one span is recorded per vector step;
//! * on the SIMT device, per-track busy time equals each worker's reported
//!   busy time.

use algorithms::{BitonicSort, OptTriangulation, PrefixSums, Transpose};
use oblivious::program::{arrange_inputs, bulk_round_trace, bulk_traced_dmm, bulk_traced_umm};
use oblivious::{BulkMachine, Layout, ObliviousProgram};
use umm_core::MachineConfig;

/// Small machines whose stall structure differs: an l = 3 pipeline on a
/// 4-wide warp, and a shallow l = 2 pipeline on an 8-wide warp.
fn machines() -> [MachineConfig; 2] {
    [MachineConfig::new(4, 3), MachineConfig::new(8, 2)]
}

fn check_model_timelines<P: ObliviousProgram<f32>>(pr: &P, layout: Layout, p: usize) {
    for cfg in machines() {
        // Round-synchronous UMM.
        let sim = bulk_traced_umm(pr, cfg, layout, p);
        let t = sim.tracer().expect("tracing enabled");
        obs::trace::validate(t).expect("UMM timeline well-formed");
        let busy = t.spanned_ticks_by_cat("umm");
        let stall = t.spanned_ticks_by_cat("stall");
        assert_eq!(busy, sim.stats().pipeline_stages, "span ticks == injected stages");
        let profile = sim.profile().expect("profiling enabled");
        assert_eq!(u128::from(busy), profile.group_histogram.sum(), "span ticks == histogram mass");
        assert_eq!(stall, profile.latency_stall_units, "stall track == drain accounting");
        assert_eq!(busy + stall, sim.elapsed(), "busy + stall == elapsed");

        // Round-synchronous DMM: same shape, conflict-priced.
        let sim = bulk_traced_dmm(pr, cfg, layout, p);
        let t = sim.tracer().expect("tracing enabled");
        obs::trace::validate(t).expect("DMM timeline well-formed");
        let busy = t.spanned_ticks_by_cat("dmm");
        let stall = t.spanned_ticks_by_cat("stall");
        assert_eq!(busy, sim.stats().pipeline_stages);
        let profile = sim.profile().expect("profiling enabled");
        assert_eq!(stall, profile.latency_stall_units);
        assert_eq!(busy + stall, sim.elapsed());

        // Asynchronous UMM: spans sit at injection slots, stalls are waits.
        let trace = bulk_round_trace(pr, layout, p);
        let (elapsed, profile, t) = umm_core::simulate_async_traced(&cfg, &trace);
        obs::trace::validate(&t).expect("async timeline well-formed");
        assert_eq!(
            u128::from(t.spanned_ticks_by_cat("umm-async")),
            profile.group_histogram.sum(),
            "async span ticks == histogram mass"
        );
        assert_eq!(
            t.spanned_ticks_by_cat("stall"),
            profile.wait_stall_units,
            "starvation spans == wait accounting"
        );
        assert!(t.end_ts() <= elapsed, "no event outruns the simulated clock");
    }
}

#[test]
fn model_timelines_reconcile_across_programs_and_layouts() {
    if !obs::PROFILING_COMPILED {
        return;
    }
    for layout in [Layout::RowWise, Layout::ColumnWise] {
        // p = 16 fills warps exactly on both machines; p = 6 leaves a
        // ragged final warp.
        check_model_timelines(&PrefixSums::new(16), layout, 16);
        check_model_timelines(&PrefixSums::new(8), layout, 6);
        check_model_timelines(&OptTriangulation::new(5), layout, 8);
        check_model_timelines(&Transpose::new(4), layout, 16);
        check_model_timelines(&BitonicSort::new(3), layout, 8);
    }
}

fn engine_check<P: ObliviousProgram<f32>>(pr: &P, p: usize) {
    let inputs: Vec<Vec<f32>> = (0..p)
        .map(|i| (0..pr.input_range().len()).map(|j| (i * 31 + j) as f32).collect())
        .collect();
    let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
    for layout in [Layout::RowWise, Layout::ColumnWise] {
        let mut buf = arrange_inputs(pr, &refs, layout);
        let mut m = BulkMachine::new(&mut buf, p, pr.memory_words(), layout);
        m.enable_tracing();
        pr.run(&mut m);
        let metrics = m.metrics();
        let t = m.take_tracer().expect("tracing enabled");
        obs::trace::validate(&t).expect("engine timeline well-formed");
        let steps = metrics.loads + metrics.stores + metrics.broadcasts + metrics.register_ops;
        assert_eq!(t.len() as u64, steps, "one span per vector step");
        assert_eq!(t.end_ts(), steps, "step counter is the engine clock");
        assert_eq!(
            t.spanned_ticks_by_cat("port"),
            metrics.loads + metrics.stores + metrics.broadcasts,
            "port track carries exactly the memory rounds"
        );
        assert_eq!(t.spanned_ticks_by_cat("alu"), metrics.register_ops);
    }
}

#[test]
fn engine_timeline_counts_every_vector_step() {
    if !obs::PROFILING_COMPILED {
        return;
    }
    engine_check(&PrefixSums::new(16), 8);
}

fn device_check<P: ObliviousProgram<f32> + Sync>(pr: P, p: usize) {
    let inputs: Vec<Vec<f32>> = (0..p).map(|_| vec![1.0f32; pr.input_range().len()]).collect();
    let refs: Vec<&[f32]> = inputs.iter().map(|v| v.as_slice()).collect();
    let mut device = gpu_sim::Device::titan_like();
    device.worker_threads = device.worker_threads.max(2);
    let layout = Layout::ColumnWise;
    let mut buf = arrange_inputs(&pr, &refs, layout);
    let report =
        gpu_sim::launch_profiled(&device, &gpu_sim::GenericKernel::new(pr, layout), &mut buf, p);
    let t = report.to_trace();
    obs::trace::validate(&t).expect("device timeline well-formed");
    assert_eq!(
        t.events().iter().filter(|e| e.cat == "block").count(),
        report.blocks,
        "one span per executed block"
    );
    for w in &report.workers {
        let busy: u64 = t
            .events()
            .iter()
            .filter(|e| e.tid == w.worker as u64 && e.cat == "block")
            .map(|e| e.dur)
            .sum();
        assert_eq!(busy, w.busy.as_nanos() as u64, "worker {} busy time", w.worker);
    }
}

#[test]
fn device_timeline_matches_worker_reports() {
    device_check(PrefixSums::new(64), 512);
}
